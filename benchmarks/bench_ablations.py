"""Bench: ablations over the design choices (DESIGN.md §5).

* selling-discount sweep — savings grow with the seller's ``a``;
* decision-fraction sweep — the generalised A_{φT} over a φ grid (the
  paper's future-work direction), plus the randomized-spot policy;
* marketplace-fee sweep — Amazon's 12% cut shrinks but does not erase
  the savings.
"""

from repro.experiments import ablations


def test_ablations(benchmark, config, population):
    result = benchmark.pedantic(
        ablations.run, args=(config,), kwargs={"users": population},
        rounds=1, iterations=1,
    )
    print()
    print(ablations.render(result))

    # Deeper seller discounts (larger a) monotonically improve the mean
    # at the endpoints of the grid.
    for policy in ("A_{3T/4}", "A_{T/2}", "A_{T/4}"):
        assert result.discount_sweep[1.0][policy] <= result.discount_sweep[0.2][policy] + 1e-9

    # Earlier decision spots save more across the phi grid's endpoints.
    assert result.phi_sweep[0.125] <= result.phi_sweep[0.875] + 1e-9

    # Fees shrink savings but never push the mean above Keep-Reserved.
    for fee, row in result.fee_sweep.items():
        for value in row.values():
            assert value <= 1.0 + 1e-6
    assert result.fee_sweep[0.0]["A_{T/4}"] <= result.fee_sweep[0.25]["A_{T/4}"] + 1e-9

    # The randomized-spot extension lands between the deterministic
    # extremes (sanity for the future-work policy).
    assert result.randomized_mean < 1.0
