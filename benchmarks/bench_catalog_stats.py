"""Bench: the Section IV-C catalog statistics (θ ∈ (1, 4), α < 0.36).

These two claims are what let the paper substitute θ → 4 and conclude
that Case 1 binds for ``A_{3T/4}`` on every standard instance.
"""

from repro.pricing.statistics import compute_statistics, format_statistics


def test_catalog_statistics(benchmark):
    stats = benchmark(compute_statistics)
    print()
    print(format_statistics(stats))
    assert stats.theta_in_paper_range
    assert stats.alpha_below_paper_bound
    assert stats.size >= 60
