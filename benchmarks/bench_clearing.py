"""Bench: clearing overhead on the population engine, to BENCH_clearing.json.

Not a paper artefact — this guards the clearing subsystem's cost: a
clearing-enabled population sweep (stochastic pending listings instead
of instant sales) must stay within 2x of the clearing-off users/sec at
the BENCH_population config. Clearing is a post-pass over the sale
events (one uniform per listing, ``searchsorted`` against a precomputed
CDF), so the overhead should be a small constant factor, not a rewrite
of the cost accumulation.

Run standalone (writes ``BENCH_clearing.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_clearing.py
    PYTHONPATH=src python benchmarks/bench_clearing.py --regimes thin frozen

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_clearing.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import time
from pathlib import Path

from repro._version import __version__
from repro.core.clearing import LIQUIDITY_REGIMES, ClearingModel
from repro.core.fastsim import ENGINE_VERSION
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import build_experiment_population
from repro.experiments.runner import run_sweep

#: Regimes measured against the clearing-off baseline. ``thin`` is the
#: stress case: low hazards keep listings open the longest, so its
#: bookkeeping (per-user delay draws, deferred income, expiry fates) is
#: the most expensive of the named regimes.
DEFAULT_REGIMES = ("normal", "thin")

#: The acceptance gate: clearing-on must keep at least half the
#: clearing-off throughput.
MAX_SLOWDOWN = 2.0


def _peak_rss_mb() -> float:
    """Process high-water resident set size, in MB (Linux: ru_maxrss KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _measure(config, population, clearing) -> dict:
    """One population-engine sweep; users/sec from the simulate stage."""
    sweep = run_sweep(
        config, users=population, engine="population", clearing=clearing
    )
    simulate = sweep.timing.stage_seconds["simulate"]
    return {
        "simulate_seconds": round(simulate, 4),
        "users_per_second": (
            round(len(population) / simulate, 2) if simulate else None
        ),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def run_bench(
    config: "ExperimentConfig | None" = None,
    regimes: "tuple[str, ...]" = DEFAULT_REGIMES,
    clearing_seed: int = 0,
) -> dict:
    """Population-engine sweep throughput, clearing off vs each regime."""
    config = config if config is not None else ExperimentConfig.default()
    for regime in regimes:
        if regime not in LIQUIDITY_REGIMES:
            raise ValueError(
                f"unknown liquidity regime {regime!r}; choose from "
                f"{sorted(LIQUIDITY_REGIMES)}"
            )
    population = build_experiment_population(config)

    off = _measure(config, population, clearing=None)
    off_rate = off["users_per_second"] or 0.0
    runs = {}
    for regime in regimes:
        record = _measure(
            config,
            population,
            ClearingModel.for_regime(regime, seed=clearing_seed),
        )
        rate = record["users_per_second"] or 0.0
        if rate:
            record["slowdown_vs_off"] = round(off_rate / rate, 3)
            record["within_target"] = record["slowdown_vs_off"] <= MAX_SLOWDOWN
        runs[regime] = record

    return {
        "benchmark": "clearing_overhead",
        "version": __version__,
        "engine_version": ENGINE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "label": config.label,
            "total_users": config.total_users,
            "period_hours": config.period_hours,
            "horizon_hours": config.horizon,
            "engine": "population",
            "clearing_seed": clearing_seed,
        },
        "clearing_off": off,
        "clearing_on": runs,
        "max_slowdown_target": MAX_SLOWDOWN,
        "notes": [
            "users_per_second comes from the sweep's simulate stage only "
            "(population build and result packing excluded), matching "
            "BENCH_population.json's sweep_config_comparison.",
            "peak_rss_mb is the process-lifetime high-water mark, so later "
            "runs can only report values >= earlier ones.",
        ],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regimes", nargs="+", default=list(DEFAULT_REGIMES), metavar="REGIME"
    )
    parser.add_argument("--clearing-seed", type=int, default=0, metavar="SEED")
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_clearing.json"), metavar="FILE"
    )
    args = parser.parse_args(argv)
    record = run_bench(
        regimes=tuple(args.regimes), clearing_seed=args.clearing_seed
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    off = record["clearing_off"]
    print(f"  clearing off: {off['users_per_second']} u/s")
    for regime, run in record["clearing_on"].items():
        print(
            f"  clearing {regime}: {run['users_per_second']} u/s "
            f"({run.get('slowdown_vs_off', '?')}x, "
            f"target <= {record['max_slowdown_target']}x)"
        )
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape():
    tiny = ExperimentConfig(users_per_group=2, period_hours=96, seed=3, label="bench")
    record = run_bench(config=tiny, regimes=("thin",))
    assert record["benchmark"] == "clearing_overhead"
    assert record["engine_version"] == ENGINE_VERSION
    assert record["clearing_off"]["users_per_second"] > 0
    run = record["clearing_on"]["thin"]
    assert run["users_per_second"] > 0
    assert "slowdown_vs_off" in run


if __name__ == "__main__":
    raise SystemExit(main())
