"""Bench: how much of Eq. (1)'s assumed income does the market realize?

The paper books marketplace income the instant a selling decision is
made. Clearing the population's listings against its own endogenous
reservation demand quantifies the optimism: the 12% fee caps the
realization ratio at 0.88, non-clearing pulls it lower, and thinner
buyer participation pulls it lower still.
"""

import numpy as np

from repro.marketplace.ecosystem import clear_market, endogenous_buy_requests


def test_ecosystem_realization(benchmark, config, population):
    model = config.cost_model()
    schedules = [user.schedule for user in population]

    def run():
        outcomes = {}
        for participation in (1.0, 0.25):
            requests = endogenous_buy_requests(
                schedules, model, participation=participation,
                rng=np.random.default_rng(7),
            )
            outcomes[participation] = clear_market(
                schedules, requests, model, phi=0.25
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for participation, outcome in outcomes.items():
        print(
            f"participation {participation:.0%}: "
            f"{outcome.total_sold}/{outcome.total_listings} sold "
            f"({outcome.sell_through:.0%}), mean realization ratio "
            f"{outcome.mean_realization_ratio:.3f}, fees ${outcome.total_fees:,.0f}"
        )
    full = outcomes[1.0]
    thin = outcomes[0.25]
    # Eq. (1)'s income is an upper bound: the fee alone caps it at 0.88.
    assert full.mean_realization_ratio <= 0.88 + 1e-9
    # Thinner demand realizes less.
    assert thin.total_sold <= full.total_sold
    assert thin.mean_realization_ratio <= full.mean_realization_ratio + 1e-9
    # And the market genuinely clears when the whole population shops.
    assert full.sell_through > 0.2