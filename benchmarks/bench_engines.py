"""Bench: throughput of the two simulation engines.

Not a paper artefact — this guards the harness itself: the vectorised
Algorithm-1 engine must be substantially faster than the object-model
reference on population-scale inputs while producing identical results.
"""

import numpy as np
import pytest

from repro.core.fastsim import run_fast
from repro.core.policies import OnlineSellingPolicy
from repro.core.simulator import run_policy
from repro.pricing.catalog import paper_experiment_plan
from repro.core.account import CostModel


@pytest.fixture(scope="module")
def inputs():
    plan = paper_experiment_plan().with_period(672)
    model = CostModel(plan=plan, selling_discount=0.8)
    rng = np.random.default_rng(0)
    horizon = 1344
    demands = rng.integers(0, 10, size=horizon)
    reservations = np.where(
        rng.random(horizon) < 0.05, rng.integers(1, 4, size=horizon), 0
    )
    return model, demands, reservations


def test_fast_engine_throughput(benchmark, inputs):
    model, demands, reservations = inputs
    result = benchmark(run_fast, demands, reservations, model, 0.75)
    assert result.total_cost > 0


def test_reference_engine_throughput(benchmark, inputs):
    model, demands, reservations = inputs
    result = benchmark(
        run_policy, demands, reservations, model, OnlineSellingPolicy.a_3t4()
    )
    assert result.total_cost > 0


def test_engines_agree_on_bench_input(benchmark, inputs):
    model, demands, reservations = inputs

    def both():
        fast = run_fast(demands, reservations, model, 0.75)
        slow = run_policy(
            demands, reservations, model, OnlineSellingPolicy.a_3t4()
        )
        return fast, slow

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert slow.breakdown.approx_equal(fast.breakdown)
