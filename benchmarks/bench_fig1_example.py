"""Bench: regenerate Fig. 1 (the Algorithm-1 selling illustration).

Paper shape: at the decision spot one instance of the early batch is
sold and the reservation curve drops from that hour onward (the figure's
dotted line), while later-reserved instances count toward the ``l`` term
of the working-time rule.
"""

import numpy as np

from repro.experiments import fig1


def test_fig1_example(benchmark, config):
    result = benchmark.pedantic(
        fig1.run, kwargs={"config": config, "period": 32}, rounds=1, iterations=1
    )
    print()
    print(fig1.render(result))
    spot = 24  # 3T/4 of the 32-hour example
    assert any(sale.hour == spot for sale in result.online.sales)
    keep, online = result.keep.r_physical, result.online.r_physical
    assert np.array_equal(keep[:spot], online[:spot])
    assert online[spot:].sum() < keep[spot:].sum()
