"""Bench: regenerate Fig. 2 (σ/μ statistics of the three user groups).

Paper shape: three groups of 100 users with σ/μ < 1, in (1, 3), and > 3.
Measured shape: every synthesized user falls in its group's band and the
group medians are strictly ordered.
"""

from repro.experiments import fig2
from repro.workload.groups import FluctuationGroup


def test_fig2_fluctuation(benchmark, config):
    result = benchmark.pedantic(fig2.run, args=(config,), rounds=1, iterations=1)
    print()
    print(fig2.render(result))
    assert result.all_in_band()
    medians = [
        result.per_group[group]["median"]
        for group in (
            FluctuationGroup.STABLE,
            FluctuationGroup.MODERATE,
            FluctuationGroup.BURSTY,
        )
    ]
    assert medians[0] < 1.0 <= medians[1] < 3.0 <= medians[2]
