"""Bench: regenerate Fig. 3 (per-algorithm CDFs vs both benchmarks).

Paper shape (§VI-B): each online algorithm saves money versus
Keep-Reserved for the majority of users (>60% / >70% / >75% for
A_{3T/4} / A_{T/2} / A_{T/4}); a small tail loses (~1% / 3% / 5%); the
online rule's losing tail is far smaller than All-Selling's.
"""

from repro.experiments import fig3
from repro.core.policies import POLICY_KEEP


def test_fig3_cdfs(benchmark, config, sweep):
    result = benchmark.pedantic(
        fig3.run, args=(config,), kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print()
    print(fig3.render(result))

    summaries = result.summaries
    # Majority of users save, increasingly with earlier decision spots.
    assert summaries["A_{3T/4}"].fraction_saving > 0.5
    assert summaries["A_{T/4}"].fraction_saving >= summaries["A_{3T/4}"].fraction_saving
    # Mean savings beat Keep-Reserved for every algorithm.
    for name, summary in summaries.items():
        assert summary.mean < 1.0, name
    # The losing tail stays small (paper: 1-5%).
    for summary in summaries.values():
        assert summary.fraction_losing < 0.15

    # All-Selling loses for far more users than the online rule does
    # (the point of being selective).
    normalized = sweep.normalized()
    import numpy as np

    for online_name, all_name in fig3.PANELS.items():
        online_losing = float(np.mean(normalized[online_name] > 1.0))
        all_losing = float(np.mean(normalized[all_name] > 1.0))
        assert online_losing < all_losing, (online_name, all_name)
