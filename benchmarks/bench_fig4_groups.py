"""Bench: regenerate Fig. 4 (the three algorithms within each group).

Paper shape: on average the earlier the decision spot the better, in
every fluctuation group — A_{T/4} <= A_{T/2} <= A_{3T/4} < 1.
"""

from repro.experiments import fig4
from repro.workload.groups import FluctuationGroup


def test_fig4_groups(benchmark, config, sweep):
    result = benchmark.pedantic(
        fig4.run, args=(config,), kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print()
    print(fig4.render(result))
    for group in FluctuationGroup:
        assert result.mean_ordering_holds(group), group
        for summary in result.summaries[group].values():
            assert summary.mean < 1.0
