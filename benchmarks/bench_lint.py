"""Bench: lint-engine node traversal, recorded to BENCH_lint.json.

Not a paper artefact — this guards the engine optimisation that came
with the whole-program layer: every rule used to run its own
``ast.walk`` over each module (11 full traversals per file); now
:meth:`ModuleContext.nodes` serves all rules from one per-file index
built in a single walk. The bench lints the real ``src/repro`` tree
both ways — ``indexed`` is the shipped engine, ``walked`` monkeypatches
``nodes()`` back to a fresh ``ast.walk`` per rule — and records the
speedup.

Run standalone (writes ``BENCH_lint.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_lint.py
    PYTHONPATH=src python benchmarks/bench_lint.py --repeats 5

or via pytest (a single-repeat smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_lint.py
"""

from __future__ import annotations

import argparse
import ast
import json
import platform
import time
from pathlib import Path
from typing import Iterator

from repro._version import __version__
from repro.lint.engine import lint_paths
from repro.lint.registry import ModuleContext

ROOT = Path(__file__).resolve().parents[1]
TARGET = ROOT / "src" / "repro"


def _walked_nodes(self: ModuleContext, *node_types: type) -> "Iterator[ast.AST]":
    """The pre-index behaviour: one full tree walk per nodes() call."""
    return (node for node in ast.walk(self.tree) if type(node) in node_types)


def _time_lint(repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        report = lint_paths([TARGET])
        elapsed = time.perf_counter() - began
        if not report.clean:  # the tree must stay lint-clean to compare
            raise RuntimeError("src/repro is not lint-clean; fix before benching")
        best = min(best, elapsed)
    return best


def run_bench(repeats: int = 3) -> dict:
    """Measure indexed vs per-rule-walk linting of src/repro."""
    indexed_seconds = _time_lint(repeats)
    original = ModuleContext.nodes
    ModuleContext.nodes = _walked_nodes  # type: ignore[method-assign]
    try:
        walked_seconds = _time_lint(repeats)
    finally:
        ModuleContext.nodes = original  # type: ignore[method-assign]
    files = len(list(TARGET.rglob("*.py")))
    return {
        "benchmark": "lint_node_index",
        "version": __version__,
        "created_unix": round(time.time(), 3),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {"files": files, "repeats": repeats},
        "walked": {"seconds": round(walked_seconds, 4)},
        "indexed": {"seconds": round(indexed_seconds, 4)},
        "indexed_speedup": round(walked_seconds / indexed_seconds, 2),
    }


def test_indexed_traversal_not_slower(tmp_path):
    """Smoke pass: the shared index must not lose to per-rule walks."""
    record = run_bench(repeats=1)
    assert record["indexed"]["seconds"] > 0
    # Generous bound: sharing one walk can never cost 2x the old way.
    assert record["indexed"]["seconds"] < record["walked"]["seconds"] * 2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", type=Path, default=ROOT / "BENCH_lint.json"
    )
    arguments = parser.parse_args()
    record = run_bench(repeats=arguments.repeats)
    arguments.output.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
