"""Bench: marketplace matching throughput and the discount/speed law.

Section III-B's motivation for the seller discount: cheaper listings
jump the lowest-upfront-first queue. The bench measures matching
throughput and verifies that deeper discounts sell through faster in a
simulated market.
"""

import numpy as np

from repro.marketplace.listing import Listing
from repro.marketplace.market import BuyerArrivalProcess, Marketplace, BuyRequest, simulate_market


def build_cohort(discount, size, reference=753.0):
    return [
        Listing(
            seller_id=f"s{i}",
            instance_type="d2.xlarge",
            original_upfront=1506.0,
            period_hours=8760,
            remaining_hours=4380,
            asking_upfront=discount * reference,
            listed_at=0,
        )
        for i in range(size)
    ]


def test_matching_throughput(benchmark):
    def run():
        market = Marketplace()
        for listing in build_cohort(0.8, 500):
            market.list_reservation(listing)
        filled = 0
        for hour in range(200):
            report = market.fulfil(
                BuyRequest(buyer_id=f"b{hour}", instance_type="d2.xlarge",
                           count=2, max_unit_price=700.0, hour=hour)
            )
            filled += report.filled
        return filled

    filled = benchmark(run)
    assert filled == 400  # 2 per hour, book deep enough


def test_deeper_discount_sells_through_faster(benchmark):
    def run():
        rng = np.random.default_rng(1)
        buyers = BuyerArrivalProcess(
            instance_type="d2.xlarge", rate_per_hour=0.5, reference_price=753.0
        )
        outcomes = {}
        for discount in (0.5, 0.8, 1.0):
            cohort = build_cohort(discount, 40)
            outcomes[discount] = simulate_market(cohort, buyers, 400, rng)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for discount, outcome in outcomes.items():
        print(
            f"discount a={discount:.1f}: sold {outcome.sold}/{outcome.listings} "
            f"({outcome.sell_through:.0%})"
        )
    assert outcomes[0.5].sell_through >= outcomes[1.0].sell_through
