"""Bench: optimality gap of the online algorithms (extension).

Reports each algorithm's cost ratio against (a) the unrestricted fleet
optimum (practical foresight headroom) and (b) the spot-restricted
optimum mirroring the proofs' benchmark. The fleet-level restricted
ratios are expected to sit inside the proved single-instance bounds —
not a theorem at fleet level, but a strong consistency check.
"""

from repro.experiments import optgap


def test_optimality_gap(benchmark, config, population):
    # The benchmark's OPT runs are the expensive part; use a slice of
    # the shared population so the bench stays in seconds.
    subset = population[:: max(len(population) // 60, 1)]
    result = benchmark.pedantic(
        optgap.run, args=(config,), kwargs={"users": subset}, rounds=1, iterations=1
    )
    print()
    print(optgap.render(result))
    for row in result.rows:
        assert row.mean_ratio_unrestricted >= 1.0 - 1e-9
        # Fleet-level consistency with the theory: the mean restricted
        # ratio respects the proved single-instance bound.
        assert row.mean_ratio_restricted <= row.proved_bound
    assert result.ordering_holds()
