"""Bench: population-tensor engine vs per-user loop, to BENCH_population.json.

Not a paper artefact — this guards the scaling layer: the population
engine of :mod:`repro.core.popsim` must beat the per-user ``run_fast``
loop by an order of magnitude in users/sec on the BENCH_sweep config,
and a 100k-user synthetic store must stream through it memory-mapped in
bounded memory (peak RSS is recorded per stage). The per-user engine at
the 5k/100k scales is measured on a user sample and extrapolated — the
whole point is that running it in full is too slow.

Run standalone (writes ``BENCH_population.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_population.py
    PYTHONPATH=src python benchmarks/bench_population.py --sizes 5000 --sample 500

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_population.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import tempfile
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.account import CostModel
from repro.core.fastsim import ENGINE_VERSION, FastPolicyKind, run_fast
from repro.core.popsim import (
    DEFAULT_BLOCK_USERS,
    prepare_population,
    run_population,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import build_experiment_population
from repro.experiments.runner import run_sweep
from repro.workload import store as store_module
from repro.workload.store import PopulationStore

PHIS = (0.75, 0.5, 0.25)

#: Period of the synthetic large-scale populations (a 2-period horizon
#: keeps the 100k demand matrix at ~150 MB on disk).
SYNTHETIC_PERIOD = 96


def _peak_rss_mb() -> float:
    """Process high-water resident set size, in MB (Linux: ru_maxrss KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _policy_runs_per_user() -> int:
    """Policies evaluated per user: Keep + 3 online + 3 all-selling."""
    return 1 + 2 * len(PHIS)


def synthesize_store(
    root: Path, n_users: int, horizon: int, seed: int, block_users: int = 8192
) -> Path:
    """Write a synthetic population store block-by-block (bounded memory:
    the dense demand matrix goes straight into an on-disk ``.npy``)."""
    root.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed)
    demands = np.lib.format.open_memmap(
        root / store_module._DEMANDS_FILE,
        mode="w+",
        dtype=np.int64,
        shape=(n_users, horizon),
    )
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    hour_parts, count_parts = [], []
    nnz = 0
    for start in range(0, n_users, block_users):
        stop = min(start + block_users, n_users)
        demands[start:stop] = rng.integers(0, 6, size=(stop - start, horizon))
        sparse = np.where(
            rng.random((stop - start, horizon)) < 0.05,
            rng.integers(1, 4, size=(stop - start, horizon)),
            0,
        )
        rows, cols = np.nonzero(sparse)
        per_row = np.bincount(rows, minlength=stop - start)
        indptr[start + 1 : stop + 1] = nnz + np.cumsum(per_row)
        nnz += rows.size
        hour_parts.append(cols.astype(np.int64))
        count_parts.append(sparse[rows, cols].astype(np.int64))
    demands.flush()
    del demands
    np.save(root / store_module._RES_INDPTR_FILE, indptr)
    np.save(root / store_module._RES_HOURS_FILE, np.concatenate(hour_parts))
    np.save(root / store_module._RES_COUNTS_FILE, np.concatenate(count_parts))
    meta = {
        "format": store_module.STORE_FORMAT,
        "n_users": n_users,
        "horizon": horizon,
        "user_ids": None,
        "groups": None,
        "cvs": None,
        "imitators": None,
    }
    with (root / store_module._META_FILE).open("w", encoding="utf-8") as handle:
        json.dump(meta, handle)
    return root


def _run_all_policies_fast(demands_row, reservations_row, model) -> None:
    run_fast(demands_row, reservations_row, model, kind=FastPolicyKind.KEEP_RESERVED)
    for phi in PHIS:
        run_fast(demands_row, reservations_row, model, phi=phi)
    for phi in PHIS:
        run_fast(
            demands_row, reservations_row, model, phi=phi,
            kind=FastPolicyKind.ALL_SELLING,
        )


def _run_all_policies_population(demands, reservations, model) -> None:
    prepared = prepare_population(demands, reservations, model.period)
    run_population(
        demands, reservations, model, kind=FastPolicyKind.KEEP_RESERVED,
        precomputed=prepared,
    )
    for phi in PHIS:
        run_population(demands, reservations, model, phi=phi, precomputed=prepared)
    for phi in PHIS:
        run_population(
            demands, reservations, model, phi=phi,
            kind=FastPolicyKind.ALL_SELLING, precomputed=prepared,
        )


def measure_store_population(store: PopulationStore, model: CostModel) -> dict:
    """Stream every user-block of a (possibly mmapped) store through the
    population engine, full policy set."""
    began = time.perf_counter()
    for start, stop in store.iter_blocks(DEFAULT_BLOCK_USERS):
        _run_all_policies_population(
            store.demands_block(start, stop),
            store.reservations_block(start, stop),
            model,
        )
    seconds = time.perf_counter() - began
    return {
        "engine": "population",
        "users": store.n_users,
        "seconds": round(seconds, 4),
        "users_per_second": round(store.n_users / seconds, 2) if seconds else None,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def measure_store_per_user(
    store: PopulationStore, model: CostModel, sample: int
) -> dict:
    """Per-user loop over a user sample of the store (extrapolated)."""
    sample = min(sample, store.n_users)
    demands = store.demands_block(0, sample)
    reservations = store.reservations_block(0, sample)
    began = time.perf_counter()
    for user in range(sample):
        _run_all_policies_fast(demands[user], reservations[user], model)
    seconds = time.perf_counter() - began
    record = {
        "engine": "per-user",
        "users": store.n_users,
        "sample_users": sample,
        "seconds": round(seconds, 4),
        "users_per_second": round(sample / seconds, 2) if seconds else None,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if sample < store.n_users:
        record["note"] = (
            f"measured on the first {sample} of {store.n_users} users and "
            "extrapolated; a full per-user pass at this scale is the cost "
            "this engine exists to avoid"
        )
    return record


def measure_sweep_engines(config: ExperimentConfig) -> dict:
    """Both run_sweep engines on the BENCH_sweep config (full policy set
    incl. All-Selling, serial, no cache): the ≥10x users/sec gate."""
    population = build_experiment_population(config)
    record: dict = {"users": len(population)}
    for engine in ("user", "population"):
        sweep = run_sweep(config, users=population, engine=engine)
        simulate = sweep.timing.stage_seconds["simulate"]
        record[engine] = {
            "simulate_seconds": round(simulate, 4),
            "users_per_second": (
                round(len(population) / simulate, 2) if simulate else None
            ),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
        }
    user_rate = record["user"]["users_per_second"] or 0.0
    population_rate = record["population"]["users_per_second"] or 0.0
    if user_rate:
        record["speedup"] = round(population_rate / user_rate, 2)
    return record


def run_bench(
    sizes: "tuple[int, ...]" = (5_000, 100_000),
    sample: int = 1_000,
    store_root: "Path | None" = None,
    sweep_config: "ExperimentConfig | None" = None,
) -> dict:
    """Measure both engines at the sweep scale and at synthetic scales."""
    config = sweep_config if sweep_config is not None else ExperimentConfig.default()
    sweep_record = measure_sweep_engines(config)

    synthetic_config = ExperimentConfig(
        users_per_group=1, period_hours=SYNTHETIC_PERIOD, seed=7, label="synthetic"
    )
    model = synthetic_config.cost_model()
    horizon = synthetic_config.horizon
    scale_runs = []
    with tempfile.TemporaryDirectory(
        dir=str(store_root) if store_root is not None else None
    ) as scratch:
        for n_users in sizes:
            root = synthesize_store(
                Path(scratch) / f"pop-{n_users}", n_users, horizon, seed=n_users
            )
            store = PopulationStore.load(root, mmap=True)
            scale_runs.append(
                {
                    "users": n_users,
                    "horizon": horizon,
                    "mmap": True,
                    "population": measure_store_population(store, model),
                    "per_user": measure_store_per_user(store, model, sample),
                }
            )

    notes = [
        "peak_rss_mb is the process-lifetime high-water mark "
        "(resource.getrusage), so later stages can only report values >= "
        "earlier ones; the 100k-user run staying near the earlier marks is "
        "the bounded-memory evidence — the store streams through "
        f"{DEFAULT_BLOCK_USERS}-user blocks of a memory-mapped matrix "
        "instead of materialising the whole population tensor.",
        "per-user rates at the synthetic scales are sample-extrapolated "
        "(see each run's note); the sweep-config rates are measured in full.",
    ]

    return {
        "benchmark": "population_engine",
        "version": __version__,
        "engine_version": ENGINE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "label": config.label,
            "total_users": config.total_users,
            "period_hours": config.period_hours,
            "horizon_hours": config.horizon,
            "policies_per_user": _policy_runs_per_user(),
        },
        "sweep_config_comparison": sweep_record,
        "scale_runs": scale_runs,
        "notes": notes,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[5_000, 100_000], metavar="N"
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=1_000,
        metavar="N",
        help="per-user engine sample size at the synthetic scales",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_population.json"), metavar="FILE"
    )
    args = parser.parse_args(argv)
    record = run_bench(sizes=tuple(args.sizes), sample=args.sample)
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    comparison = record["sweep_config_comparison"]
    print(
        f"  sweep config ({comparison['users']} users): "
        f"per-user {comparison['user']['users_per_second']} u/s, "
        f"population {comparison['population']['users_per_second']} u/s "
        f"({comparison.get('speedup', '?')}x)"
    )
    for run in record["scale_runs"]:
        print(
            f"  {run['users']} users: population "
            f"{run['population']['users_per_second']} u/s, per-user "
            f"{run['per_user']['users_per_second']} u/s (sampled), "
            f"peak RSS {run['population']['peak_rss_mb']} MB"
        )
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape(tmp_path):
    tiny = ExperimentConfig(users_per_group=2, period_hours=96, seed=3, label="bench")
    record = run_bench(
        sizes=(64,), sample=16, store_root=tmp_path, sweep_config=tiny
    )
    assert record["benchmark"] == "population_engine"
    assert record["engine_version"] == ENGINE_VERSION
    comparison = record["sweep_config_comparison"]
    assert comparison["users"] == tiny.total_users
    assert comparison["population"]["users_per_second"] > 0
    (run,) = record["scale_runs"]
    assert run["users"] == 64
    assert run["per_user"]["sample_users"] == 16
    assert "extrapolated" in run["per_user"]["note"]
    assert run["population"]["peak_rss_mb"] > 0


def test_synthetic_store_round_trips(tmp_path):
    root = synthesize_store(tmp_path / "s", n_users=10, horizon=24, seed=1)
    store = PopulationStore.load(root)
    assert (store.n_users, store.horizon) == (10, 24)
    dense = store.reservations_block(0, 10)
    assert np.array_equal(store.reserved_totals(), dense.sum(axis=1))


if __name__ == "__main__":
    raise SystemExit(main())
