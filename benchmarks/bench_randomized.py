"""Bench: the future-work randomized algorithm (Section VII).

The paper speculates a randomized spot "will achieve a better possible
competitive ratio". The bench optimises the spot mixture with the
minimax LP and reports the deterministic-vs-randomized worst-case
expected ratios against the two-block adversary family (oblivious OPT).
"""

from repro.core.randomized import optimize_distribution
from repro.pricing.catalog import paper_experiment_plan


def test_randomized_design(benchmark):
    plan = paper_experiment_plan().with_period(192)

    design = benchmark.pedantic(
        optimize_distribution, args=(plan, 0.8), rounds=1, iterations=1
    )
    print()
    print("deterministic worst-case ratios (oblivious adversary):")
    for phi, ratio in sorted(design.deterministic_ratios.items()):
        print(f"  phi={phi:<5g} {ratio:.4f}")
    mix = ", ".join(
        f"{phi:g}T: {p:.2f}"
        for phi, p in zip(design.distribution.spots, design.distribution.probabilities)
    )
    print(f"optimised mixture: {mix}")
    print(f"randomized worst-case expected ratio: {design.ratio:.4f} "
          f"({design.improvement:.1%} better than the best single spot)")
    # The paper's speculation, verified: randomisation strictly helps.
    assert design.ratio < design.best_deterministic - 1e-6
