"""Bench: advisory-service throughput, recorded to BENCH_serve.json.

Not a paper artefact — this guards the serving layer: the vectorised
fleet engine must beat one-event-at-a-time ingestion by a wide margin,
and a checkpoint write must stay cheap enough to run inline with
ingestion. The record format is documented in docs/serving.md.

Run standalone (writes ``BENCH_serve.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --instances 2000 --hours 32 --output BENCH_serve.json

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.account import CostModel
from repro.pricing.catalog import paper_experiment_plan
from repro.serve.checkpoint import load_checkpoint, save_checkpoint
from repro.serve.state import STATE_VERSION, FleetState


def build_model(period_hours: int) -> CostModel:
    plan = paper_experiment_plan()
    if period_hours != plan.period_hours:
        plan = plan.with_period(period_hours)
    return CostModel(plan=plan, selling_discount=0.8)


def _event_matrix(instances: int, hours: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((hours, instances)) < 0.6


def _measure_single(model: CostModel, busy: np.ndarray) -> float:
    """One-event-at-a-time ingestion (the HTTP worst case)."""
    fleet = FleetState(model)
    ids = [f"i-{k}" for k in range(busy.shape[1])]
    began = time.perf_counter()
    for hour in range(busy.shape[0]):
        row = busy[hour]
        for k, instance_id in enumerate(ids):
            fleet.apply_events([instance_id], [bool(row[k])])
    return time.perf_counter() - began


def _measure_vectorised(model: CostModel, busy: np.ndarray) -> "tuple[float, FleetState]":
    """Whole-fleet batches: one apply_events call per simulated hour."""
    fleet = FleetState(model)
    ids = [f"i-{k}" for k in range(busy.shape[1])]
    began = time.perf_counter()
    for hour in range(busy.shape[0]):
        fleet.apply_events(ids, list(busy[hour]))
    return time.perf_counter() - began, fleet


def _measure_checkpoint(fleet: FleetState, path: Path) -> "dict[str, float]":
    began = time.perf_counter()
    save_checkpoint(path, fleet, events_ingested=fleet.size)
    save_seconds = time.perf_counter() - began
    began = time.perf_counter()
    load_checkpoint(path)
    load_seconds = time.perf_counter() - began
    return {
        "save_seconds": round(save_seconds, 6),
        "load_seconds": round(load_seconds, 6),
        "bytes": path.stat().st_size,
    }


def run_bench(
    instances: int = 1000,
    hours: int = 32,
    period_hours: int = 64,
    seed: int = 2018,
    checkpoint_dir: "Path | None" = None,
) -> dict:
    """Measure single vs vectorised ingest and checkpoint latency."""
    model = build_model(period_hours)
    busy = _event_matrix(instances, hours, seed)
    events = instances * hours

    single_seconds = _measure_single(model, busy)
    vector_seconds, fleet = _measure_vectorised(model, busy)

    checkpoint = {}
    if checkpoint_dir is not None:
        checkpoint = _measure_checkpoint(fleet, Path(checkpoint_dir) / "bench.ckpt")

    return {
        "benchmark": "serve_ingest",
        "version": __version__,
        "state_version": STATE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "instances": instances,
            "hours": hours,
            "events": events,
            "period_hours": period_hours,
            "seed": seed,
        },
        "single": {
            "seconds": round(single_seconds, 4),
            "events_per_second": round(events / single_seconds, 1),
        },
        "vectorised": {
            "seconds": round(vector_seconds, 4),
            "events_per_second": round(events / vector_seconds, 1),
        },
        "vectorised_speedup": round(single_seconds / vector_seconds, 2),
        "checkpoint": checkpoint,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=1000, metavar="N")
    parser.add_argument("--hours", type=int, default=32, metavar="H")
    parser.add_argument("--period-hours", type=int, default=64, metavar="T")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_serve.json"), metavar="FILE"
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=Path(".repro_cache"),
        help="directory used for the checkpoint latency measurement",
    )
    args = parser.parse_args(argv)
    args.checkpoint_dir.mkdir(parents=True, exist_ok=True)
    record = run_bench(
        instances=args.instances,
        hours=args.hours,
        period_hours=args.period_hours,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    print(
        f"  single:     {record['single']['events_per_second']} events/s "
        f"({record['single']['seconds']}s)"
    )
    print(
        f"  vectorised: {record['vectorised']['events_per_second']} events/s "
        f"({record['vectorised']['seconds']}s, "
        f"{record['vectorised_speedup']}x)"
    )
    if record["checkpoint"]:
        print(
            f"  checkpoint: save {record['checkpoint']['save_seconds']}s, "
            f"load {record['checkpoint']['load_seconds']}s, "
            f"{record['checkpoint']['bytes']} bytes"
        )
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape(tmp_path):
    record = run_bench(
        instances=20, hours=8, period_hours=8, checkpoint_dir=tmp_path
    )
    assert record["benchmark"] == "serve_ingest"
    assert record["state_version"] == STATE_VERSION
    assert record["config"]["events"] == 20 * 8
    assert record["single"]["events_per_second"] > 0
    assert record["vectorised"]["events_per_second"] > 0
    assert record["checkpoint"]["bytes"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
