"""Bench: sharded-router throughput, recorded to BENCH_shard.json.

Not a paper artefact — this guards the sharding layer: end-to-end
ingest through the front router (consistent hashing, per-shard fan-out,
seq stamping, envelope parsing) at shard counts N=1, 2, 4, plus p50/p99
per-batch ingest latency. The record format is documented in
docs/serving.md.

Run standalone (writes ``BENCH_shard.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_shard.py
    PYTHONPATH=src python benchmarks/bench_shard.py \
        --instances 400 --hours 24 --output BENCH_shard.json

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.account import CostModel
from repro.pricing.catalog import paper_experiment_plan
from repro.serve.shard import RouterServer, start_cluster
from repro.serve.state import STATE_VERSION


def build_model(period_hours: int) -> CostModel:
    plan = paper_experiment_plan()
    if period_hours != plan.period_hours:
        plan = plan.with_period(period_hours)
    return CostModel(plan=plan, selling_discount=0.8)


def _event_matrix(instances: int, hours: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((hours, instances)) < 0.6


def _percentile(samples: "list[float]", q: float) -> float:
    return float(statistics.quantiles(samples, n=100)[int(q) - 1])


def _measure_cluster(
    model: CostModel, busy: np.ndarray, n_shards: int, checkpoint_dir: Path
) -> dict:
    """Drive one cluster over the full event matrix via HTTP."""
    ids = [f"i-{k}" for k in range(busy.shape[1])]
    router = start_cluster(model, n_shards, checkpoint_dir)
    server = RouterServer(("127.0.0.1", 0), router)
    url = f"http://127.0.0.1:{server.server_address[1]}/v1/events"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    latencies = []
    try:
        began = time.perf_counter()
        for hour in range(busy.shape[0]):
            row = busy[hour]
            body = json.dumps(
                {"events": [
                    {"instance": ids[k], "busy": bool(row[k])}
                    for k in range(len(ids))
                ]}
            ).encode("utf-8")
            request = urllib.request.Request(
                url,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            sent = time.perf_counter()
            with urllib.request.urlopen(request, timeout=60) as response:
                response.read()
            latencies.append(time.perf_counter() - sent)
        elapsed = time.perf_counter() - began
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        router.close()
    events = busy.shape[0] * busy.shape[1]
    return {
        "shards": n_shards,
        "seconds": round(elapsed, 4),
        "events_per_second": round(events / elapsed, 1),
        "ingest_p50_ms": round(_percentile(latencies, 50) * 1000, 3),
        "ingest_p99_ms": round(_percentile(latencies, 99) * 1000, 3),
    }


def run_bench(
    instances: int = 400,
    hours: int = 24,
    period_hours: int = 64,
    seed: int = 2018,
    shard_counts: "tuple[int, ...]" = (1, 2, 4),
) -> dict:
    """Measure router ingest throughput/latency per shard count."""
    model = build_model(period_hours)
    busy = _event_matrix(instances, hours, seed)
    clusters = []
    for n_shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as directory:
            clusters.append(
                _measure_cluster(model, busy, n_shards, Path(directory))
            )
    return {
        "benchmark": "shard_ingest",
        "version": __version__,
        "state_version": STATE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "instances": instances,
            "hours": hours,
            "events": instances * hours,
            "period_hours": period_hours,
            "seed": seed,
        },
        "clusters": clusters,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=400, metavar="N")
    parser.add_argument("--hours", type=int, default=24, metavar="H")
    parser.add_argument("--period-hours", type=int, default=64, metavar="T")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="shard counts to measure, one cluster each",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_shard.json"), metavar="FILE"
    )
    args = parser.parse_args(argv)
    record = run_bench(
        instances=args.instances,
        hours=args.hours,
        period_hours=args.period_hours,
        seed=args.seed,
        shard_counts=tuple(args.shards),
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    for cluster in record["clusters"]:
        print(
            f"  N={cluster['shards']}: {cluster['events_per_second']} events/s "
            f"({cluster['seconds']}s, p50 {cluster['ingest_p50_ms']}ms, "
            f"p99 {cluster['ingest_p99_ms']}ms)"
        )
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape():
    record = run_bench(instances=16, hours=6, period_hours=8, shard_counts=(1, 2))
    assert record["benchmark"] == "shard_ingest"
    assert record["state_version"] == STATE_VERSION
    assert record["config"]["events"] == 16 * 6
    assert [c["shards"] for c in record["clusters"]] == [1, 2]
    for cluster in record["clusters"]:
        assert cluster["events_per_second"] > 0
        assert cluster["ingest_p50_ms"] <= cluster["ingest_p99_ms"]


if __name__ == "__main__":
    raise SystemExit(main())
