"""Bench: sharded-router throughput, recorded to BENCH_shard.json.

Not a paper artefact — this guards the sharding layer: end-to-end
ingest through the front router (consistent hashing, per-shard fan-out,
seq stamping, envelope parsing) at shard counts N=1, 2, 4, over *both*
router→worker transports:

* ``binary`` — PR 8's persistent length-prefixed frame connections with
  the per-worker WAL (the default);
* ``json`` — PR 5's one JSON-over-HTTP request per hop with
  ``--checkpoint-interval 1`` (kept as the comparison baseline).

Setup cost (booting the cluster, dialling connections, the first
batch's lazy channel establishment and seq resync) is measured apart
from steady-state ingest, so the recorded events/s no longer smears
one-off connection setup across the run. The front hop reuses one
persistent HTTP/1.1 connection for the same reason. The record format
is documented in docs/serving.md.

Run standalone (writes ``BENCH_shard.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_shard.py
    PYTHONPATH=src python benchmarks/bench_shard.py \
        --instances 400 --hours 24 --output BENCH_shard.json

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import socket
import statistics
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.account import CostModel
from repro.pricing.catalog import paper_experiment_plan
from repro.serve.shard import RouterServer, start_cluster
from repro.serve.state import STATE_VERSION

#: Uncounted leading batches: they absorb lazy channel dialling, seq
#: resync, and allocator warm-up, leaving the timed span steady-state.
WARMUP_BATCHES = 2


def build_model(period_hours: int) -> CostModel:
    plan = paper_experiment_plan()
    if period_hours != plan.period_hours:
        plan = plan.with_period(period_hours)
    return CostModel(plan=plan, selling_discount=0.8)


def _event_matrix(instances: int, hours: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((hours, instances)) < 0.6


def _percentile(samples: "list[float]", q: float) -> float:
    return float(statistics.quantiles(samples, n=100)[int(q) - 1])


def _measure_cluster(
    model: CostModel,
    busy: np.ndarray,
    n_shards: int,
    transport: str,
    checkpoint_dir: Path,
) -> dict:
    """One cluster, one transport: setup vs steady-state split."""
    ids = [f"i-{k}" for k in range(busy.shape[1])]
    bodies = [
        json.dumps(
            {"events": [
                {"instance": ids[k], "busy": bool(busy[hour][k])}
                for k in range(len(ids))
            ]}
        ).encode("utf-8")
        for hour in range(busy.shape[0])
    ]

    setup_began = time.perf_counter()
    router = start_cluster(model, n_shards, checkpoint_dir, transport=transport)
    server = RouterServer(("127.0.0.1", 0), router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.server_address[1], timeout=60
    )
    connection.connect()
    # http.client writes headers and body as separate segments; without
    # TCP_NODELAY, Nagle + delayed ACK stalls every request ~40ms and
    # the bench measures the kernel timer, not the transport.
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def post(body: bytes) -> None:
        connection.request(
            "POST",
            "/v1/events",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        response.read()
        if response.status != 200:
            raise RuntimeError(
                f"ingest answered {response.status} over {transport}"
            )

    latencies = []
    try:
        # Warm-up: lazy worker connections dial, seqs resync, caches
        # fill. Counted as setup, not steady-state.
        for body in bodies[:WARMUP_BATCHES]:
            post(body)
        setup_seconds = time.perf_counter() - setup_began

        steady = bodies[WARMUP_BATCHES:]
        began = time.perf_counter()
        for body in steady:
            sent = time.perf_counter()
            post(body)
            latencies.append(time.perf_counter() - sent)
        steady_seconds = time.perf_counter() - began
    finally:
        connection.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        router.close()
    events = len(steady) * busy.shape[1]
    return {
        "shards": n_shards,
        "transport": transport,
        "setup_seconds": round(setup_seconds, 4),
        "steady_seconds": round(steady_seconds, 4),
        "events_per_second": round(events / steady_seconds, 1),
        "ingest_p50_ms": round(_percentile(latencies, 50) * 1000, 3),
        "ingest_p99_ms": round(_percentile(latencies, 99) * 1000, 3),
    }


def run_bench(
    instances: int = 400,
    hours: int = 24,
    period_hours: int = 64,
    seed: int = 2018,
    shard_counts: "tuple[int, ...]" = (1, 2, 4),
    transports: "tuple[str, ...]" = ("binary", "json"),
) -> dict:
    """Measure router ingest throughput/latency per shard count, for
    the binary-frame transport and the legacy JSON hop."""
    model = build_model(period_hours)
    busy = _event_matrix(instances, hours, seed)
    results: "dict[str, list[dict]]" = {}
    for transport in transports:
        clusters = []
        for n_shards in shard_counts:
            with tempfile.TemporaryDirectory(
                prefix="repro-bench-shard-"
            ) as directory:
                clusters.append(
                    _measure_cluster(
                        model, busy, n_shards, transport, Path(directory)
                    )
                )
        results[transport] = clusters
    cpu_count = os.cpu_count() or 1
    return {
        "benchmark": "shard_ingest",
        "version": __version__,
        "state_version": STATE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "note": (
            "router and all shard worker processes share this host's "
            f"{cpu_count} core(s); with fewer cores than shards, "
            "events/s is not expected to rise monotonically with shard "
            "count - the binary-vs-json comparison at each N is the "
            "signal"
        ),
        "config": {
            "instances": instances,
            "hours": hours,
            "warmup_batches": WARMUP_BATCHES,
            "steady_events": instances * max(hours - WARMUP_BATCHES, 0),
            "period_hours": period_hours,
            "seed": seed,
        },
        "transports": results,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=400, metavar="N")
    parser.add_argument("--hours", type=int, default=24, metavar="H")
    parser.add_argument("--period-hours", type=int, default=64, metavar="T")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="shard counts to measure, one cluster each",
    )
    parser.add_argument(
        "--transports",
        nargs="+",
        choices=("binary", "json"),
        default=["binary", "json"],
        help="router->worker transports to measure",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_shard.json"), metavar="FILE"
    )
    args = parser.parse_args(argv)
    record = run_bench(
        instances=args.instances,
        hours=args.hours,
        period_hours=args.period_hours,
        seed=args.seed,
        shard_counts=tuple(args.shards),
        transports=tuple(args.transports),
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    for transport, clusters in record["transports"].items():
        for cluster in clusters:
            print(
                f"  {transport} N={cluster['shards']}: "
                f"{cluster['events_per_second']} events/s "
                f"(setup {cluster['setup_seconds']}s, "
                f"steady {cluster['steady_seconds']}s, "
                f"p50 {cluster['ingest_p50_ms']}ms, "
                f"p99 {cluster['ingest_p99_ms']}ms)"
            )
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape():
    record = run_bench(
        instances=16,
        hours=6,
        period_hours=8,
        shard_counts=(1, 2),
        transports=("binary",),
    )
    assert record["benchmark"] == "shard_ingest"
    assert record["state_version"] == STATE_VERSION
    assert record["host"]["cpu_count"] >= 1
    assert record["config"]["steady_events"] == 16 * (6 - WARMUP_BATCHES)
    clusters = record["transports"]["binary"]
    assert [c["shards"] for c in clusters] == [1, 2]
    for cluster in clusters:
        assert cluster["transport"] == "binary"
        assert cluster["events_per_second"] > 0
        assert cluster["setup_seconds"] > 0
        assert cluster["ingest_p50_ms"] <= cluster["ingest_p99_ms"]


if __name__ == "__main__":
    raise SystemExit(main())
