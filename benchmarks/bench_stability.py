"""Bench: seed stability of the headline Table III result.

Not a paper artefact — this guards the reproduction itself: the shape
criteria must not be a single-population fluke. Five independently
seeded populations are swept; every replication must have all means
below one, and the spot ordering must hold in (almost) all of them.
"""

from repro.experiments import stability


def test_seed_stability(benchmark, config):
    result = benchmark.pedantic(
        stability.run, args=(config,), kwargs={"n_seeds": 5}, rounds=1, iterations=1
    )
    print()
    print(stability.render(result))
    assert result.all_below_one == 5
    assert result.orderings_held >= 4
    # The across-seed spread is small relative to the effect size.
    for policy in ("A_{T/2}", "A_{T/4}"):
        assert result.std(policy) < (1.0 - result.mean(policy)) / 2
