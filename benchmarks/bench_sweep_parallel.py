"""Bench: parallel + cached population sweep, recorded to BENCH_sweep.json.

Not a paper artefact — this guards the execution layer itself: the
process-pool fan-out must scale the sweep with available cores, and the
on-disk result cache must make a warm rerun dramatically cheaper than a
cold one. The record format is documented in docs/parallel_execution.md.

Run standalone (writes ``BENCH_sweep.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py
    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py \
        --scale quick --workers 1 2 4 --output BENCH_sweep.json

or via pytest (a scaled-down smoke pass)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_parallel.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro._version import __version__
from repro.core.fastsim import ENGINE_VERSION
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import build_experiment_population
from repro.experiments.runner import run_sweep
from repro.parallel.cache import ResultCache

_SCALES = {
    "quick": ExperimentConfig.quick,
    "default": ExperimentConfig.default,
    "paper": ExperimentConfig.paper_scale,
}


def _measure(config, population, workers, cache=None):
    """Time one sweep run and fold its timing record into a dict."""
    began = time.perf_counter()
    sweep = run_sweep(config, users=population, workers=workers, cache=cache)
    seconds = time.perf_counter() - began
    record = {"workers": workers, "seconds": round(seconds, 4)}
    if sweep.timing is not None:
        record["timing"] = sweep.timing.to_json()
    return record


def run_bench(
    scale: str = "default",
    workers_list: "tuple[int, ...]" = (1, 2, 4),
    cache_root: "Path | None" = None,
) -> dict:
    """Measure serial vs parallel vs cached sweeps; return the record."""
    config = _SCALES[scale]()
    population = build_experiment_population(config)
    cpu_count = os.cpu_count() or 1

    runs = [_measure(config, population, workers) for workers in workers_list]
    serial_seconds = next(r["seconds"] for r in runs if r["workers"] == 1)
    speedups = {
        str(r["workers"]): round(serial_seconds / r["seconds"], 3)
        for r in runs
        if r["workers"] != 1 and r["seconds"] > 0
    }

    cache_runs = {}
    if cache_root is not None:
        store = ResultCache(root=cache_root, namespace=f"bench-{scale}")
        store.clear()
        cache_runs["cold"] = _measure(config, population, 1, cache=store)
        warm_store = ResultCache(root=cache_root, namespace=f"bench-{scale}")
        cache_runs["warm"] = _measure(config, population, 1, cache=warm_store)
        warm_seconds = cache_runs["warm"]["seconds"]
        if warm_seconds > 0:
            cache_runs["warm_speedup_vs_serial"] = round(
                serial_seconds / warm_seconds, 3
            )
        store.clear()

    notes = []
    if cpu_count < 2:
        notes.append(
            f"host exposes {cpu_count} CPU core(s): a process pool cannot run "
            "chunks concurrently here, so the >=2x speedup at 4 workers is "
            "not demonstrable on this host (pool overhead makes parallel "
            "runs slightly slower); rerun on a multi-core host to observe "
            "scaling. The cache warm-run speedup is hardware-independent."
        )
    elif cpu_count < 4:
        notes.append(
            f"host exposes only {cpu_count} CPU core(s); the 4-worker "
            "speedup is bounded by the core count, not by the fan-out."
        )

    return {
        "benchmark": "sweep_parallel",
        "version": __version__,
        "engine_version": ENGINE_VERSION,
        "created_unix": round(time.time(), 3),
        "host": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "label": config.label,
            "total_users": config.total_users,
            "period_hours": config.period_hours,
            "horizon_hours": config.horizon,
        },
        "runs": runs,
        "speedup_vs_serial": speedups,
        "cache": cache_runs,
        "notes": notes,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(_SCALES), default="default")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4], metavar="N"
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_sweep.json"), metavar="FILE"
    )
    parser.add_argument(
        "--cache-root",
        type=Path,
        default=Path(".repro_cache"),
        help="cache root used for the cold/warm cache measurement",
    )
    args = parser.parse_args(argv)
    if 1 not in args.workers:
        args.workers = [1, *args.workers]
    record = run_bench(
        scale=args.scale,
        workers_list=tuple(args.workers),
        cache_root=args.cache_root,
    )
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    for run in record["runs"]:
        print(f"  workers={run['workers']}: {run['seconds']}s")
    if record["speedup_vs_serial"]:
        print(f"  speedup vs serial: {record['speedup_vs_serial']}")
    if record["cache"]:
        cold = record["cache"]["cold"]["seconds"]
        warm = record["cache"]["warm"]["seconds"]
        print(f"  cache: cold {cold}s, warm {warm}s")
    for note in record["notes"]:
        print(f"  note: {note}")
    return 0


# ---------------------------------------------------------------------------
# pytest smoke pass (scaled down: correctness of the record, not the numbers)
# ---------------------------------------------------------------------------


def test_bench_record_shape(tmp_path, monkeypatch):
    tiny = ExperimentConfig(users_per_group=2, period_hours=96, seed=3, label="bench")
    monkeypatch.setitem(_SCALES, "quick", lambda seed=2018: tiny)
    record = run_bench(
        scale="quick", workers_list=(1, 2), cache_root=tmp_path / "cache"
    )
    assert record["benchmark"] == "sweep_parallel"
    assert record["engine_version"] == ENGINE_VERSION
    assert {run["workers"] for run in record["runs"]} == {1, 2}
    assert record["cache"]["cold"]["timing"]["cache_misses"] == tiny.total_users
    assert record["cache"]["warm"]["timing"]["cache_hits"] == tiny.total_users
    assert record["host"]["cpu_count"] >= 1


if __name__ == "__main__":
    raise SystemExit(main())
