"""Bench: regenerate Table I (d2.xlarge pricing) and verify it matches.

Paper values (Table I): No Upfront $0/$293.46/0.402; Partial Upfront
$1506/$125.56/0.344; All Upfront $2952/$0/0.337; On-Demand $0.69/h.
"""

from repro.experiments import table1


def test_table1_pricing(benchmark):
    result = benchmark(table1.run)
    print()
    print(table1.render(result))
    assert result.max_deviation() < 5e-4
