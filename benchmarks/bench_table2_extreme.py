"""Bench: regenerate Table II (the extreme highly-fluctuating user).

Paper values: costs 9.36e4 / 9.40e4 / 9.45e4 / 9.58e4 for A_{3T/4} /
A_{T/2} / A_{T/4} / Keep-Reserved — in the extreme case the latest
decision spot is the safest and all three still beat Keep-Reserved.
Measured shape: the exhibited user prefers the later spots and every
algorithm undercuts Keep-Reserved.
"""

from repro.experiments import table2


def test_table2_extreme_user(benchmark, config, sweep):
    result = benchmark.pedantic(
        table2.run, args=(config,), kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print()
    print(table2.render(result))
    # The substance of Table II: the latest decision spot is the safest
    # in the extreme — A_{3T/4}'s worst case beats the other two's.
    assert result.worst_case_ordering_holds()
    # And the exhibited user still undercuts Keep-Reserved with A_{3T/4}.
    assert result.costs()["A_{3T/4}"] <= result.costs()["Keep-Reserved"] * 1.02
