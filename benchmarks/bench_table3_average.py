"""Bench: regenerate Table III (mean normalized cost per group).

Paper values (normalized to Keep-Reserved):

    A_{3T/4}: 0.9387 / 0.9154 / 0.9300 / 0.9279 (all users)
    A_{T/2} : 0.8797 / 0.8329 / 0.8966 / 0.8643
    A_{T/4} : 0.8199 / 0.7583 / 0.8620 / 0.8032

Measured shape: every cell < 1 and the column-wise ordering
A_{T/4} <= A_{T/2} <= A_{3T/4}; the all-users means land within ~0.08 of
the paper's despite the synthetic traces.
"""

from repro.experiments import table3
from repro.experiments.table3 import PAPER_TABLE_III


def test_table3_average_costs(benchmark, config, sweep):
    result = benchmark.pedantic(
        table3.run, args=(config,), kwargs={"sweep": sweep}, rounds=1, iterations=1
    )
    print()
    print(table3.render(result))
    assert result.all_below_one()
    assert result.ordering_holds()
    for policy, paper_row in PAPER_TABLE_III.items():
        measured = result.measured[policy]["All users"]
        assert abs(measured - paper_row["All users"]) < 0.08, (
            policy, measured, paper_row["All users"]
        )
