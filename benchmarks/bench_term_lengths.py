"""Bench: 1-year vs 3-year reservation terms (extension).

The paper's θ ∈ (1, 4) statistic — and therefore its headline ratios —
is a 1-year-term property. Re-pricing the catalog at 3-year terms makes
θ grow by ≈1.4×, weakening the Case-1 bounds. The bench quantifies that
for the paper's experiment instance and checks the catalog-wide picture.
"""

from repro.pricing.statistics import compute_statistics
from repro.pricing.terms import term_bound_comparison, three_year_catalog


def test_term_lengths(benchmark):
    catalog_3yr = benchmark(three_year_catalog)
    stats = compute_statistics(catalog_3yr)
    print()
    print(f"3-year catalog: theta in [{stats.theta.minimum:.2f}, "
          f"{stats.theta.maximum:.2f}], alpha max {stats.alpha.maximum:.3f}")
    for phi in (0.75, 0.5, 0.25):
        comparison = term_bound_comparison("d2.xlarge", a=0.8, phi=phi)
        print(f"  A_{{{phi:g}T}} d2.xlarge: bound {comparison.bound_1yr:.3f} (1yr) "
              f"-> {comparison.bound_3yr:.3f} (3yr)")
    # The 1-year claim does not carry over: some theta exceed 4...
    assert stats.theta.maximum > 4.0
    # ...so the proved bound weakens with the longer term.
    assert term_bound_comparison("d2.xlarge").bound_weakens
    # But the 3-year commitment is still the cheaper fully-utilised buy.
    from repro.pricing.catalog import default_catalog

    one = default_catalog()["d2.xlarge"]
    three = catalog_3yr["d2.xlarge"]
    assert three.effective_reserved_hourly() < one.effective_reserved_hourly()
