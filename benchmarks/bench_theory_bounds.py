"""Bench: Propositions 1-3b — proved bounds vs empirical worst ratios.

Paper: A_{3T/4} is (2 − α − a/4)-competitive, A_{T/2} is
(3 − 2α − a/2) / (2/(2−a))-competitive, A_{T/4} is (4 − 3α − 3a/4) /
(4/(4−3a))-competitive. The bench stress-tests each with adversarial and
random single-instance profiles; the observed worst ratio must respect
the proved bound (and come close enough to show the bound has teeth).
"""

from repro.experiments import theory


def test_theory_bounds(benchmark, config):
    result = benchmark.pedantic(
        theory.run, args=(config,), kwargs={"trials": 300}, rounds=1, iterations=1
    )
    print()
    print(theory.render(result))
    assert result.all_bounds_hold()
    for row in result.rows:
        assert row.empirical_max > 1.0  # the adversary does real damage
        assert row.empirical_max > 0.5 * row.bound  # and stresses the bound
