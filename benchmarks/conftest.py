"""Shared fixtures for the benchmark harness.

Every table/figure bench consumes the same population sweep, built once
per session. Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick``   — 45 users, 336-hour period (seconds);
* ``default`` — 150 users, 672-hour period (the default);
* ``paper``   — 300 users, 8760-hour period (the paper's full setting).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.population import build_experiment_population
from repro.experiments.runner import run_sweep

_SCALES = {
    "quick": ExperimentConfig.quick,
    "default": ExperimentConfig.default,
    "paper": ExperimentConfig.paper_scale,
}


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    return _SCALES[scale]()


@pytest.fixture(scope="session")
def population(config):
    return build_experiment_population(config)


@pytest.fixture(scope="session")
def sweep(config, population):
    return run_sweep(config, users=population)
