#!/usr/bin/env python3
"""Fleet-wide cost optimisation on Google-cluster-style tenants.

End-to-end version of the paper's Google-trace pipeline: synthesize
tenant-level resource requests (CPU/memory/disk), apply the paper's
preprocessing (binding resource → instance counts), imitate each
tenant's reservation behaviour, then compare the selling policies across
the whole fleet — a miniature of Fig. 3 / Table III for one organisation.

Run:  python examples/fleet_cost_optimization.py
"""

import numpy as np

from repro import CostModel, paper_experiment_plan
from repro.analysis import SavingsSummary, ascii_cdf, format_table, normalize_costs
from repro.core.fastsim import FastPolicyKind, run_fast
from repro.purchasing import imitate, paper_imitators
from repro.workload import ClusterTraceSynthesizer, MachineCapacity, resources_to_demand

POLICIES = {"A_{3T/4}": 0.75, "A_{T/2}": 0.5, "A_{T/4}": 0.25}


def main() -> None:
    plan = paper_experiment_plan().with_period(672)
    horizon = 2 * plan.period_hours
    rng = np.random.default_rng(2018)

    # 1. Synthesize the cluster trace and preprocess to instance demand.
    synthesizer = ClusterTraceSynthesizer(n_users=40)
    tenants = synthesizer.generate(horizon, rng)
    capacity = MachineCapacity(cpu=0.25, memory=0.25, disk=0.25)
    demands = [resources_to_demand(tenant, capacity) for tenant in tenants]
    print(f"{len(tenants)} tenants; mean demand "
          f"{np.mean([d.mean for d in demands]):.1f} instances, "
          f"sigma/mu from {min(d.cv for d in demands if d.mean > 0):.2f} "
          f"to {max(d.cv for d in demands if d.mean > 0):.2f}")

    # 2. Imitate reservations (round-robin over the paper's behaviours).
    imitators = paper_imitators(seed=2018)
    schedules = [
        imitate(trace, plan, imitators[i % len(imitators)])
        for i, trace in enumerate(demands)
    ]
    total_upfront = sum(s.total_upfront for s in schedules)
    print(f"fleet reservations: {sum(s.total_reserved for s in schedules)} "
          f"instances, ${total_upfront:,.0f} upfront\n")

    # 3. Sweep the selling policies.
    model = CostModel(plan, selling_discount=0.8)
    costs = {"Keep-Reserved": []}
    costs.update({name: [] for name in POLICIES})
    for schedule in schedules:
        d, n = schedule.demands.values, schedule.reservations
        keep = run_fast(d, n, model, kind=FastPolicyKind.KEEP_RESERVED)
        costs["Keep-Reserved"].append(keep.total_cost)
        for name, phi in POLICIES.items():
            costs[name].append(run_fast(d, n, model, phi=phi).total_cost)

    normalized = normalize_costs(costs)

    # 4. Report: fleet totals, headline stats, and the CDF picture.
    rows = []
    for name in POLICIES:
        summary = SavingsSummary.of(normalized[name])
        fleet_saving = 1.0 - sum(costs[name]) / sum(costs["Keep-Reserved"])
        rows.append([name, summary.mean, f"{summary.fraction_saving:.0%}",
                     f"{summary.fraction_losing:.0%}", f"{fleet_saving:.1%}"])
    print(format_table(
        ["policy", "mean norm. cost", "tenants saving", "tenants losing",
         "fleet-level saving"],
        rows,
        title="fleet summary (normalized to Keep-Reserved)",
    ))
    print()
    print(ascii_cdf({name: normalized[name].tolist() for name in POLICIES},
                    width=60, height=14))


if __name__ == "__main__":
    main()
