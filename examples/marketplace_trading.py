#!/usr/bin/env python3
"""Trading in the Reserved Instance Marketplace (Section III-B rules).

Walks through the paper's t2.nano example — prorated cap, seller
discount, Amazon's 12% cut — then simulates an order book to show the
discount/speed trade-off: deeper discounts jump the lowest-upfront-first
queue and sell through faster.

Run:  python examples/marketplace_trading.py
"""

import numpy as np

from repro.marketplace import (
    BuyerArrivalProcess,
    FixedDiscountSeller,
    Listing,
    SaleLatencyModel,
    simulate_market,
)
from repro.pricing import get_plan


def main() -> None:
    # --- The paper's worked example, step by step -----------------------
    nano = get_plan("t2.nano")
    print(f"{nano.name}: upfront ${nano.upfront:.0f}, reserved for 1 year")
    halfway = nano.period_hours // 2
    cap = nano.prorated_upfront(halfway)
    print(f"half the cycle left -> marketplace cap = ${cap:.2f}")
    listing = Listing.from_plan(nano, elapsed_hours=halfway, selling_discount=0.8)
    print(f"seller sets 20% off -> asking ${listing.asking_upfront:.2f}")
    print(f"Amazon keeps 12% (${listing.service_fee():.3f}); "
          f"seller receives ${listing.seller_proceeds():.3f}\n")

    # --- Discount vs time-to-sale ---------------------------------------
    d2 = get_plan("d2.xlarge")
    reference = d2.prorated_upfront(d2.period_hours // 2)
    rng = np.random.default_rng(11)
    buyers = BuyerArrivalProcess(
        instance_type="d2.xlarge", rate_per_hour=0.4, reference_price=reference
    )
    print(f"d2.xlarge, half period left (cap ${reference:.0f}); "
          f"buyers arrive Poisson(0.4/h) hunting for discounts")
    print(f"{'discount a':>10s} {'sold/40':>8s} {'sell-through':>13s} "
          f"{'mean wait (h)':>14s}")
    for discount in (0.5, 0.7, 0.8, 0.9, 1.0):
        seller = FixedDiscountSeller(discount=discount)
        cohort = [
            Listing(
                seller_id=f"s{i}",
                instance_type="d2.xlarge",
                original_upfront=d2.upfront,
                period_hours=d2.period_hours,
                remaining_hours=d2.period_hours // 2,
                asking_upfront=seller.asking_price(reference, 0),
            )
            for i in range(40)
        ]
        outcome = simulate_market(cohort, buyers, hours=24 * 30, rng=rng)
        wait = outcome.mean_time_to_sale()
        wait_text = f"{wait:14.0f}" if np.isfinite(wait) else f"{'-':>14s}"
        print(f"{discount:10.1f} {outcome.sold:8d} "
              f"{outcome.sell_through:13.0%} {wait_text}")

    # --- The reduced-form latency law ------------------------------------
    model = SaleLatencyModel()
    print("\nreduced-form hazard model (expected hours to sale):")
    for discount in (0.5, 0.8, 1.0):
        print(f"  a={discount:.1f}: {model.expected_hours_to_sale(discount):7.0f}h")
    print("\nSelling faster costs income; Eq. (1)'s `a` is exactly this dial.")


if __name__ == "__main__":
    main()
