#!/usr/bin/env python3
"""Quarterly portfolio review: multiple instance types + savings waterfalls.

Scenario: a platform team holds reservations across three instance
types (compute for the API tier, memory-optimised for caching, storage-
dense for analytics), each with its own demand shape. The review runs
the paper's ``A_{T/2}`` across the whole portfolio and explains, per
type, *where* the saving comes from — marketplace income, avoided
reserved-hourly fees, or extra on-demand paid.

Run:  python examples/portfolio_review.py
"""

import numpy as np

from repro.analysis import decompose_savings, explain, format_table
from repro.core import KeepReservedPolicy, OnlineSellingPolicy, Portfolio
from repro.pricing import default_catalog
from repro.purchasing import AllReserved, RandomReservation, wang_online_purchasing
from repro.workload import DiurnalWorkload, OnOffWorkload, SpikyWorkload


def main() -> None:
    catalog = default_catalog()
    period = 672
    horizon = 2 * period
    rng = np.random.default_rng(42)

    portfolio = Portfolio(selling_discount=0.8)
    holdings = [
        # (type, workload shape, purchasing behaviour)
        ("c4.xlarge", DiurnalWorkload(base_level=10.0, daily_amplitude=0.5),
         AllReserved()),
        ("r4.large", OnOffWorkload(on_level=6.0, mean_on_hours=36,
                                   mean_off_hours=24), RandomReservation(seed=1)),
        ("d2.xlarge", SpikyWorkload(spike_probability=0.03, spike_scale=6.0),
         wang_online_purchasing()),
    ]
    for name, generator, purchasing in holdings:
        plan = catalog[name].with_period(period)
        trace = generator.generate(horizon, rng)
        portfolio.add_imitated(plan, trace, purchasing)
        print(f"{name:10s} demand mean {trace.mean:5.1f}  sigma/mu {trace.cv:4.2f}  "
              f"purchasing: {purchasing.name}")

    print()
    keep = portfolio.run(KeepReservedPolicy())
    sell = portfolio.run(OnlineSellingPolicy.a_t2())

    rows = []
    for name in portfolio.instance_types:
        keep_cost = keep.per_type[name].total_cost
        sell_cost = sell.per_type[name].total_cost
        rows.append([
            name,
            keep_cost,
            sell_cost,
            sell.per_type[name].instances_sold,
            f"{1 - sell_cost / keep_cost:+.1%}" if keep_cost else "n/a",
        ])
    rows.append([
        "TOTAL", keep.total_cost, sell.total_cost, sell.instances_sold,
        f"{1 - sell.total_cost / keep.total_cost:+.1%}",
    ])
    print(format_table(
        ["type", "keep cost", "A_{T/2} cost", "sold", "saving"],
        rows,
        float_format="{:,.0f}",
        title="portfolio review — A_{T/2} vs Keep-Reserved",
    ))

    print("\nwhere the money moved, per type:")
    for name in portfolio.instance_types:
        waterfall = decompose_savings(keep.per_type[name], sell.per_type[name])
        print()
        print(explain(waterfall, label=name))


if __name__ == "__main__":
    main()
