#!/usr/bin/env python3
"""Quickstart: should this user sell its reserved instances?

Builds a realistic diurnal workload, imitates the user's reservation
behaviour (All-Reserved), then compares the paper's three online selling
algorithms against Keep-Reserved, All-Selling, and the offline optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CostModel,
    KeepReservedPolicy,
    AllSellingPolicy,
    OnlineSellingPolicy,
    paper_experiment_plan,
    run_offline_optimal,
    run_policy,
)
from repro.purchasing import AllReserved, imitate
from repro.workload import DiurnalWorkload


def main() -> None:
    # The paper's experiment instance: d2.xlarge (Linux, US East),
    # upfront $1506, on-demand $0.69/h, alpha = 0.25 — scaled to a
    # 672-hour "year" (theta-preserving, so behaviour is unchanged).
    plan = paper_experiment_plan().with_period(672)
    print(f"instance: {plan.name}  p=${plan.p}/h  R=${plan.upfront:.0f}  "
          f"alpha={plan.alpha}  T={plan.period_hours}h")

    # A web-application-shaped demand trace over two "years".
    rng = np.random.default_rng(7)
    trace = DiurnalWorkload(base_level=8.0, daily_amplitude=0.5,
                            weekend_dip=0.4).generate(2 * 672, rng)
    print(f"workload: mean {trace.mean:.1f} instances/h, peak {trace.peak}, "
          f"sigma/mu = {trace.cv:.2f}")

    # Imitate the user's purchasing: reserve whatever demand needs.
    schedule = imitate(trace, plan, AllReserved())
    print(f"imitated reservations: {schedule.total_reserved} instances, "
          f"${schedule.total_upfront:,.0f} upfront committed\n")

    # Selling terms: 20% off the prorated upfront (the paper's example).
    model = CostModel(plan, selling_discount=0.8)

    policies = [
        KeepReservedPolicy(),
        OnlineSellingPolicy.a_3t4(),
        OnlineSellingPolicy.a_t2(),
        OnlineSellingPolicy.a_t4(),
        AllSellingPolicy(0.25),
    ]
    keep_cost = None
    print(f"{'policy':22s} {'total cost':>12s} {'vs keep':>8s} {'sold':>5s}")
    for policy in policies:
        result = run_policy(trace, schedule.reservations, model, policy)
        if keep_cost is None:
            keep_cost = result.total_cost
        print(f"{policy.name:22s} {result.total_cost:12,.0f} "
              f"{result.total_cost / keep_cost:8.3f} {result.instances_sold:5d}")

    opt = run_offline_optimal(trace, schedule.reservations, model)
    print(f"{'OPT (offline)':22s} {opt.total_cost:12,.0f} "
          f"{opt.total_cost / keep_cost:8.3f} {opt.instances_sold:5d}")
    print("\nThe online algorithms sell the under-used reservations and"
          "\nkeep the base-load ones - landing between Keep-Reserved and OPT.")


if __name__ == "__main__":
    main()
