#!/usr/bin/env python3
"""Designing the randomized selling algorithm (the paper's future work).

Section VII speculates that a *randomized* decision spot "will achieve a
better possible competitive ratio". This example makes that concrete:

1. measure each deterministic spot's worst-case cost ratio against the
   two-block adversary family (the structure behind the proofs' worst
   cases);
2. solve the minimax linear program for the optimal spot mixture;
3. compare — randomisation buys a strictly better worst case;
4. sanity-check the designed mixture on simulated fleets via the
   RandomizedSellingPolicy.

Run:  python examples/randomized_spot_design.py
"""

import numpy as np

from repro.core import (
    CostModel,
    KeepReservedPolicy,
    RandomizedSellingPolicy,
    SpotDistribution,
    optimize_distribution,
    run_policy,
    worst_case_expected_ratio,
)
from repro.pricing import paper_experiment_plan
from repro.purchasing import AllReserved, imitate
from repro.workload import TargetCVWorkload


def main() -> None:
    plan = paper_experiment_plan().with_period(192)
    a = 0.8
    print(f"designing on {plan.name} (alpha={plan.alpha}, a={a}, "
          f"T={plan.period_hours}h scaled)\n")

    # 1-2. Deterministic baselines and the minimax mixture.
    design = optimize_distribution(plan, a)
    print("worst-case cost ratios against the two-block adversary:")
    for phi, ratio in sorted(design.deterministic_ratios.items()):
        print(f"  deterministic A_{{{phi:g}T}}: {ratio:.4f}")
    mixture = ", ".join(
        f"P(phi={phi:g}) = {p:.2f}"
        for phi, p in zip(design.distribution.spots, design.distribution.probabilities)
    )
    print(f"\noptimal mixture: {mixture}")
    print(f"randomized worst case: {design.ratio:.4f} "
          f"({design.improvement:.1%} better than the best single spot)")

    # 3. A uniform mixture for contrast.
    uniform = worst_case_expected_ratio(plan, a, SpotDistribution.uniform())
    print(f"(uniform mixture would give {uniform:.4f})")

    # 4. Fleet-level sanity check of the randomized policy.
    print("\nfleet check (20 moderate users, normalized to Keep-Reserved):")
    rng = np.random.default_rng(3)
    model = CostModel(plan, selling_discount=a)
    policy = RandomizedSellingPolicy(
        spots=design.distribution.spots,
        weights=design.distribution.probabilities,
        seed=7,
    )
    ratios = []
    for index in range(20):
        trace = TargetCVWorkload(target_cv=1.8, mean_demand=5.0).generate(
            2 * plan.period_hours, rng
        )
        schedule = imitate(trace, plan, AllReserved())
        keep = run_policy(trace, schedule.reservations, model, KeepReservedPolicy())
        if keep.total_cost <= 0:
            continue
        random_result = run_policy(trace, schedule.reservations, model, policy)
        ratios.append(random_result.total_cost / keep.total_cost)
    print(f"  randomized-spot policy mean normalized cost: {np.mean(ratios):.4f}")
    print("\nThe guarantee improves in the worst case; on average the mixture"
          "\nbehaves like a blend of its component spots - exactly the paper's"
          "\nspeculated trade-off.")


if __name__ == "__main__":
    main()
