#!/usr/bin/env python3
"""Per-instance selling advisor: what A_{3T/4} would tell you, and why.

Scenario: an analytics team holds several d2.xlarge reservations bought
at different times for a bursty ETL pipeline. For each reservation that
reaches its 3T/4 decision spot, the advisor reports the measured working
time, the break-even point beta, the decision, and the marketplace income
if sold — the explainable version of Algorithm 1.

Run:  python examples/sell_or_keep_advisor.py [--discount 0.8] [--phi 0.75]
"""

import argparse

import numpy as np

from repro import CostModel, OnlineSellingPolicy, paper_experiment_plan, run_policy
from repro.core import break_even_working_hours
from repro.purchasing import RandomReservation, imitate
from repro.workload import TargetCVWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--discount", type=float, default=0.8,
                        help="selling discount a (default 0.8 = 20%% off)")
    parser.add_argument("--phi", type=float, default=0.75,
                        help="decision fraction (default 0.75 = A_{3T/4})")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    plan = paper_experiment_plan().with_period(672)
    rng = np.random.default_rng(args.seed)
    trace = TargetCVWorkload(target_cv=2.0, mean_demand=6.0,
                             name="etl-pipeline").generate(2 * 672, rng)
    schedule = imitate(trace, plan, RandomReservation(seed=args.seed))
    model = CostModel(plan, selling_discount=args.discount)
    policy = OnlineSellingPolicy(args.phi)

    beta = break_even_working_hours(plan, args.discount, args.phi)
    window = round(args.phi * plan.period_hours)
    print(f"advisor: {policy.name} on {plan.name}, a={args.discount}")
    print(f"decision window: first {window}h of each reservation; "
          f"break-even beta = {beta:.0f} working hours "
          f"({beta / window:.0%} utilisation)\n")

    result = run_policy(trace, schedule.reservations, model, policy)

    sold_ids = {sale.instance_id: sale for sale in result.sales}
    print(f"{'instance':>8s} {'reserved@':>9s} {'worked':>7s} {'beta':>6s} "
          f"{'decision':>9s} {'income':>9s}")
    evaluated = 0
    for instance in result.instances:
        decision_hour = instance.reserved_at + window
        if decision_hour >= result.horizon:
            continue  # not yet at its decision spot
        evaluated += 1
        sale = sold_ids.get(instance.instance_id)
        if sale is not None:
            print(f"{instance.instance_id:8d} {instance.reserved_at:9d} "
                  f"{sale.working_hours:7d} {beta:6.0f} {'SELL':>9s} "
                  f"${sale.income:8,.0f}")
        else:
            print(f"{instance.instance_id:8d} {instance.reserved_at:9d} "
                  f"{'>= beta':>7s} {beta:6.0f} {'KEEP':>9s} {'-':>9s}")
    print(f"\n{evaluated} reservations evaluated, {len(sold_ids)} sold; "
          f"marketplace income ${result.total_sale_income:,.0f}; "
          f"total cost ${result.total_cost:,.0f}")
    print("Guarantee: whatever the future demand, this decision rule's cost")
    ratio = 2 - plan.alpha - args.discount / 4 if args.phi == 0.75 else None
    if ratio:
        print(f"is at most {ratio:.2f}x the optimal offline seller's "
              f"(Proposition 1: 2 - alpha - a/4).")


if __name__ == "__main__":
    main()
