"""repro — reproduction of "To Sell or Not To Sell: Trading Your Reserved
Instances in Amazon EC2 Marketplace" (Yang, Pan, Wang, Liu — ICDCS 2018).

The library implements the paper's three online reserved-instance selling
algorithms (``A_{3T/4}``, ``A_{T/2}``, ``A_{T/4}``) with their proved
competitive-ratio bounds, the optimal offline benchmark, the EC2 pricing
and Reserved Instance Marketplace substrates, workload synthesizers for
the two trace families the paper evaluates on, the four reservation-
behaviour imitators, and an experiment harness regenerating every table
and figure of the evaluation section.

Quickstart::

    from repro import (
        CostModel, OnlineSellingPolicy, run_policy, paper_experiment_plan,
    )
    from repro.purchasing import AllReserved, imitate
    from repro.workload import DiurnalWorkload
    import numpy as np

    plan = paper_experiment_plan().with_period(672)     # scaled year
    trace = DiurnalWorkload(base_level=6).generate(1344, np.random.default_rng(0))
    schedule = imitate(trace, plan, AllReserved())
    model = CostModel(plan, selling_discount=0.8)
    result = run_policy(trace, schedule.reservations, model,
                        OnlineSellingPolicy.a_3t4())
    print(result.total_cost, result.instances_sold)
"""

from repro._version import __version__
from repro.core import (
    AllSellingPolicy,
    CostBreakdown,
    CostModel,
    HourlyFeeMode,
    KeepReservedPolicy,
    OnlineSellingPolicy,
    RandomizedSellingPolicy,
    SellingSimulator,
    SimulationResult,
    competitive_ratio,
    run_fast,
    run_offline_optimal,
    run_policy,
)
from repro.errors import ReproError
from repro.pricing import (
    HOURS_PER_YEAR,
    PricingPlan,
    default_catalog,
    get_plan,
    paper_experiment_plan,
)
from repro.workload import DemandTrace, FluctuationGroup, build_population

__all__ = [
    "__version__",
    "ReproError",
    "PricingPlan",
    "default_catalog",
    "get_plan",
    "paper_experiment_plan",
    "HOURS_PER_YEAR",
    "DemandTrace",
    "FluctuationGroup",
    "build_population",
    "CostModel",
    "CostBreakdown",
    "HourlyFeeMode",
    "OnlineSellingPolicy",
    "KeepReservedPolicy",
    "AllSellingPolicy",
    "RandomizedSellingPolicy",
    "SellingSimulator",
    "SimulationResult",
    "run_policy",
    "run_fast",
    "run_offline_optimal",
    "competitive_ratio",
]
