"""``python -m repro`` — top-level dispatcher for the repro toolchain.

Subcommands
-----------
* ``repro experiments …`` — regenerate the paper's tables and figures
  (:mod:`repro.experiments.cli`);
* ``repro lint …`` — the domain-invariant linter (:mod:`repro.lint.cli`);
* ``repro serve …`` — the online advisory HTTP service
  (:mod:`repro.serve.server`).

For backwards compatibility, a first argument that is not a known
subcommand is forwarded to the experiments CLI, so the documented
``python -m repro theory`` invocations keep working.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  experiments  regenerate the paper's tables and figures
  lint         run the domain-invariant linter over src/
  serve        start the online sell/keep advisory HTTP service
               (``--shards N`` runs a sharded cluster behind a router)

Any other first argument is treated as an experiment name and forwarded
to `repro experiments` (e.g. `python -m repro theory`).
"""

_COMMANDS = ("experiments", "lint", "serve")


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("-h", "--help") or not args:
        print(_USAGE, end="")
        return 0 if args else 2
    command, rest = args[0], args[1:]
    if command == "experiments":
        from repro.experiments.cli import main as experiments_main

        return experiments_main(rest)
    if command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(rest)
    if command == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(rest)
    # Back-compat: bare experiment names dispatch to the experiments CLI.
    from repro.experiments.cli import main as experiments_main

    return experiments_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
