"""Shared coercion of count-valued inputs to ``int64`` arrays.

The simulation engines (:mod:`repro.core.fastsim`,
:mod:`repro.core.popsim`) and the columnar trace store
(:mod:`repro.workload.store`) all consume instance counts — demands and
reservation schedules — as integer arrays. Historically ``run_fast``
coerced with a bare ``.astype(np.int64)``, which silently *truncates*
fractional values (``1.9 → 1``) and lets non-finite floats through as
garbage. :func:`as_count_array` is the single strict replacement: float
inputs are accepted only when every value is finite and exactly
integral, anything else raises the caller's error type with a message
naming the offending argument.
"""

from __future__ import annotations

from typing import Type

import numpy as np


def as_count_array(
    values: object,
    name: str,
    error: "Type[Exception]",
) -> np.ndarray:
    """Coerce ``values`` to an ``int64`` array of instance counts.

    Integer (and boolean) arrays pass through with a dtype cast only.
    Floating-point arrays must be finite and exactly integral —
    ``1.0`` is accepted, ``1.9``, ``nan`` and ``inf`` raise ``error``.
    Shape and sign are *not* checked here; callers keep their own
    (message-stable) dimensionality and non-negativity validation.
    """
    array = np.asarray(values)
    if array.dtype == object or np.issubdtype(array.dtype, np.bool_):
        # object arrays (mixed types) and explicit booleans: go through a
        # best-effort float view so mixed garbage fails loudly below.
        try:
            array = array.astype(np.float64)
        except (TypeError, ValueError):
            raise error(f"{name} must be numeric, got dtype object") from None
    if np.issubdtype(array.dtype, np.integer):
        return array.astype(np.int64, copy=False)
    if not np.issubdtype(array.dtype, np.floating):
        raise error(f"{name} must be integer-valued, got dtype {array.dtype}")
    if not np.all(np.isfinite(array)):
        raise error(f"{name} must be finite (no nan/inf values)")
    rounded = np.rint(array)
    if not np.array_equal(rounded, array):
        raise error(
            f"{name} must be whole instance counts; fractional values would "
            "be silently truncated (e.g. 1.9 -> 1)"
        )
    return rounded.astype(np.int64)
