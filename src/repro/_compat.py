"""Deprecation-migration helpers shared across the public surface.

The keyword-only migration of :func:`repro.api.run_user`,
:func:`repro.api.run_sweep`, and :func:`repro.api.build_app` keeps
positional calls working for one release behind a
:class:`DeprecationWarning`. The machinery lives here so every migrated
function resolves the deprecated tail identically.
"""

from __future__ import annotations

import warnings


class Unset:
    """Sentinel distinguishing 'not passed' from an explicit default."""

    def __repr__(self) -> str:
        return "<unset>"


UNSET = Unset()


def absorb_positional_tail(
    func_name: str,
    args: "tuple[object, ...]",
    names: "tuple[str, ...]",
    given: "dict[str, object]",
) -> None:
    """Map a deprecated positional tail onto keyword parameters.

    ``names`` lists the keyword-only parameters in their historical
    positional order; ``given`` maps each name to the value the caller
    passed by keyword (or the sentinel :data:`UNSET`). Mutates ``given``.
    """
    if not args:
        return
    if len(args) > len(names):
        raise TypeError(
            f"{func_name}() takes at most {len(names)} positional "
            f"configuration arguments ({len(args)} given)"
        )
    warnings.warn(
        f"passing {', '.join(names[: len(args)])} to {func_name}() "
        "positionally is deprecated; pass them as keywords (positional "
        "support will be removed in the next release)",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if given[name] is not UNSET:
            raise TypeError(
                f"{func_name}() got multiple values for argument {name!r}"
            )
        given[name] = value
