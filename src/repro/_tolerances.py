"""Shared numeric tolerances for money arithmetic.

Every dollar amount in the library — upfront fees, hourly bills,
prorated marketplace caps, sale incomes — is a float, and the paper's
invariants (break-even points, Eq. (1) cost totals, the Section III-B
prorating rule) are checked by *comparing* such floats.  Comparing money
with ``==`` is a latent bug: two arithmetically-equal totals computed
along different paths (e.g. ``R·(1 − t/T)`` vs ``R − R·t/T``) differ in
the last ulp and silently flip a sell/keep decision.

This module is the single place that fixes the tolerance used for those
comparisons.  The custom linter's rule ``REP001`` (see
:mod:`repro.lint`) forbids ``==``/``!=`` between money-valued
expressions and points offenders here.
"""

from __future__ import annotations

import math

#: Relative tolerance for comparing two dollar amounts.  Money values in
#: the reproduction span roughly $1e-3 (hourly nano rates) to $1e5
#: (3-year upfronts times fleet sizes); 1e-9 relative keeps ~6 decimal
#: digits of slack at the top of that range while staying far above
#: accumulated float error.
MONEY_RTOL: float = 1e-9

#: Absolute tolerance floor, for comparisons against (near-)zero dollars.
MONEY_ATOL: float = 1e-9

__all__ = [
    "MONEY_ATOL",
    "MONEY_RTOL",
    "money_eq",
    "money_is_zero",
    "money_le",
    "money_lt",
]


def money_eq(a: float, b: float) -> bool:
    """True when two dollar amounts are equal up to the money tolerance."""
    return math.isclose(a, b, rel_tol=MONEY_RTOL, abs_tol=MONEY_ATOL)


def money_is_zero(amount: float) -> bool:
    """True when a dollar amount is zero up to the money tolerance."""
    return abs(amount) <= MONEY_ATOL


def money_le(a: float, b: float) -> bool:
    """Tolerant ``a <= b`` on dollars: strictly below, or equal within
    tolerance.  Use for cap checks (e.g. marketplace prorated-upfront
    ceilings) where an ulp above the cap must not reject a listing."""
    return a <= b or money_eq(a, b)


def money_lt(a: float, b: float) -> bool:
    """Tolerant ``a < b`` on dollars: strictly below and *not* equal
    within tolerance.  The complement of :func:`money_le` with the
    arguments swapped."""
    return a < b and not money_eq(a, b)
