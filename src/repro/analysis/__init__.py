"""Analysis toolkit: normalisation, CDFs, summaries, and text rendering."""

from repro.analysis.ascii_plots import ascii_cdf, ascii_histogram
from repro.analysis.bootstrap import ConfidenceInterval, bootstrap_ci, difference_ci
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.diagnostics import SavingsWaterfall, decompose_savings, explain
from repro.analysis.report import UserReport, user_report
from repro.analysis.normalize import KEEP_RESERVED, normalize_costs, savings
from repro.analysis.summary import SavingsSummary, group_means
from repro.analysis.svgplot import svg_cdf, write_svg
from repro.analysis.tables import format_table

__all__ = [
    "EmpiricalCDF",
    "ConfidenceInterval",
    "bootstrap_ci",
    "difference_ci",
    "UserReport",
    "user_report",
    "SavingsWaterfall",
    "decompose_savings",
    "explain",
    "normalize_costs",
    "savings",
    "KEEP_RESERVED",
    "SavingsSummary",
    "group_means",
    "format_table",
    "ascii_cdf",
    "ascii_histogram",
    "svg_cdf",
    "write_svg",
]
