"""Terminal rendering of the paper's figures (CDF curves, histograms).

No plotting dependency is assumed; the experiment harness renders each
figure as ASCII so ``repro-experiments fig3`` works anywhere. The
renderers are deliberately simple — a character grid with one glyph per
series — but they make the crossovers and orderings of Figs. 3/4 visible.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.errors import ReproError

#: Glyphs assigned to series in insertion order.
SERIES_GLYPHS = "*o+x#@%&"


def ascii_cdf(
    series: "Mapping[str, Sequence[float]]",
    width: int = 70,
    height: int = 20,
    x_range: "tuple[float, float] | None" = None,
    x_label: str = "normalized cost",
) -> str:
    """Render empirical CDFs of several samples on one character grid."""
    if not series:
        raise ReproError("need at least one series")
    if width < 10 or height < 4:
        raise ReproError("grid too small (need width >= 10, height >= 4)")
    cdfs = {name: EmpiricalCDF(values) for name, values in series.items()}
    if x_range is None:
        lows, highs = zip(*(cdf.support() for cdf in cdfs.values()))
        low, high = min(lows), max(highs)
        if low == high:
            low, high = low - 0.5, high + 0.5
    else:
        low, high = x_range
        if not low < high:
            raise ReproError(f"x_range must be increasing, got {x_range!r}")

    xs = np.linspace(low, high, width)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, cdf) in enumerate(cdfs.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        ys = cdf.evaluate(xs)
        rows = np.clip(((1.0 - ys) * (height - 1)).round().astype(int), 0, height - 1)
        for col, row in enumerate(rows):
            grid[row][col] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {low:<12.3f}{x_label:^{max(width - 24, 1)}}{high:>12.3f}")
    legend = "      " + "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(cdfs)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_series(
    series: "Mapping[str, Sequence[float]]",
    width: int = 70,
    height: int = 12,
    x_label: str = "hour",
) -> str:
    """Render step time-series (e.g. the reservation curve r_t) as text.

    All series must share one length; the x axis is the index (hour).
    """
    if not series:
        raise ReproError("need at least one series")
    if width < 10 or height < 4:
        raise ReproError("grid too small (need width >= 10, height >= 4)")
    arrays = {
        name: np.asarray(values, dtype=np.float64) for name, values in series.items()
    }
    lengths = {array.size for array in arrays.values()}
    if len(lengths) != 1 or 0 in lengths:
        raise ReproError("all series must share one non-zero length")
    (horizon,) = lengths
    top = max(float(array.max()) for array in arrays.values())
    top = max(top, 1.0)

    columns = np.linspace(0, horizon - 1, width).round().astype(int)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, array) in enumerate(arrays.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for col, hour in enumerate(columns):
            row = round((1.0 - array[hour] / top) * (height - 1))
            grid[int(np.clip(row, 0, height - 1))][col] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        level = top * (1.0 - row_index / (height - 1))
        lines.append(f"{level:6.1f} |" + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        0{x_label:^{max(width - 14, 1)}}{horizon - 1:>6d}")
    lines.append(
        "        "
        + "   ".join(
            f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
            for i, name in enumerate(arrays)
        )
    )
    return "\n".join(lines)


def ascii_histogram(
    values: "Sequence[float]",
    bins: int = 12,
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal-bar histogram of one sample."""
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or data.size == 0:
        raise ReproError("need a non-empty 1-D sample")
    if bins < 1 or width < 1:
        raise ReproError("bins and width must be positive")
    counts, edges = np.histogram(data, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    for index, count in enumerate(counts):
        bar = "#" * round(width * count / peak)
        label = (
            f"[{value_format.format(edges[index])}, "
            f"{value_format.format(edges[index + 1])})"
        )
        lines.append(f"{label:>22} | {bar} {count}")
    return "\n".join(lines)
