"""Bootstrap confidence intervals for population statistics.

The paper reports point estimates (Table III's means); with a synthetic
population it is worth knowing how tight those are. A nonparametric
bootstrap over users gives percentile intervals for any statistic of a
normalized-cost vector, without distributional assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ReproError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap interval for one statistic."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @ {self.confidence:.0%}"
        )


def bootstrap_ci(
    samples: ArrayLike,
    statistic: "Callable[[np.ndarray], float]" = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` over ``samples``."""
    data = np.asarray(samples, dtype=np.float64)
    if data.ndim != 1 or data.size < 2:
        raise ReproError("bootstrap needs a 1-D sample of at least 2 values")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must lie in (0, 1), got {confidence!r}")
    if resamples < 10:
        raise ReproError(f"resamples must be >= 10, got {resamples!r}")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(resamples, data.size))
    replicates = np.apply_along_axis(statistic, 1, data[indices])
    tail = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(data)),
        low=float(np.quantile(replicates, tail)),
        high=float(np.quantile(replicates, 1.0 - tail)),
        confidence=confidence,
        resamples=resamples,
    )


def difference_ci(
    first: ArrayLike,
    second: ArrayLike,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Paired bootstrap CI for ``mean(first − second)``.

    Used to certify orderings like "A_{T/4} saves more than A_{T/2}":
    the interval excluding zero means the ordering is not a resampling
    artefact.
    """
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError("paired bootstrap needs equally-shaped samples")
    return bootstrap_ci(
        a - b, statistic=np.mean, confidence=confidence,
        resamples=resamples, seed=seed,
    )
