"""Empirical CDFs — the form in which Figs. 3 and 4 present results."""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ReproError


class EmpiricalCDF:
    """The empirical distribution of a sample of per-user costs."""

    def __init__(self, samples: ArrayLike) -> None:
        data = np.asarray(samples, dtype=np.float64)
        if data.ndim != 1 or data.size == 0:
            raise ReproError("an empirical CDF needs a non-empty 1-D sample")
        if np.any(~np.isfinite(data)):
            raise ReproError("samples must be finite")
        self._sorted = np.sort(data)

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    @property
    def samples(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def __call__(self, x: float) -> float:
        """F(x) = fraction of samples ≤ x."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def evaluate(self, xs: ArrayLike) -> np.ndarray:
        """Vectorised F over many points."""
        xs = np.asarray(xs, dtype=np.float64)
        return np.searchsorted(self._sorted, xs, side="right") / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF (linear interpolation between order statistics)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile level must lie in [0, 1], got {q!r}")
        return float(np.quantile(self._sorted, q))

    def fraction_below(self, x: float, strict: bool = False) -> float:
        """Fraction of samples < x (strict) or ≤ x."""
        side = "left" if strict else "right"
        return float(np.searchsorted(self._sorted, x, side=side)) / self.n

    def fraction_above(self, x: float, strict: bool = True) -> float:
        """Fraction of samples > x (strict) or ≥ x."""
        return 1.0 - self.fraction_below(x, strict=not strict)

    def support(self) -> "tuple[float, float]":
        """(min, max) of the sample."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def curve(self, points: int = 100) -> "tuple[np.ndarray, np.ndarray]":
        """(x, F(x)) arrays for plotting, spanning the sample's support."""
        if points < 2:
            raise ReproError(f"points must be >= 2, got {points!r}")
        low, high = self.support()
        if low == high:
            xs = np.array([low, high])
        else:
            xs = np.linspace(low, high, points)
        return xs, self.evaluate(xs)
