"""Per-user savings diagnostics: *where* did the money go?

A policy's saving over Keep-Reserved decomposes exactly into three
Eq. (1) flows::

    saving = sale income  +  avoided reserved-hourly fees
                          −  extra on-demand spending

(upfronts are identical in the decoupled pipeline — the reservations are
fixed — so they cancel). :func:`decompose_savings` computes the waterfall
from two :class:`~repro.core.simulator.SimulationResult` objects and
:func:`explain` renders it; the experiments use it to answer "did this
user win because of marketplace income or because it stopped paying for
idle reservations?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._tolerances import money_is_zero

from repro.core.simulator import SimulationResult
from repro.errors import ReproError


@dataclass(frozen=True)
class SavingsWaterfall:
    """Exact decomposition of one policy's saving over a baseline."""

    baseline_cost: float
    policy_cost: float
    sale_income: float
    avoided_reserved_fees: float
    extra_on_demand: float
    extra_upfronts: float  # non-zero only in coupled runs (re-buys)

    @property
    def saving(self) -> float:
        return self.baseline_cost - self.policy_cost

    @property
    def saving_fraction(self) -> float:
        if money_is_zero(self.baseline_cost):
            return 0.0
        return self.saving / self.baseline_cost

    def check(self, tolerance: float = 1e-6) -> bool:
        """The waterfall must reconstruct the saving exactly."""
        rebuilt = (
            self.sale_income
            + self.avoided_reserved_fees
            - self.extra_on_demand
            - self.extra_upfronts
        )
        return math.isclose(rebuilt, self.saving, abs_tol=tolerance)


def decompose_savings(
    baseline: SimulationResult, policy: SimulationResult
) -> SavingsWaterfall:
    """Decompose ``policy``'s saving over ``baseline`` (usually Keep).

    Both results must come from the same demands and horizon.
    """
    if baseline.horizon != policy.horizon:
        raise ReproError(
            f"results cover different horizons: {baseline.horizon} vs "
            f"{policy.horizon}"
        )
    if baseline.demands != policy.demands:
        raise ReproError("results were produced from different demand traces")
    waterfall = SavingsWaterfall(
        baseline_cost=baseline.total_cost,
        policy_cost=policy.total_cost,
        sale_income=policy.breakdown.sale_income - baseline.breakdown.sale_income,
        avoided_reserved_fees=(
            baseline.breakdown.reserved_hourly - policy.breakdown.reserved_hourly
        ),
        extra_on_demand=policy.breakdown.on_demand - baseline.breakdown.on_demand,
        extra_upfronts=policy.breakdown.upfront - baseline.breakdown.upfront,
    )
    if not waterfall.check():
        raise ReproError(
            "savings waterfall does not reconcile; the results do not share "
            "a cost model"
        )
    return waterfall


def explain(waterfall: SavingsWaterfall, label: str = "policy") -> str:
    """Human-readable waterfall."""
    lines = [
        f"{label}: {waterfall.saving_fraction:+.1%} vs baseline "
        f"({waterfall.baseline_cost:,.0f} -> {waterfall.policy_cost:,.0f})",
        f"  + marketplace income        {waterfall.sale_income:12,.0f}",
        f"  + avoided reserved fees     {waterfall.avoided_reserved_fees:12,.0f}",
        f"  - extra on-demand           {waterfall.extra_on_demand:12,.0f}",
    ]
    if waterfall.extra_upfronts:
        lines.append(
            f"  - extra upfronts (re-buys)  {waterfall.extra_upfronts:12,.0f}"
        )
    return "\n".join(lines)
