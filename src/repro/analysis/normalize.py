"""Cost normalisation (Section VI-B: "costs … normalized to Keep-reserved")."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.policies import POLICY_KEEP
from repro.errors import ReproError

#: The baseline policy name used throughout the paper's figures
#: (re-exported alias of :data:`repro.core.policies.POLICY_KEEP`).
KEEP_RESERVED = POLICY_KEEP


def normalize_costs(
    costs: "Mapping[str, Sequence[float]]",
    baseline: str = KEEP_RESERVED,
) -> dict[str, np.ndarray]:
    """Divide every policy's per-user cost vector by the baseline's.

    Users whose baseline cost is zero (no reservations, no demand) are
    normalised to 1 for every policy — all policies are trivially equal
    there, and dropping them would silently shrink the population.
    """
    if baseline not in costs:
        raise ReproError(
            f"baseline {baseline!r} missing from costs "
            f"(have: {sorted(costs)})"
        )
    base = np.asarray(costs[baseline], dtype=np.float64)
    if base.ndim != 1:
        raise ReproError("cost vectors must be 1-D (one entry per user)")
    degenerate = base == 0.0
    safe_base = np.where(degenerate, 1.0, base)
    normalized: dict[str, np.ndarray] = {}
    for name, values in costs.items():
        array = np.asarray(values, dtype=np.float64)
        if array.shape != base.shape:
            raise ReproError(
                f"cost vector for {name!r} has shape {array.shape}, "
                f"baseline has {base.shape}"
            )
        ratio = array / safe_base
        normalized[name] = np.where(degenerate, 1.0, ratio)
    return normalized


def savings(normalized: np.ndarray) -> np.ndarray:
    """Per-user fractional saving: 1 − normalized cost."""
    return 1.0 - np.asarray(normalized, dtype=np.float64)
