"""One-call user report: simulation, decomposition, and advice together.

:func:`user_report` takes what a cloud user actually has — a demand
history, their reservation history, an instance type, and selling terms
— and produces a markdown report answering the paper's two questions
("should I sell this reserved instance, and when?") with the numbers to
back it up:

1. policy comparison (Keep-Reserved, the three online algorithms, OPT);
2. the savings waterfall of the recommended policy;
3. the live advisor's per-instance SELL/KEEP/WAIT verdicts at "now";
4. marketplace guidance: expected proceeds at the configured discount
   under a sale-latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from numpy.typing import ArrayLike

from repro.analysis.diagnostics import SavingsWaterfall, decompose_savings
from repro.core.account import CostModel
from repro.core.advisor import AdvisorReport, SellingAdvisor
from repro.core.offline import run_offline_optimal
from repro.core.policies import (
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    POLICY_KEEP,
    KeepReservedPolicy,
    OnlineSellingPolicy,
)
from repro.core.simulator import SimulationResult, run_policy
from repro.errors import ReproError
from repro.marketplace.seller import SaleLatencyModel
from repro.marketplace.valuation import ListingValuation, value_listing
from repro.workload.base import TraceLike, as_trace


@dataclass(frozen=True)
class UserReport:
    """All the pieces of one user's review."""

    policy_results: dict[str, SimulationResult]
    opt_result: SimulationResult
    recommended: str
    waterfall: SavingsWaterfall
    advice: AdvisorReport
    listing_value: "ListingValuation | None"

    def to_markdown(self) -> str:
        """Render the report as markdown."""
        keep_cost = self.policy_results[POLICY_KEEP].total_cost
        lines = ["# Reserved-instance selling review", "", "## Policy comparison", ""]
        lines.append("| policy | total cost | vs Keep-Reserved | sold |")
        lines.append("|---|---|---|---|")
        for name, result in self.policy_results.items():
            ratio = result.total_cost / keep_cost if keep_cost else 1.0
            lines.append(
                f"| {name} | {result.total_cost:,.0f} | {ratio:.3f} "
                f"| {result.instances_sold} |"
            )
        opt_ratio = self.opt_result.total_cost / keep_cost if keep_cost else 1.0
        lines.append(
            f"| OPT (offline) | {self.opt_result.total_cost:,.0f} "
            f"| {opt_ratio:.3f} | {self.opt_result.instances_sold} |"
        )
        lines.extend(["", f"**Recommended policy: {self.recommended}**", ""])
        lines.extend(["## Where the saving comes from", ""])
        lines.append(f"- marketplace income: {self.waterfall.sale_income:,.0f}")
        lines.append(
            f"- avoided reserved fees: {self.waterfall.avoided_reserved_fees:,.0f}"
        )
        lines.append(f"- extra on-demand: {self.waterfall.extra_on_demand:,.0f}")
        lines.append(
            f"- net saving: {self.waterfall.saving:,.0f} "
            f"({self.waterfall.saving_fraction:+.1%})"
        )
        lines.extend(["", "## Current holdings", "", "```", self.advice.render(), "```"])
        if self.listing_value is not None:
            lines.extend(["", "## Marketplace outlook", ""])
            lines.append(
                f"- expected proceeds per listing: "
                f"{self.listing_value.expected_proceeds:,.2f}"
            )
            lines.append(
                f"- sale probability before expiry: "
                f"{self.listing_value.sale_probability:.0%}"
            )
            lines.append(
                f"- expected wait: {self.listing_value.expected_wait_hours:,.0f}h"
            )
        return "\n".join(lines)


def user_report(
    demands: TraceLike,
    reservations: "ArrayLike",
    model: CostModel,
    latency: "SaleLatencyModel | None" = None,
) -> UserReport:
    """Build the full review for one user's history.

    ``demands``/``reservations`` cover the observed hours; the policy
    comparison replays that history, the advisor evaluates "now" = the
    end of it.
    """
    trace = as_trace(demands)
    policies = {
        POLICY_KEEP: KeepReservedPolicy(),
        POLICY_A_3T4: OnlineSellingPolicy.a_3t4(),
        POLICY_A_T2: OnlineSellingPolicy.a_t2(),
        POLICY_A_T4: OnlineSellingPolicy.a_t4(),
    }
    results = {
        name: run_policy(trace, reservations, model, policy)
        for name, policy in policies.items()
    }
    opt = run_offline_optimal(trace, reservations, model)
    online_names = [name for name in results if name != POLICY_KEEP]
    recommended = min(online_names, key=lambda name: results[name].total_cost)
    if not online_names:
        raise ReproError("no online policy evaluated")
    waterfall = decompose_savings(results[POLICY_KEEP], results[recommended])

    advisor = SellingAdvisor(model, phi=0.75)
    advice = advisor.review(trace, reservations)

    listing_value = None
    if latency is not None:
        pending = advice.to_sell()
        if pending:
            elapsed = pending[0].age_hours
            listing_value = value_listing(
                model.plan,
                min(elapsed, model.plan.period_hours - 1),
                model.selling_discount,
                latency,
                marketplace_fee=0.12,
            )
    return UserReport(
        policy_results=results,
        opt_result=opt,
        recommended=recommended,
        waterfall=waterfall,
        advice=advice,
        listing_value=listing_value,
    )
