"""Headline statistics of normalised costs (the numbers quoted in §VI-B).

The paper summarises Fig. 3 with sentences like "more than 60% users
reduce their costs … only 1% users incur slightly more costs", and
Table III with per-group mean normalised costs. :class:`SavingsSummary`
computes exactly those quantities from a normalised cost vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ReproError


@dataclass(frozen=True)
class SavingsSummary:
    """Headline statistics of one policy's normalised per-user costs."""

    users: int
    mean: float
    median: float
    fraction_saving: float  # normalized cost < 1
    fraction_saving_20pct: float  # normalized cost < 0.8
    fraction_saving_30pct: float  # normalized cost < 0.7
    fraction_losing: float  # normalized cost > 1
    worst_increase: float  # max(normalized) − 1, floored at 0

    @classmethod
    def of(cls, normalized: ArrayLike) -> "SavingsSummary":
        values = np.asarray(normalized, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ReproError("need a non-empty 1-D normalized-cost vector")
        return cls(
            users=int(values.size),
            mean=float(values.mean()),
            median=float(np.median(values)),
            fraction_saving=float(np.mean(values < 1.0)),
            fraction_saving_20pct=float(np.mean(values < 0.8)),
            fraction_saving_30pct=float(np.mean(values < 0.7)),
            fraction_losing=float(np.mean(values > 1.0)),
            worst_increase=float(max(values.max() - 1.0, 0.0)),
        )

    def describe(self) -> str:
        """One-line textual summary in the paper's phrasing."""
        return (
            f"{self.fraction_saving:.0%} of users reduce their costs "
            f"({self.fraction_saving_20pct:.0%} save >20%, "
            f"{self.fraction_saving_30pct:.0%} save >30%); "
            f"{self.fraction_losing:.0%} incur more costs "
            f"(worst increase {self.worst_increase:.1%}); "
            f"mean normalized cost {self.mean:.4f}"
        )


def group_means(
    normalized_by_policy: "dict[str, np.ndarray]",
    group_labels: "Sequence[str]",
    group_order: "Sequence[str]",
) -> dict[str, dict[str, float]]:
    """Mean normalised cost per (policy, group) — the body of Table III.

    ``group_labels`` assigns each user (vector position) to a group;
    ``group_order`` fixes the column order. An ``"All users"`` column is
    appended, matching the paper's table.
    """
    labels = np.asarray(group_labels)
    table: dict[str, dict[str, float]] = {}
    for policy, values in normalized_by_policy.items():
        values = np.asarray(values, dtype=np.float64)
        if values.shape != labels.shape:
            raise ReproError(
                f"policy {policy!r}: {values.shape} values vs "
                f"{labels.shape} group labels"
            )
        row = {}
        for group in group_order:
            mask = labels == group
            if not mask.any():
                raise ReproError(f"group {group!r} has no users")
            row[str(group)] = float(values[mask].mean())
        row["All users"] = float(values.mean())
        table[policy] = row
    return table
