"""Dependency-free SVG rendering of CDF figures.

The experiment harness renders every figure as ASCII for the terminal;
this module additionally emits real, viewable SVG files (no matplotlib
required — the documents are assembled by hand). ``repro-experiments
fig3 --output reports`` drops ``fig3*.svg`` next to the text reports.

Only what the paper's figures need is implemented: step-function CDF
plots with axes, ticks, a legend, and a small colour cycle.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

import numpy as np

from repro.errors import ReproError

#: Colour cycle (colour-blind-friendly).
SERIES_COLORS = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # pink
    "#E69F00",  # orange
    "#56B4E9",  # sky
)

_MARGIN_LEFT = 60
_MARGIN_RIGHT = 20
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 50


def _step_points(samples: np.ndarray) -> "list[tuple[float, float]]":
    """(x, F(x)) step coordinates of an empirical CDF."""
    ordered = np.sort(samples)
    n = ordered.size
    points = [(float(ordered[0]), 0.0)]
    for index, value in enumerate(ordered):
        points.append((float(value), index / n))
        points.append((float(value), (index + 1) / n))
    return points


def _ticks(low: float, high: float, count: int = 5) -> "list[float]":
    return [low + (high - low) * i / (count - 1) for i in range(count)]


def svg_cdf(
    series: "Mapping[str, Sequence[float]]",
    title: str = "",
    x_label: str = "normalized cost",
    width: int = 640,
    height: int = 400,
    x_range: "tuple[float, float] | None" = None,
) -> str:
    """Render step-function CDFs of several samples as an SVG document."""
    if not series:
        raise ReproError("need at least one series")
    if width < 200 or height < 150:
        raise ReproError("figure too small (need width >= 200, height >= 150)")
    arrays = {
        name: np.asarray(values, dtype=np.float64) for name, values in series.items()
    }
    for name, values in arrays.items():
        if values.ndim != 1 or values.size == 0 or np.any(~np.isfinite(values)):
            raise ReproError(f"series {name!r} must be a non-empty finite 1-D sample")
    if x_range is None:
        low = min(float(v.min()) for v in arrays.values())
        high = max(float(v.max()) for v in arrays.values())
        if low == high:
            low, high = low - 0.5, high + 0.5
    else:
        low, high = x_range
        if not low < high:
            raise ReproError(f"x_range must be increasing, got {x_range!r}")

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        clamped = min(max(x, low), high)
        return _MARGIN_LEFT + (clamped - low) / (high - low) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_TOP + (1.0 - y) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="22" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{escape(title)}</text>'
        )
    # Axes.
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(0)}" x2="{width - _MARGIN_RIGHT}" '
        f'y2="{sy(0)}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(0)}" x2="{_MARGIN_LEFT}" '
        f'y2="{sy(1)}" stroke="black"/>'
    )
    for tick in _ticks(low, high):
        x = sx(tick)
        parts.append(
            f'<line x1="{x}" y1="{sy(0)}" x2="{x}" y2="{sy(0) + 5}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x}" y="{sy(0) + 18}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="10">{tick:.2f}</text>'
        )
    for tick in _ticks(0.0, 1.0):
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 5}" y1="{y}" x2="{_MARGIN_LEFT}" '
            f'y2="{y}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 3}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{tick:.2f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="12">'
        f"{escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="16" y="{_MARGIN_TOP + plot_h / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 16 {_MARGIN_TOP + plot_h / 2})">CDF</text>'
    )
    # Series.
    for index, (name, values) in enumerate(arrays.items()):
        color = SERIES_COLORS[index % len(SERIES_COLORS)]
        coordinates = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in _step_points(values)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.8" '
            f'points="{coordinates}"/>'
        )
        legend_y = _MARGIN_TOP + 14 + 16 * index
        parts.append(
            f'<line x1="{_MARGIN_LEFT + 10}" y1="{legend_y - 4}" '
            f'x2="{_MARGIN_LEFT + 34}" y2="{legend_y - 4}" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT + 40}" y="{legend_y}" '
            f'font-family="sans-serif" font-size="11">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_histogram(
    values: "Sequence[float]",
    bins: int = 12,
    title: str = "",
    x_label: str = "sigma/mu",
    width: int = 640,
    height: int = 400,
    color: str = SERIES_COLORS[0],
) -> str:
    """Render one sample's histogram as an SVG document."""
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or data.size == 0 or np.any(~np.isfinite(data)):
        raise ReproError("need a non-empty finite 1-D sample")
    if bins < 1:
        raise ReproError(f"bins must be positive, got {bins!r}")
    if width < 200 or height < 150:
        raise ReproError("figure too small (need width >= 200, height >= 150)")
    counts, edges = np.histogram(data, bins=bins)
    peak = max(int(counts.max()), 1)
    low, high = float(edges[0]), float(edges[-1])
    if low == high:
        low, high = low - 0.5, high + 0.5

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - low) / (high - low) * plot_w

    def sy_count(count: float) -> float:
        return _MARGIN_TOP + (1.0 - count / peak) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="22" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{escape(title)}</text>'
        )
    baseline = sy_count(0)
    for index, count in enumerate(counts):
        if count == 0:
            continue
        x0, x1 = sx(float(edges[index])), sx(float(edges[index + 1]))
        top = sy_count(float(count))
        parts.append(
            f'<rect x="{x0:.1f}" y="{top:.1f}" width="{max(x1 - x0 - 1, 1):.1f}" '
            f'height="{baseline - top:.1f}" fill="{color}" opacity="0.85"/>'
        )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{baseline}" x2="{width - _MARGIN_RIGHT}" '
        f'y2="{baseline}" stroke="black"/>'
    )
    for tick in _ticks(low, high):
        x = sx(tick)
        parts.append(
            f'<line x1="{x}" y1="{baseline}" x2="{x}" y2="{baseline + 5}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<text x="{x}" y="{baseline + 18}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="10">{tick:.2f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="12">'
        f"{escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="{_MARGIN_LEFT - 30}" y="{_MARGIN_TOP - 8}" '
        f'font-family="sans-serif" font-size="10">users (peak {peak})</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_series(
    series: "Mapping[str, Sequence[float]]",
    title: str = "",
    x_label: str = "hour",
    y_label: str = "value",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render step time-series (index = hour) as an SVG document."""
    if not series:
        raise ReproError("need at least one series")
    if width < 200 or height < 150:
        raise ReproError("figure too small (need width >= 200, height >= 150)")
    arrays = {
        name: np.asarray(values, dtype=np.float64) for name, values in series.items()
    }
    lengths = {array.size for array in arrays.values()}
    if len(lengths) != 1 or 0 in lengths:
        raise ReproError("all series must share one non-zero length")
    (horizon,) = lengths
    top = max(max(float(array.max()) for array in arrays.values()), 1.0)

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(hour: float) -> float:
        return _MARGIN_LEFT + hour / max(horizon - 1, 1) * plot_w

    def sy(value: float) -> float:
        return _MARGIN_TOP + (1.0 - value / top) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="22" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{escape(title)}</text>'
        )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(0)}" x2="{width - _MARGIN_RIGHT}" '
        f'y2="{sy(0)}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(0)}" x2="{_MARGIN_LEFT}" '
        f'y2="{sy(top)}" stroke="black"/>'
    )
    for tick in _ticks(0, horizon - 1):
        x = sx(tick)
        parts.append(
            f'<line x1="{x}" y1="{sy(0)}" x2="{x}" y2="{sy(0) + 5}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x}" y="{sy(0) + 18}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="10">{tick:.0f}</text>'
        )
    for tick in _ticks(0.0, top):
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 5}" y1="{y}" x2="{_MARGIN_LEFT}" '
            f'y2="{y}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 3}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{tick:.0f}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="12">'
        f"{escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="16" y="{_MARGIN_TOP + plot_h / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 16 {_MARGIN_TOP + plot_h / 2})">'
        f"{escape(y_label)}</text>"
    )
    for index, (name, array) in enumerate(arrays.items()):
        color = SERIES_COLORS[index % len(SERIES_COLORS)]
        points = []
        for hour in range(horizon):
            if hour:
                points.append(f"{sx(hour):.1f},{sy(array[hour - 1]):.1f}")
            points.append(f"{sx(hour):.1f},{sy(array[hour]):.1f}")
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.8" '
            f'points="{" ".join(points)}"/>'
        )
        legend_y = _MARGIN_TOP + 14 + 16 * index
        parts.append(
            f'<line x1="{width - 190}" y1="{legend_y - 4}" x2="{width - 166}" '
            f'y2="{legend_y - 4}" stroke="{color}" stroke-width="1.8"/>'
        )
        parts.append(
            f'<text x="{width - 160}" y="{legend_y}" font-family="sans-serif" '
            f'font-size="11">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(document: str, path: "str | Path") -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
