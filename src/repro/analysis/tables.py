"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError


def format_cell(value: object, float_format: str = "{:.4f}") -> str:
    """Render one cell: floats via ``float_format``, the rest via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    headers: "Sequence[str]",
    rows: "Iterable[Sequence[object]]",
    float_format: str = "{:.4f}",
    title: str = "",
) -> str:
    """Fixed-width table with a header rule, e.g.::

        Policy      Group 1   Group 2
        ---------   -------   -------
        A_{3T/4}     0.9387    0.9154
    """
    rendered = [[format_cell(cell, float_format) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in rendered)) if rendered else len(header)
        for col, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("   ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("   ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "   ".join(
                cell.rjust(w) if _is_numeric(cell) else cell.ljust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.replace("%", ""))
    except ValueError:
        return False
    return True
