"""The supported public surface of :mod:`repro`, in one flat module.

Everything importable here is stable: additions are backwards
compatible, removals go through one release of
:class:`DeprecationWarning`. Code that reaches past this facade into
submodules depends on internals that may move without notice (the
policy-name constants' move from ``repro.experiments.runner`` to
:mod:`repro.core.policies` is the canonical example — importing them
from here would have been seamless).

The surface groups into:

* **Engines** — :func:`run_policy` (reference simulator),
  :func:`run_fast` (vectorised batch engine), :func:`run_population`
  (population-tensor engine over ``(users × hours)`` matrices, with
  :class:`PopulationStore` as its columnar trace store),
  :func:`run_stream` (exact event-by-event engine),
  :func:`run_offline_optimal` (OPT).
* **Experiments** — :func:`run_user` / :func:`run_sweep` over the
  paper's synthetic population, with :class:`ExperimentConfig`,
  :class:`SweepResult`, and :class:`UserOutcome`.
* **Serving** — :func:`build_app` (the advisory HTTP application) and
  :func:`start_cluster` (the sharded deployment of it).
* **Model & names** — :class:`CostModel`, :class:`PricingPlan`,
  :class:`CostBreakdown`, and the canonical policy-name constants.
* **Policy specs** — :func:`make_policy` builds any selling policy from
  the declarative spec grammar of :mod:`repro.core.policyspec`
  (``"randomized:seed=7,spots=0.25|0.5|0.75"``); :class:`PolicySpec`
  is the parsed, canonical, JSON-round-trippable form; :func:`spec_for`
  recovers the spec of a constructed policy; :func:`parse_policies`
  parses the ``;``-separated CLI list form. Specs — not pickles — are
  what cache keys, checkpoints, and serve responses carry.
* **Randomized & cancellation** — :class:`RandomizedSellingPolicy`
  (per-key deterministic spot draws), :class:`SpotDistribution` with
  :func:`optimize_distribution` (the LP-optimised mixture),
  :class:`CancellationAwareSellingPolicy` with
  :class:`CancellationModel` (sell now, re-buy at a penalty when
  demand returns), and :func:`run_population_randomized` (the
  population-tensor engine under a randomized policy).
"""

from __future__ import annotations

from repro._version import __version__
from repro.core.account import CostBreakdown, CostModel, HourlyFeeMode
from repro.core.cancellation import CancellationModel, apply_rebuys
from repro.core.fastsim import FastPolicyKind, FastResult, FastSale, run_fast
from repro.core.offline import run_offline_optimal
from repro.core.popsim import (
    PopulationResult,
    run_population,
    run_population_randomized,
)
from repro.core.policies import (
    ALL_SELLING_POLICIES,
    CANCELLATION_POLICIES,
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    POLICY_ALL_3T4,
    POLICY_ALL_T2,
    POLICY_ALL_T4,
    POLICY_CANCEL_3T4,
    POLICY_CANCEL_T2,
    POLICY_CANCEL_T4,
    POLICY_KEEP,
    POLICY_OPT,
    POLICY_RANDOMIZED,
    AllSellingPolicy,
    CancellationAwareSellingPolicy,
    KeepReservedPolicy,
    OnlineSellingPolicy,
    RandomizedSellingPolicy,
)
from repro.core.policyspec import (
    PolicySpec,
    make_policy,
    parse_policies,
    spec_for,
)
from repro.core.randomized import SpotDistribution, optimize_distribution
from repro.core.simulator import run_policy
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import (
    ExperimentUser,
    build_experiment_population,
)
from repro.experiments.runner import (
    SWEEP_ENGINES,
    SweepResult,
    UserOutcome,
    run_sweep,
    run_user,
)
from repro.workload.store import PopulationStore
from repro.pricing.catalog import paper_experiment_plan
from repro.pricing.plan import PricingPlan
from repro.serve.server import AdvisoryApp, build_app
from repro.serve.shard import ShardRouter, start_cluster
from repro.serve.state import StreamTracker, run_stream

__all__ = [
    "__version__",
    # errors
    "ReproError",
    # cost model and pricing
    "CostBreakdown",
    "CostModel",
    "HourlyFeeMode",
    "PricingPlan",
    "paper_experiment_plan",
    # policies and canonical names
    "AllSellingPolicy",
    "CancellationAwareSellingPolicy",
    "KeepReservedPolicy",
    "OnlineSellingPolicy",
    "RandomizedSellingPolicy",
    "run_policy",
    "ALL_SELLING_POLICIES",
    "CANCELLATION_POLICIES",
    "ONLINE_POLICIES",
    "POLICY_A_3T4",
    "POLICY_A_T2",
    "POLICY_A_T4",
    "POLICY_ALL_3T4",
    "POLICY_ALL_T2",
    "POLICY_ALL_T4",
    "POLICY_CANCEL_3T4",
    "POLICY_CANCEL_T2",
    "POLICY_CANCEL_T4",
    "POLICY_KEEP",
    "POLICY_OPT",
    "POLICY_RANDOMIZED",
    # policy specs (the declarative construction grammar)
    "PolicySpec",
    "make_policy",
    "parse_policies",
    "spec_for",
    # randomized mixtures and cancellation
    "CancellationModel",
    "SpotDistribution",
    "apply_rebuys",
    "optimize_distribution",
    "run_population_randomized",
    # engines
    "FastPolicyKind",
    "FastResult",
    "FastSale",
    "run_fast",
    "run_offline_optimal",
    "PopulationResult",
    "PopulationStore",
    "run_population",
    "StreamTracker",
    "run_stream",
    # experiments
    "ExperimentConfig",
    "ExperimentUser",
    "SWEEP_ENGINES",
    "SweepResult",
    "UserOutcome",
    "build_experiment_population",
    "run_sweep",
    "run_user",
    # serving
    "AdvisoryApp",
    "ShardRouter",
    "build_app",
    "start_cluster",
]
