"""Cost accounting: the paper's Eq. (1) and the proofs' usage-based variant.

Eq. (1) defines the hourly cost of a user as::

    C_t = o_t * p  +  n_t * R  +  r_t * alpha * p  -  s_t * a * rp * R

on-demand purchases, new upfronts, the discounted hourly fee of every
*active* reservation (busy or idle), minus marketplace income. The
competitive-analysis sections (Eqs. (4)–(31)) instead bill the discounted
hourly fee only for *busy* hours (``alpha·p·x`` terms). Both conventions
are first-class here:

* :attr:`HourlyFeeMode.ACTIVE` — Eq. (1); used by the experiments.
* :attr:`HourlyFeeMode.USAGE` — the proof model; used when empirically
  checking the competitive-ratio bounds.

Eq. (1) books the sale income gross of Amazon's 12% service fee (the
seller's discount ``a`` absorbs it); :class:`CostModel` takes an optional
``marketplace_fee`` so the fee can be modelled explicitly (an ablation
bench sweeps it).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan


class HourlyFeeMode(enum.Enum):
    """How the reserved hourly fee ``alpha*p`` is billed."""

    ACTIVE = "active"  # every active reservation-hour (Eq. (1))
    USAGE = "usage"  # only busy reservation-hours (the proofs)


@dataclass(frozen=True)
class CostModel:
    """Prices one user's simulation: plan + selling terms.

    Parameters
    ----------
    plan:
        The instance type's :class:`~repro.pricing.plan.PricingPlan`.
    selling_discount:
        The paper's ``a`` ∈ [0, 1]: the seller lists at ``a`` times the
        prorated upfront.
    marketplace_fee:
        Fraction of the sale price kept by the marketplace (Amazon: 0.12).
        Defaults to 0 to match Eq. (1) exactly.
    fee_mode:
        Hourly-fee convention, see :class:`HourlyFeeMode`.
    """

    plan: PricingPlan
    selling_discount: float = 0.8
    marketplace_fee: float = 0.0
    fee_mode: HourlyFeeMode = HourlyFeeMode.ACTIVE

    def __post_init__(self) -> None:
        if not 0.0 <= self.selling_discount <= 1.0:
            raise SimulationError(
                f"selling_discount must lie in [0, 1], got {self.selling_discount!r}"
            )
        if not 0.0 <= self.marketplace_fee < 1.0:
            raise SimulationError(
                f"marketplace_fee must lie in [0, 1), got {self.marketplace_fee!r}"
            )

    # Shorthands matching the paper's symbols -----------------------------

    @property
    def p(self) -> float:
        return self.plan.on_demand_hourly

    @property
    def big_r(self) -> float:
        return self.plan.upfront

    @property
    def alpha(self) -> float:
        return self.plan.alpha

    @property
    def a(self) -> float:
        return self.selling_discount

    @property
    def period(self) -> int:
        return self.plan.period_hours

    # Pricing primitives ---------------------------------------------------

    def sale_income(self, remaining_fraction: float) -> float:
        """Seller proceeds from selling with ``remaining_fraction`` left:
        ``(1 − fee) · a · rp · R`` (the ``s_t · a · rp · R`` term)."""
        if not 0.0 <= remaining_fraction <= 1.0:
            raise SimulationError(
                f"remaining_fraction must lie in [0, 1], got {remaining_fraction!r}"
            )
        return (
            (1.0 - self.marketplace_fee)
            * self.selling_discount
            * remaining_fraction
            * self.big_r
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Totals of the four Eq. (1) components over a simulation."""

    on_demand: float = 0.0
    upfront: float = 0.0
    reserved_hourly: float = 0.0
    sale_income: float = 0.0
    #: Buy-back cost of cancellation-aware policies (prorated upfront
    #: plus penalty surcharge); 0.0 for every policy that never re-buys,
    #: keeping all pre-existing constructions and totals unchanged.
    rebuy: float = 0.0

    @property
    def total(self) -> float:
        """Net cost: expenses minus marketplace income."""
        return (
            self.on_demand
            + self.upfront
            + self.reserved_hourly
            - self.sale_income
            + self.rebuy
        )

    @property
    def gross(self) -> float:
        """Expenses before marketplace income."""
        return self.on_demand + self.upfront + self.reserved_hourly + self.rebuy

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            on_demand=self.on_demand + other.on_demand,
            upfront=self.upfront + other.upfront,
            reserved_hourly=self.reserved_hourly + other.reserved_hourly,
            sale_income=self.sale_income + other.sale_income,
            rebuy=self.rebuy + other.rebuy,
        )

    def approx_equal(self, other: "CostBreakdown", tolerance: float = 1e-9) -> bool:
        """Component-wise closeness check (for engine-equivalence tests)."""
        return all(
            math.isclose(getattr(self, name), getattr(other, name), abs_tol=tolerance)
            for name in (
                "on_demand",
                "upfront",
                "reserved_hourly",
                "sale_income",
                "rebuy",
            )
        )


class HourlyCosts:
    """Per-hour cost series of one simulation (the C_t of Eq. (1)).

    Accumulated by the simulator; exposes the component arrays and the
    aggregate :class:`CostBreakdown`.
    """

    __slots__ = (
        "horizon",
        "on_demand",
        "upfront",
        "reserved_hourly",
        "sale_income",
        "rebuy",
    )

    def __init__(self, horizon: int) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon!r}")
        self.horizon = horizon
        self.on_demand = np.zeros(horizon, dtype=np.float64)
        self.upfront = np.zeros(horizon, dtype=np.float64)
        self.reserved_hourly = np.zeros(horizon, dtype=np.float64)
        self.sale_income = np.zeros(horizon, dtype=np.float64)
        self.rebuy = np.zeros(horizon, dtype=np.float64)

    def record_on_demand(self, hour: int, count: int, model: CostModel) -> None:
        """Book ``o_t * p`` at ``hour``."""
        self.on_demand[hour] += count * model.p

    def record_upfront(self, hour: int, count: int, model: CostModel) -> None:
        """Book ``n_t * R`` at ``hour``."""
        self.upfront[hour] += count * model.big_r

    def record_reserved_hourly(self, hour: int, hours_billed: int, model: CostModel) -> None:
        """Book ``hours_billed`` reservation-hours at ``alpha*p`` each."""
        self.reserved_hourly[hour] += hours_billed * model.alpha * model.p

    def record_sale(self, hour: int, remaining_fraction: float, model: CostModel) -> None:
        """Book one sale's income at ``hour``."""
        self.sale_income[hour] += model.sale_income(remaining_fraction)

    def record_rebuy(
        self,
        hour: int,
        remaining_fraction: float,
        penalty: float,
        model: CostModel,
    ) -> None:
        """Book one cancellation buy-back at ``hour``: the prorated
        upfront a seller pays to re-acquire a sold reservation, plus the
        ``penalty`` surcharge — ``(1 + penalty) · a · rp · R``."""
        if not 0.0 <= remaining_fraction <= 1.0:
            raise SimulationError(
                f"remaining_fraction must lie in [0, 1], got {remaining_fraction!r}"
            )
        self.rebuy[hour] += (
            (1.0 + penalty)
            * model.selling_discount
            * remaining_fraction
            * model.big_r
        )

    def record_rebuy_surcharge(
        self,
        hour: int,
        remaining_fraction: float,
        penalty: float,
        model: CostModel,
    ) -> None:
        """Book only the ``penalty`` part of a buy-back —
        ``penalty · a · rp · R`` — for the coupled loop, where the
        purchasing stepper already books the replacement reservation's
        full upfront; a zero penalty books exactly 0.0, keeping the
        penalty-free coupled run bit-identical."""
        if not 0.0 <= remaining_fraction <= 1.0:
            raise SimulationError(
                f"remaining_fraction must lie in [0, 1], got {remaining_fraction!r}"
            )
        self.rebuy[hour] += (
            penalty * model.selling_discount * remaining_fraction * model.big_r
        )

    def per_hour_total(self) -> np.ndarray:
        """The C_t series."""
        return (
            self.on_demand
            + self.upfront
            + self.reserved_hourly
            - self.sale_income
            + self.rebuy
        )

    def breakdown(self) -> CostBreakdown:
        """Aggregate the per-hour series into Eq. (1) component totals."""
        return CostBreakdown(
            on_demand=float(self.on_demand.sum()),
            upfront=float(self.upfront.sum()),
            reserved_hourly=float(self.reserved_hourly.sum()),
            sale_income=float(self.sale_income.sum()),
            rebuy=float(self.rebuy.sum()),
        )

    @property
    def total(self) -> float:
        return self.breakdown().total
