"""The selling advisor: actionable per-instance recommendations.

The simulators replay whole horizons; a real user wants an answer *now*:
"here is my demand history and my reservations — which should I list in
the marketplace today?" :class:`SellingAdvisor` answers with one
:class:`Recommendation` per active instance:

* ``SELL`` — the instance is at (or past) its decision spot and its
  working time is below β: Algorithm 1 says list it, at ``a ×`` the
  prorated cap (the expected income is reported);
* ``KEEP`` — at/past the spot with working time ≥ β;
* ``WAIT`` — the spot is still ahead; the report shows the working
  time accumulated so far against the β pace, so the user can see which
  way the decision is trending.

The advisor is deliberately *online*: it only ever reads history up to
``now``, so following its SELL/KEEP answers hour by hour reproduces the
simulator's decisions exactly (property-tested).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.core.account import CostModel
from repro.core.breakeven import break_even_working_hours, decision_age_hours
from repro.core.ledger import ReservationLedger
from repro.errors import SimulationError
from repro.workload.base import TraceLike, as_trace


class Action(enum.Enum):
    """The advisor's verdict kinds."""

    SELL = "sell"
    KEEP = "keep"
    WAIT = "wait"


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict on one reserved instance."""

    instance_id: int
    reserved_at: int
    action: Action
    age_hours: int
    decision_hour: int
    working_hours: int  # over [reserved_at, min(decision spot, now))
    beta: float
    expected_income: float  # if sold now (0 for KEEP)

    @property
    def utilisation(self) -> float:
        """Working time over the observed window."""
        observed = max(
            min(self.decision_hour, self.reserved_at + self.age_hours)
            - self.reserved_at,
            1,
        )
        return self.working_hours / observed

    def rationale(self) -> str:
        """One-sentence explanation of the verdict."""
        if self.action is Action.SELL:
            return (
                f"worked {self.working_hours}h < beta {self.beta:.0f}h over the "
                f"decision window; list at the discounted prorated upfront "
                f"(expected income {self.expected_income:,.2f})"
            )
        if self.action is Action.KEEP:
            return (
                f"worked {self.working_hours}h >= beta {self.beta:.0f}h; the "
                f"reservation is paying for itself"
            )
        remaining = self.decision_hour - (self.reserved_at + self.age_hours)
        return (
            f"decision in {remaining}h; worked {self.working_hours}h of "
            f"beta {self.beta:.0f}h so far"
        )


@dataclass(frozen=True)
class AdvisorReport:
    """All recommendations at one instant."""

    now: int
    phi: float
    beta: float
    recommendations: list[Recommendation]

    def to_sell(self) -> list[Recommendation]:
        """The SELL recommendations only."""
        return [r for r in self.recommendations if r.action is Action.SELL]

    def expected_income(self) -> float:
        """Marketplace income if every SELL recommendation is listed."""
        return sum(r.expected_income for r in self.to_sell())

    def render(self) -> str:
        """Human-readable report, one line per instance."""
        lines = [
            f"advisor @ hour {self.now} (decision spot {self.phi:g}T, "
            f"beta {self.beta:.0f}h)"
        ]
        for r in self.recommendations:
            lines.append(
                f"  #{r.instance_id:<4d} reserved@{r.reserved_at:<6d} "
                f"{r.action.value.upper():4s}  {r.rationale()}"
            )
        lines.append(
            f"{len(self.to_sell())} instance(s) to list; expected income "
            f"{self.expected_income():,.2f}"
        )
        return "\n".join(lines)


class SellingAdvisor:
    """Online advisor applying ``A_{φT}`` to live history."""

    def __init__(self, model: CostModel, phi: float = 0.75) -> None:
        self.model = model
        self.phi = phi
        self.decision_age = decision_age_hours(model.plan, phi)
        self.beta = break_even_working_hours(
            model.plan, model.selling_discount, phi
        )
        if self.decision_age < 1:
            raise SimulationError(
                "the decision spot rounds to age 0 at this period; use a "
                "longer period or a later phi"
            )

    def review(
        self,
        demands_so_far: TraceLike,
        reservations_so_far: "ArrayLike",
        sold_hours: "dict[int, int] | None" = None,
    ) -> AdvisorReport:
        """Evaluate every reservation given history up to now.

        ``demands_so_far`` and ``reservations_so_far`` cover hours
        ``[0, now)``; ``sold_hours`` maps already-sold instance ids to
        their sale hours (so their history rewrites apply).
        """
        trace = as_trace(demands_so_far)
        now = len(trace)
        schedule = np.asarray(reservations_so_far).astype(np.int64)
        if schedule.shape != (now,):
            raise SimulationError(
                f"reservations must cover exactly the {now} observed hours"
            )
        ledger = ReservationLedger(now, self.model.period, trace.values)
        for hour in np.flatnonzero(schedule):
            ledger.reserve(int(hour), int(schedule[hour]))
        for instance_id, hour in sorted((sold_hours or {}).items(), key=lambda kv: kv[1]):
            ledger.sell(ledger.instances[instance_id], hour)

        recommendations = []
        for instance in ledger.instances:
            if instance.is_sold or not instance.is_active(now - 1):
                continue
            decision_hour = instance.reserved_at + self.decision_age
            window_end = min(decision_hour, now)
            working = (
                ledger.working_hours(instance, window_end)
                if window_end > instance.reserved_at
                else 0
            )
            age = now - instance.reserved_at
            if decision_hour <= now:
                if working < self.beta:
                    action = Action.SELL
                    income = self.model.sale_income(
                        instance.remaining_fraction(now)
                    )
                    # Algorithm 1 evaluates a batch sequentially, applying
                    # each sale's history rewrite before the next member;
                    # mirror that so later recommendations in this report
                    # see the adjusted timeline (the ledger is local).
                    ledger.sell(instance, decision_hour)
                else:
                    action = Action.KEEP
                    income = 0.0
            else:
                action = Action.WAIT
                income = 0.0
            recommendations.append(
                Recommendation(
                    instance_id=instance.instance_id,
                    reserved_at=instance.reserved_at,
                    action=action,
                    age_hours=age,
                    decision_hour=decision_hour,
                    working_hours=working,
                    beta=self.beta,
                    expected_income=income,
                )
            )
        return AdvisorReport(
            now=now, phi=self.phi, beta=self.beta, recommendations=recommendations
        )
