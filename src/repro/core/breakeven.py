"""Break-even points of the online selling algorithms (Eqs. (8)–(9)).

For decision fraction φ (the paper's spots are 3/4, 1/2, 1/4 of the
period), the break-even working time solves Eq. (8) generalised::

    φ·R + α·p·x  =  φ·R − a·φ·R + p·x      =>      x = φ·a·R / (p·(1 − α))

An instance whose working time during its first φT hours is below this β
should have been skipped in favour of on-demand capacity; the online
algorithm sells it at φT "to compensate for this mistake".
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.pricing.plan import PricingPlan

#: The paper's three decision fractions.
PHI_3T4 = 0.75
PHI_T2 = 0.5
PHI_T4 = 0.25

#: All of them, in the order the paper presents the algorithms.
PAPER_DECISION_FRACTIONS = (PHI_3T4, PHI_T2, PHI_T4)


def validate_phi(phi: float) -> float:
    """Check a decision fraction is usable; returns it for chaining."""
    if not 0.0 < phi < 1.0:
        raise PolicyError(f"decision fraction phi must lie in (0, 1), got {phi!r}")
    return phi


def break_even_working_hours(
    plan: PricingPlan, selling_discount: float, phi: float
) -> float:
    """The paper's β = φ·a·R / (p·(1 − α)).

    Working time below β during the first φT hours means selling at φT
    (and covering residual demand on demand) beats keeping.
    """
    validate_phi(phi)
    if not 0.0 <= selling_discount <= 1.0:
        raise PolicyError(
            f"selling_discount must lie in [0, 1], got {selling_discount!r}"
        )
    return (
        phi
        * selling_discount
        * plan.upfront
        / (plan.on_demand_hourly * (1.0 - plan.alpha))
    )


def decision_age_hours(plan: PricingPlan, phi: float) -> int:
    """Age, in hours, at which an ``A_{φT}`` policy evaluates an instance."""
    validate_phi(phi)
    return round(phi * plan.period_hours)


def remaining_fraction_at_decision(phi: float) -> float:
    """Fraction of the period left when selling at the decision spot."""
    validate_phi(phi)
    return 1.0 - phi
