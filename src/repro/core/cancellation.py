"""Sell-then-rebuy cancellation: the static rank rule shared by engines.

"Online Resource Allocation with Cancellations" (arXiv 2210.11570)
studies allocations that may be cancelled at a penalty. Mapped onto the
paper's marketplace: a seller who followed Algorithm 1/2 and sold a
reservation may later find the demand it served has *returned* — and
can cancel the sale economically by buying a replacement reservation on
the marketplace at the prorated upfront plus a penalty surcharge.

The decision sequence is untouched — exactly the invariant the clearing
engine established: sell/keep decisions (and therefore the history
rewrites, the sale tuples, and every differential against the reference
simulator) are identical with and without cancellation; only the
physical serving timeline and the income/expense ledger change.

The re-buy trigger is deliberately *static* so every execution layer —
the per-user batch engine, the population tensor engine, and the
incremental serving fleet — computes the identical outcome from the
same inputs with no simulation interleaving:

* ``r_base`` is the physical serving timeline including sales and
  clearing but **excluding** re-buys;
* sold units are ranked by sale order (decision hour, then batch
  index); unit ``s`` watches its window ``[watch_from, term_end)`` —
  from its clearing hour (the decision hour under instant sales) to its
  original term end — and sees the *residual* unmet demand
  ``d(h) − r_base(h) − rank_s(h)``, where ``rank_s(h)`` counts senior
  sold units whose watch windows cover ``h`` (each senior unit absorbs
  one unit of returned demand, whether or not it actually re-bought —
  that self-consistency is what makes the rule order-free);
* unit ``s`` re-buys at the ``trigger_hours``-th distinct hour with
  positive residual unmet demand, paying
  ``(1 + penalty) · a · rp · R`` — the marketplace price of its own
  listing at the re-buy hour, plus the surcharge — and serves again to
  term end.

Listings that expired or were still open at the horizon never sold, so
they never watch; under instant sales every sale watches from its
decision hour.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.account import CostModel
from repro.errors import SimulationError


@dataclass(frozen=True)
class CancellationModel:
    """The buy-back terms of a cancellation-aware policy.

    Parameters
    ----------
    penalty:
        Surcharge fraction over the marketplace price of the re-bought
        reservation: the buy-back costs ``(1 + penalty) · a · rp · R``.
        0 means re-buying at exactly the listed price.
    trigger_hours:
        How many distinct hours of residual unmet demand a sold unit
        must observe inside its watch window before re-buying; 1 re-buys
        at the first returned-demand hour.
    """

    penalty: float = 0.25
    trigger_hours: int = 1

    def __post_init__(self) -> None:
        penalty = float(self.penalty)
        if not math.isfinite(penalty) or penalty < 0.0:
            raise SimulationError(
                f"penalty must be finite and >= 0, got {self.penalty!r}"
            )
        object.__setattr__(self, "penalty", penalty)
        if isinstance(self.trigger_hours, bool) or not isinstance(
            self.trigger_hours, (int, np.integer)
        ):
            raise SimulationError(
                f"trigger_hours must be an integer, got {self.trigger_hours!r}"
            )
        if int(self.trigger_hours) < 1:
            raise SimulationError(
                f"trigger_hours must be >= 1, got {self.trigger_hours!r}"
            )
        object.__setattr__(self, "trigger_hours", int(self.trigger_hours))

    def to_payload(self) -> dict:
        """JSON-ready form (checkpoints, cache keys)."""
        return {"penalty": self.penalty, "trigger_hours": self.trigger_hours}

    @classmethod
    def from_payload(cls, payload: dict) -> "CancellationModel":
        if not isinstance(payload, dict):
            raise SimulationError("cancellation payload must be an object")
        return cls(
            penalty=float(payload.get("penalty", 0.25)),
            trigger_hours=int(payload.get("trigger_hours", 1)),
        )

    def content_digest(self) -> str:
        """Stable identity for :func:`repro.parallel.hashing.stable_hash`."""
        parts = [
            "cancellation",
            repr(float(self.penalty)),
            repr(int(self.trigger_hours)),
        ]
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SoldUnit:
    """One sold reservation's watch window, in sale order."""

    reserved_at: int
    #: First watched hour: the clearing hour (= the decision hour under
    #: instant sales).
    watch_from: int
    #: One past the last watched hour: ``min(reserved_at + T, horizon)``.
    term_end: int


@dataclass(frozen=True)
class Rebuy:
    """One executed buy-back."""

    unit_index: int
    reserved_at: int
    hour: int
    cost: float


@dataclass(frozen=True)
class RebuyOutcome:
    """What :func:`apply_rebuys` decided.

    ``r_after`` is ``r_base`` plus each re-bought unit serving again
    over ``[rebuy hour, term end)``; ``rebuy_cost`` accumulates the
    per-unit costs in sale order (the deterministic accumulation order
    every engine shares).
    """

    rebuys: "tuple[Rebuy, ...]"
    r_after: np.ndarray
    rebuy_cost: float


def rebuy_cost_at(
    model: CostModel,
    period: int,
    reserved_at: int,
    hour: int,
    penalty: float,
) -> float:
    """The buy-back price at ``hour``: ``(1 + penalty) · a · rp · R``.

    The remaining fraction is measured from the unit's own reservation
    start, exactly like the sale income it earlier collected.
    """
    remaining = 1.0 - (hour - reserved_at) / period
    return (1.0 + penalty) * model.selling_discount * remaining * model.big_r


def apply_rebuys(
    demands: np.ndarray,
    r_base: np.ndarray,
    units: "Sequence[SoldUnit]",
    period: int,
    model: CostModel,
    cancellation: CancellationModel,
) -> RebuyOutcome:
    """Run the static rank rule over one user's sold units.

    Pure function of its inputs: both batch engines call it with the
    identical ``(d, r_base, units)`` triple (their equivalence on those
    is already differential-tested), so their cancellation outcomes are
    bit-identical by construction. The serving fleet's incremental form
    reproduces the same rule one event at a time for single-reservation
    instances (where the rank is always zero).
    """
    d = np.asarray(demands)
    base = np.asarray(r_base)
    horizon = d.shape[0]
    cover = np.zeros(horizon, dtype=np.int64)
    r_after = base.copy()
    rebuys: "list[Rebuy]" = []
    total = 0.0
    for index, unit in enumerate(units):
        start = unit.watch_from
        end = unit.term_end
        if start < end:
            window = slice(start, end)
            residual = d[window] - base[window] - cover[window]
            hours = np.flatnonzero(residual > 0)
            if hours.size >= cancellation.trigger_hours:
                hour = start + int(hours[cancellation.trigger_hours - 1])
                cost = rebuy_cost_at(
                    model, period, unit.reserved_at, hour, cancellation.penalty
                )
                r_after[hour:end] += 1
                rebuys.append(
                    Rebuy(
                        unit_index=index,
                        reserved_at=unit.reserved_at,
                        hour=hour,
                        cost=cost,
                    )
                )
                total += cost
            cover[window] += 1
    return RebuyOutcome(rebuys=tuple(rebuys), r_after=r_after, rebuy_cost=total)
