"""Liquidity-aware sale clearing: listings, hazards, and delay draws.

The paper's Algorithms 1/2 assume a SELL decision clears instantly at
``a ×`` the prorated cap. "No Reservations: A First Look at Amazon's
Reserved Instance Marketplace" (arXiv 2005.12249) measures the real
marketplace and finds none of that holds: listings sit on the book for
hours to weeks, the probability of selling in any given hour rises
steeply with the offered discount, and liquidity varies by orders of
magnitude across instance types. This module is the seeded,
checkpoint-safe model of that clearing process shared by every
execution layer (``run_fast``, ``run_population``, the sweep runner,
and ``repro.serve``):

* a SELL decision opens a *listing* instead of completing a sale;
* while the listing is open the seller keeps paying the hourly and
  amortised costs (the instance still serves demand);
* each open hour ``w`` the listing clears with hazard
  ``h(w) = min(liquidity · h₀ · exp(s · (1 − a(w))), 1)`` where
  ``a(w)`` is the discount schedule (fixed, adaptive decay, or a
  re-list ladder) — the exponential-in-discount shape and the per-type
  liquidity multiplier are the calibrated forms of arXiv 2005.12249;
* a listing that has not cleared by its window's end (the reservation
  expiry, or an explicit ``max_open_hours`` cap) *expires* and the
  decision reverts to KEEP — no income, the instance serves out its
  term.

Determinism contract: exactly **one** uniform draw is consumed per
listing, taken from a per-key :class:`numpy.random.Generator` stream
(:meth:`ClearingModel.stream`), and the delay is recovered by inverting
the clearing CDF with ``searchsorted``. Because
``Generator.random(size=k)`` consumes the stream identically to ``k``
scalar draws, the vectorised population engine and the per-user engine
see the same delays — the differential tests in
``tests/core/test_clearing.py`` pin this. The ``instant`` regime is the
degenerate limit ``h ≡ 1``: every draw yields delay 0 and the engines
reproduce the paper's instant-sale outputs bit-identically.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.streams import key_to_int as _key_to_int  # noqa: F401 - re-export
from repro.core.streams import stream as _stream
from repro.errors import SimulationError

#: Per-instance-type liquidity tiers: multipliers on the base hazard.
#: ``instant`` is the degenerate paper limit (hazard ≡ 1, delay 0);
#: ``deep`` ≈ popular Linux/us-east types that clear within hours;
#: ``frozen`` ≈ the long tail where listings sit for weeks
#: (arXiv 2005.12249 §4: sale latency spans orders of magnitude by type).
LIQUIDITY_REGIMES: "Dict[str, float]" = {
    "instant": math.inf,
    "deep": 5.0,
    "normal": 1.0,
    "thin": 0.3,
    "frozen": 0.05,
}

#: Discount-schedule kinds (see :class:`DiscountSchedule`).
SCHEDULE_FIXED = "fixed"
SCHEDULE_ADAPTIVE = "adaptive"
SCHEDULE_LADDER = "ladder"
_SCHEDULE_KINDS = (SCHEDULE_FIXED, SCHEDULE_ADAPTIVE, SCHEDULE_LADDER)


def _require_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise SimulationError(f"{name} must be finite, got {value!r}")
    return value


def _require_fraction(name: str, value: float) -> float:
    value = _require_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise SimulationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def _require_count(name: str, value: object) -> int:
    """A non-negative integral count; fractional floats are rejected."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise SimulationError(
            f"{name} must be an integer hour count, got {value!r}"
        )
    count = int(value)
    if count < 0:
        raise SimulationError(f"{name} must be >= 0, got {count!r}")
    return count


@dataclass(frozen=True)
class DiscountSchedule:
    """The discount ``a(w)`` offered after ``w`` open hours.

    * ``fixed`` — the cost model's discount (or ``start_discount``)
      forever; the paper's pricing, just no longer guaranteed to clear.
    * ``adaptive`` — the promoted
      :class:`repro.marketplace.seller.AdaptiveDiscountSeller` rule:
      ``max(start · (1 − decay_per_day)^(w/24), floor)``.
    * ``ladder`` — the promoted re-list ladder: step down through the
      ``ladder`` discounts every ``step_hours`` open hours, holding the
      last rung.

    ``start_discount=None`` (fixed only) defers to the cost model's
    ``selling_discount`` — required for the instant limit to reproduce
    the paper's income expression bit-identically.
    """

    kind: str = SCHEDULE_FIXED
    start_discount: Optional[float] = None
    floor_discount: float = 0.5
    decay_per_day: float = 0.05
    ladder: Tuple[float, ...] = ()
    step_hours: int = 168

    def __post_init__(self) -> None:
        if self.kind not in _SCHEDULE_KINDS:
            raise SimulationError(
                f"discount schedule kind must be one of {_SCHEDULE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.start_discount is not None:
            _require_fraction("start_discount", self.start_discount)
        elif self.kind == SCHEDULE_ADAPTIVE:
            raise SimulationError(
                "an adaptive discount schedule needs an explicit start_discount"
            )
        _require_fraction("floor_discount", self.floor_discount)
        decay = _require_fraction("decay_per_day", self.decay_per_day)
        if decay >= 1.0:
            raise SimulationError(
                f"decay_per_day must lie in [0, 1), got {decay!r}"
            )
        if self.kind == SCHEDULE_LADDER:
            if not self.ladder:
                raise SimulationError(
                    "a ladder discount schedule needs a non-empty ladder"
                )
            object.__setattr__(
                self,
                "ladder",
                tuple(
                    _require_fraction(f"ladder[{i}]", rung)
                    for i, rung in enumerate(self.ladder)
                ),
            )
            step = _require_count("step_hours", self.step_hours)
            if step == 0:
                raise SimulationError("step_hours must be >= 1")

    def profile(self, base_discount: float, hours: int) -> np.ndarray:
        """``a(w)`` for ``w = 0 .. hours-1`` as a float64 array.

        ``profile(...)[0]`` equals the first asking discount exactly —
        for the default fixed schedule that is ``base_discount`` itself,
        which keeps the instant limit's income expression identical to
        :meth:`repro.core.account.CostModel.sale_income`.
        """
        hours = _require_count("hours", hours)
        base = _require_fraction("base_discount", base_discount)
        if self.kind == SCHEDULE_FIXED:
            start = base if self.start_discount is None else self.start_discount
            return np.full(hours, float(start), dtype=np.float64)
        if self.kind == SCHEDULE_ADAPTIVE:
            days = np.arange(hours, dtype=np.float64) / 24.0
            decayed = self.start_discount * (1.0 - self.decay_per_day) ** days
            return np.maximum(decayed, self.floor_discount)
        rungs = np.asarray(self.ladder, dtype=np.float64)
        steps = np.minimum(
            np.arange(hours, dtype=np.int64) // self.step_hours,
            len(rungs) - 1,
        )
        return rungs[steps]

    def to_payload(self) -> dict:
        """JSON-ready form (checkpoints, cache keys)."""
        return {
            "kind": self.kind,
            "start_discount": self.start_discount,
            "floor_discount": self.floor_discount,
            "decay_per_day": self.decay_per_day,
            "ladder": list(self.ladder),
            "step_hours": self.step_hours,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DiscountSchedule":
        if not isinstance(payload, dict):
            raise SimulationError("discount schedule payload must be an object")
        return cls(
            kind=str(payload.get("kind", SCHEDULE_FIXED)),
            start_discount=(
                None
                if payload.get("start_discount") is None
                else float(payload["start_discount"])
            ),
            floor_discount=float(payload.get("floor_discount", 0.5)),
            decay_per_day=float(payload.get("decay_per_day", 0.05)),
            ladder=tuple(float(r) for r in payload.get("ladder", ())),
            step_hours=int(payload.get("step_hours", 168)),
        )


@dataclass(frozen=True)
class ClearingProfile:
    """Precomputed per-listing clearing law for one ``(period, φ)``.

    ``window`` is the number of hours a listing may stay open (it must
    clear strictly before the reservation expires, and before any
    ``max_open_hours`` cap); ``cdf[w]`` is the probability of clearing
    within ``w`` open hours; ``discounts[w]`` is the discount in force
    if it clears after waiting ``w`` hours.
    """

    window: int
    cdf: np.ndarray
    discounts: np.ndarray

    def sample_delay(self, uniform: float) -> int:
        """Invert the CDF: delay in ``[0, window]``; ``window`` = expired."""
        return int(np.searchsorted(self.cdf, uniform, side="right"))

    def sample_delays(self, uniforms: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`sample_delay` (same stream semantics)."""
        return np.searchsorted(self.cdf, uniforms, side="right")


@dataclass(frozen=True)
class ClearingModel:
    """The seeded clearing process one simulation run draws from.

    Parameters
    ----------
    liquidity:
        A :data:`LIQUIDITY_REGIMES` tier name; multiplies the base
        hazard. ``instant`` reproduces the paper's instant sales.
    base_hazard:
        Per-hour clearing probability of a zero-information listing at
        full price in the ``normal`` regime (``h₀``).
    sensitivity:
        Exponential steepness ``s`` of the hazard in the offered
        discount: ``h ∝ exp(s · (1 − a))`` — deeper discounts clear
        faster (arXiv 2005.12249 §5).
    schedule:
        The :class:`DiscountSchedule` sellers follow while listed.
    max_open_hours:
        Optional cap on open hours; past it the listing expires and the
        unit reverts to KEEP. ``None`` lets it ride to the reservation
        expiry.
    seed:
        Root of every per-key stream; two runs with the same seed and
        keys draw identical delays.
    """

    liquidity: str = "normal"
    base_hazard: float = 0.02
    sensitivity: float = 4.0
    schedule: DiscountSchedule = field(default_factory=DiscountSchedule)
    max_open_hours: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.liquidity not in LIQUIDITY_REGIMES:
            raise SimulationError(
                f"unknown liquidity regime {self.liquidity!r}; expected one "
                f"of {sorted(LIQUIDITY_REGIMES)}"
            )
        hazard = _require_finite("base_hazard", self.base_hazard)
        if not 0.0 < hazard <= 1.0:
            raise SimulationError(
                f"base_hazard must lie in (0, 1], got {hazard!r}"
            )
        sensitivity = _require_finite("sensitivity", self.sensitivity)
        if sensitivity < 0.0:
            raise SimulationError(
                f"sensitivity must be >= 0, got {sensitivity!r}"
            )
        if not isinstance(self.schedule, DiscountSchedule):
            raise SimulationError(
                "schedule must be a DiscountSchedule, got "
                f"{type(self.schedule).__name__}"
            )
        if self.max_open_hours is not None:
            _require_count("max_open_hours", self.max_open_hours)
        if isinstance(self.seed, bool) or not isinstance(
            self.seed, (int, np.integer)
        ):
            raise SimulationError(f"seed must be an integer, got {self.seed!r}")
        if int(self.seed) < 0:
            raise SimulationError(f"seed must be >= 0, got {self.seed!r}")

    # ------------------------------------------------------------------

    @property
    def is_instant(self) -> bool:
        """True for the degenerate paper limit (every sale clears now)."""
        return self.liquidity == "instant"

    @classmethod
    def instant(cls, seed: int = 0) -> "ClearingModel":
        """The paper's instant-sale limit as a clearing model."""
        return cls(liquidity="instant", seed=seed)

    @classmethod
    def for_regime(cls, liquidity: str, seed: int = 0, **overrides: object) -> "ClearingModel":
        """A model in one named liquidity regime (defaults elsewhere)."""
        return cls(liquidity=liquidity, seed=seed, **overrides)  # type: ignore[arg-type]

    def with_seed(self, seed: int) -> "ClearingModel":
        """The same clearing process re-rooted on another seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------

    def hazards(self, discounts: np.ndarray) -> np.ndarray:
        """Per-hour clearing hazard for each scheduled discount."""
        if self.is_instant:
            return np.ones(len(discounts), dtype=np.float64)
        raw = (
            LIQUIDITY_REGIMES[self.liquidity]
            * self.base_hazard
            * np.exp(self.sensitivity * (1.0 - np.asarray(discounts)))
        )
        return np.minimum(raw, 1.0)

    def profile(
        self, base_discount: float, period: int, decision_age: int
    ) -> ClearingProfile:
        """The clearing law for listings opened at age ``decision_age``."""
        period = _require_count("period", period)
        decision_age = _require_count("decision_age", decision_age)
        if not 0 < decision_age < period:
            raise SimulationError(
                f"decision_age must lie strictly inside (0, {period}), "
                f"got {decision_age!r}"
            )
        window = period - decision_age
        if self.max_open_hours is not None:
            window = min(window, self.max_open_hours + 1)
        discounts = self.schedule.profile(base_discount, window)
        hazards = self.hazards(discounts)
        if self.is_instant:
            cdf = np.ones(window, dtype=np.float64)
        else:
            cdf = 1.0 - np.cumprod(1.0 - hazards)
        return ClearingProfile(window=window, cdf=cdf, discounts=discounts)

    def stream(self, key: object) -> np.random.Generator:
        """The seeded per-key delay stream (one uniform per listing).

        Delegates to :func:`repro.core.streams.stream`, the shared
        per-key randomness contract.
        """
        return _stream(int(self.seed), key)

    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready form (checkpoints, cache keys)."""
        return {
            "liquidity": self.liquidity,
            "base_hazard": self.base_hazard,
            "sensitivity": self.sensitivity,
            "schedule": self.schedule.to_payload(),
            "max_open_hours": self.max_open_hours,
            "seed": int(self.seed),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClearingModel":
        if not isinstance(payload, dict):
            raise SimulationError("clearing payload must be an object")
        return cls(
            liquidity=str(payload.get("liquidity", "normal")),
            base_hazard=float(payload.get("base_hazard", 0.02)),
            sensitivity=float(payload.get("sensitivity", 4.0)),
            schedule=DiscountSchedule.from_payload(
                payload.get("schedule", DiscountSchedule().to_payload())
            ),
            max_open_hours=(
                None
                if payload.get("max_open_hours") is None
                else int(payload["max_open_hours"])
            ),
            seed=int(payload.get("seed", 0)),
        )

    def content_digest(self) -> str:
        """Stable identity for :func:`repro.parallel.hashing.stable_hash`."""
        parts = [
            "clearing",
            self.liquidity,
            repr(float(self.base_hazard)),
            repr(float(self.sensitivity)),
            self.schedule.kind,
            repr(self.schedule.start_discount),
            repr(float(self.schedule.floor_discount)),
            repr(float(self.schedule.decay_per_day)),
            repr(tuple(float(r) for r in self.schedule.ladder)),
            repr(int(self.schedule.step_hours)),
            repr(self.max_open_hours),
            repr(int(self.seed)),
        ]
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
