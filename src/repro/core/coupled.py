"""Coupled purchasing + selling simulation (extension beyond the paper).

The paper evaluates selling policies on a *fixed* reservation schedule
produced beforehand by a purchasing imitator (Section VI-A). In reality
the two loops interact: after the selling policy disposes of an
instance, a later demand surge makes the purchasing rule buy a new one —
which the selling policy may again evaluate T/4 later, and so on.

:func:`run_coupled` closes that loop. Each hour:

1. instances reaching their decision spot are evaluated by the selling
   policy (Algorithm 1's working-time rule, unchanged; sales take
   effect at the start of the hour);
2. the purchasing stepper sees the demand and the *live*, post-sale
   pool and reserves (so a gap opened by a sale can be refilled the
   same hour — the stepper genuinely reacts to the seller);
3. on-demand tops up the residual gap and Eq. (1) costs are booked.

The function returns the same :class:`~repro.core.simulator.SimulationResult`
as the decoupled path, so all analyses apply. The decoupled run is the
special case where the stepper ignores the pool's sales — equivalently,
``run_coupled`` with a :class:`KeepReservedPolicy` reproduces the
imitator's batch schedule exactly (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.account import CostModel, HourlyCosts, HourlyFeeMode
from repro.core.instance import ReservedInstance
from repro.core.ledger import ReservationLedger
from repro.core.policies import SellingPolicy
from repro.core.simulator import (
    SaleRecord,
    SimulationResult,
    evaluate_decision,
    schedule_decision,
)
from repro.purchasing.stepper import PurchasingStepper
from repro.workload.base import TraceLike, as_trace


def run_coupled(
    demands: TraceLike,
    stepper: PurchasingStepper,
    model: CostModel,
    policy: SellingPolicy,
    policy_label: "str | None" = None,
) -> SimulationResult:
    """Simulate purchasing and selling reacting to each other.

    See the module docstring for the per-hour sequence; all Eq. (1)
    accounting matches :class:`~repro.core.simulator.SellingSimulator`.
    """
    trace = as_trace(demands)
    horizon = len(trace)
    period = model.period
    ledger = ReservationLedger(horizon, period, trace.values)
    costs = HourlyCosts(horizon)
    sales: list[SaleRecord] = []
    on_demand = np.zeros(horizon, dtype=np.int64)
    reservations = np.zeros(horizon, dtype=np.int64)
    pending: dict[int, list[ReservedInstance]] = {}

    for hour in range(horizon):
        demand = int(trace.values[hour])
        for instance in pending.pop(hour, ()):
            evaluate_decision(policy, instance, hour, ledger, model, costs, sales)

        count = int(stepper.step(hour, demand, ledger.active_count(hour)))
        if count < 0:
            raise ValueError(f"stepper returned a negative count at hour {hour}")
        if count:
            reservations[hour] = count
            created = ledger.reserve(hour, count)
            costs.record_upfront(hour, count, model)
            for instance in created:
                schedule_decision(policy, instance, horizon, pending)

        active = ledger.active_count(hour)
        needed = ledger.on_demand_needed(hour)
        on_demand[hour] = needed
        costs.record_on_demand(hour, needed, model)
        if model.fee_mode is HourlyFeeMode.ACTIVE:
            costs.record_reserved_hourly(hour, active, model)
        else:
            costs.record_reserved_hourly(hour, ledger.busy_count(hour), model)

    return SimulationResult(
        policy_name=policy_label or f"coupled:{policy.name}",
        horizon=horizon,
        period=period,
        demands=trace,
        reservations=reservations,
        costs=costs,
        sales=sales,
        instances=ledger.instances,
        on_demand=on_demand,
        r_physical=ledger.r_physical.copy(),
    )
