"""Coupled purchasing + selling simulation (extension beyond the paper).

The paper evaluates selling policies on a *fixed* reservation schedule
produced beforehand by a purchasing imitator (Section VI-A). In reality
the two loops interact: after the selling policy disposes of an
instance, a later demand surge makes the purchasing rule buy a new one —
which the selling policy may again evaluate T/4 later, and so on.

:func:`run_coupled` closes that loop. Each hour:

1. instances reaching their decision spot are evaluated by the selling
   policy (Algorithm 1's working-time rule, unchanged; sales take
   effect at the start of the hour);
2. the purchasing stepper sees the demand and the *live*, post-sale
   pool and reserves (so a gap opened by a sale can be refilled the
   same hour — the stepper genuinely reacts to the seller);
3. on-demand tops up the residual gap and Eq. (1) costs are booked.

The function returns the same :class:`~repro.core.simulator.SimulationResult`
as the decoupled path, so all analyses apply. The decoupled run is the
special case where the stepper ignores the pool's sales — equivalently,
``run_coupled`` with a :class:`KeepReservedPolicy` reproduces the
imitator's batch schedule exactly (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.account import CostModel, HourlyCosts, HourlyFeeMode
from repro.core.instance import ReservedInstance
from repro.core.ledger import ReservationLedger
from repro.core.policies import CancellationAwareSellingPolicy, SellingPolicy
from repro.core.simulator import (
    SaleRecord,
    SimulationResult,
    evaluate_decision,
    schedule_decision,
)
from repro.purchasing.stepper import PurchasingStepper
from repro.workload.base import TraceLike, as_trace


def run_coupled(
    demands: TraceLike,
    stepper: PurchasingStepper,
    model: CostModel,
    policy: SellingPolicy,
    policy_label: "str | None" = None,
) -> SimulationResult:
    """Simulate purchasing and selling reacting to each other.

    See the module docstring for the per-hour sequence; all Eq. (1)
    accounting matches :class:`~repro.core.simulator.SellingSimulator`.
    """
    trace = as_trace(demands)
    horizon = len(trace)
    period = model.period
    ledger = ReservationLedger(horizon, period, trace.values)
    costs = HourlyCosts(horizon)
    sales: list[SaleRecord] = []
    on_demand = np.zeros(horizon, dtype=np.int64)
    reservations = np.zeros(horizon, dtype=np.int64)
    pending: dict[int, list[ReservedInstance]] = {}
    # A cancellation-aware seller pays its penalty when the purchasing
    # loop re-reserves while an earlier sale's term is still running:
    # each sale opens a window [sale hour, term end), and new
    # reservations consume open windows FIFO (oldest sale first), each
    # booking the penalty surcharge on the sold unit's remaining term.
    # The decision rule, the schedule, and the sale income are exactly
    # the underlying online policy's; with penalty=0 the surcharge is
    # 0.0 and the run is bit-identical to the penalty-free policy.
    cancellation = (
        policy.cancellation
        if isinstance(policy, CancellationAwareSellingPolicy)
        else None
    )
    sold_windows: "list[tuple[int, int]]" = []  # (reserved_at, term_end) FIFO

    for hour in range(horizon):
        demand = int(trace.values[hour])
        for instance in pending.pop(hour, ()):
            sales_before = len(sales)
            evaluate_decision(policy, instance, hour, ledger, model, costs, sales)
            if cancellation is not None and len(sales) > sales_before:
                sold_windows.append(
                    (instance.reserved_at, min(instance.reserved_at + period, horizon))
                )

        count = int(stepper.step(hour, demand, ledger.active_count(hour)))
        if count < 0:
            raise ValueError(f"stepper returned a negative count at hour {hour}")
        if count:
            reservations[hour] = count
            created = ledger.reserve(hour, count)
            costs.record_upfront(hour, count, model)
            for instance in created:
                schedule_decision(policy, instance, horizon, pending)
            if cancellation is not None and sold_windows:
                sold_windows = [w for w in sold_windows if hour < w[1]]
                matched = sold_windows[:count]
                for reserved_at, _term_end in matched:
                    remaining = 1.0 - (hour - reserved_at) / period
                    costs.record_rebuy_surcharge(
                        hour, remaining, cancellation.penalty, model
                    )
                sold_windows = sold_windows[count:]

        active = ledger.active_count(hour)
        needed = ledger.on_demand_needed(hour)
        on_demand[hour] = needed
        costs.record_on_demand(hour, needed, model)
        if model.fee_mode is HourlyFeeMode.ACTIVE:
            costs.record_reserved_hourly(hour, active, model)
        else:
            costs.record_reserved_hourly(hour, ledger.busy_count(hour), model)

    return SimulationResult(
        policy_name=policy_label or f"coupled:{policy.name}",
        horizon=horizon,
        period=period,
        demands=trace,
        reservations=reservations,
        costs=costs,
        sales=sales,
        instances=ledger.instances,
        on_demand=on_demand,
        r_physical=ledger.r_physical.copy(),
    )
