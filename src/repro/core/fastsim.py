"""Vectorised transliteration of the paper's Algorithm 1 / Algorithm 2.

This engine mirrors the pseudocode directly on numpy arrays — the hourly
loop, the ``l`` running sum, the ``r_j − d_j − i + 1 > l`` freeness test,
and the history/future ``r_k`` decrements on sale — with no instance
objects. It exists for two reasons:

1. **Fidelity**: it is a line-by-line rendering of the published
   pseudocode, equivalence-tested against the object-model
   :class:`~repro.core.simulator.SellingSimulator` (they must produce the
   same sales and the same cost breakdowns).
2. **Throughput**: population-scale sweeps (300 users × several policies
   × year-long horizons) run via this path.

One deliberate clarification shared by both engines (see DESIGN.md §4): a
sale at decision hour ``t`` takes effect at the start of ``t`` (the
pseudocode decrements from ``t + 1``), which matches the cost expressions
of the analysis (Eq. (15): the instance serves nothing after the spot).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro._arrays import as_count_array
from repro.core.account import CostBreakdown, CostModel, HourlyFeeMode
from repro.core.breakeven import break_even_working_hours, validate_phi
from repro.core.cancellation import (
    CancellationModel,
    Rebuy,
    SoldUnit,
    apply_rebuys,
)
from repro.core.clearing import ClearingModel, ClearingProfile
from repro.errors import SimulationError

#: Version of the fast engine's numerical behaviour. Part of the sweep
#: cache key (see :mod:`repro.parallel.cache`): bump it whenever a change
#: here could alter any :class:`FastResult`, so stale cached outcomes are
#: invalidated. v2 = the incremental running-sum ``l`` computation.
ENGINE_VERSION = 2


def validate_threshold_scale(threshold_scale: float) -> float:
    """Reject negative and non-finite β multipliers; returns the value.

    ``nan`` passes a bare ``< 0`` guard and then poisons every
    ``working < scale·β`` comparison (all False), silently disabling
    selling — so non-finite values are rejected loudly instead. Shared
    by :func:`run_fast` and :func:`repro.core.popsim.run_population`.
    """
    if not math.isfinite(threshold_scale):
        raise SimulationError(
            f"threshold_scale must be finite, got {threshold_scale!r}"
        )
    if threshold_scale < 0:
        raise SimulationError(f"threshold_scale must be >= 0, got {threshold_scale!r}")
    return threshold_scale


class FastPolicyKind(enum.Enum):
    """The decision rules the fast engine supports."""

    ONLINE = "online"  # Algorithm 1/2: sell iff working time < beta
    ALL_SELLING = "all-selling"  # benchmark: always sell at the spot
    KEEP_RESERVED = "keep-reserved"  # benchmark: never sell


@dataclass(frozen=True)
class FastSale:
    """One sale performed by the fast engine."""

    reserved_at: int
    batch_index: int  # the pseudocode's i (1-based)
    hour: int
    working_hours: int


@dataclass(frozen=True)
class FastListing:
    """One marketplace listing opened by a SELL decision under clearing.

    ``delay`` is the drawn open-hours-to-clear; a draw of the full
    clearing window means the listing never clears (it expires back to
    KEEP at ``listed_at + window``). ``outcome`` is what the horizon
    actually observed: ``"cleared"`` (income booked at ``cleared_at``),
    ``"expired"`` (window closed unsold inside the horizon), or
    ``"open"`` (still on the book when the simulation ended — no income,
    the unit kept serving).
    """

    reserved_at: int
    batch_index: int
    listed_at: int
    delay: int
    cleared_at: "int | None"
    outcome: str
    income: float


@dataclass(frozen=True)
class FastResult:
    """Outputs of one fast-engine run."""

    breakdown: CostBreakdown
    sales: tuple[FastSale, ...]
    on_demand: np.ndarray
    r_physical: np.ndarray
    #: Listing lifecycle records; empty when no clearing model was given
    #: (instant sales, the paper's semantics).
    listings: tuple[FastListing, ...] = ()
    #: Buy-backs executed by a cancellation-aware run; empty without a
    #: cancellation model.
    rebuys: "tuple[Rebuy, ...]" = ()

    @property
    def total_cost(self) -> float:
        return self.breakdown.total

    @property
    def instances_sold(self) -> int:
        return len(self.sales)

    @property
    def instances_cleared(self) -> int:
        """Sales that actually cleared on the marketplace.

        Without a clearing model every sale clears instantly, so this
        equals :attr:`instances_sold`.
        """
        if not self.listings:
            return len(self.sales)
        return sum(1 for listing in self.listings if listing.outcome == "cleared")

    @property
    def listings_expired(self) -> int:
        return sum(1 for listing in self.listings if listing.outcome == "expired")

    @property
    def listings_open(self) -> int:
        return sum(1 for listing in self.listings if listing.outcome == "open")

    @property
    def instances_rebought(self) -> int:
        """Sold units bought back by the cancellation rule."""
        return len(self.rebuys)


def run_fast(
    demands: np.ndarray,
    reservations: np.ndarray,
    model: CostModel,
    phi: float = 0.75,
    kind: FastPolicyKind = FastPolicyKind.ONLINE,
    threshold_scale: float = 1.0,
    *,
    clearing: "ClearingModel | None" = None,
    clearing_key: object = 0,
    cancellation: "CancellationModel | None" = None,
) -> FastResult:
    """Run one selling policy over ``(d, n)`` with the array engine.

    ``phi`` selects the decision spot (0.75 → Algorithm 1's ``A_{3T/4}``,
    0.5 → Algorithm 2's ``A_{T/2}``, 0.25 → ``A_{T/4}``); it is ignored
    for ``KEEP_RESERVED``.

    With a :class:`~repro.core.clearing.ClearingModel`, SELL decisions
    open listings instead of completing: the decision sequence itself is
    unchanged (the pseudocode's history rewrite happens at the decision,
    exactly as the seller stops *counting* the unit), but the physical
    timeline keeps serving — and billing — until the drawn clearing
    hour, income is booked at the cleared discount on the remaining
    fraction *at the clearing hour*, and listings whose window closes
    unsold revert to KEEP. ``clearing_key`` selects the per-user uniform
    stream (``clearing.stream(clearing_key)``; one draw per sale). In
    the ``instant`` regime every draw yields delay 0 and the result is
    bit-identical to ``clearing=None``.

    With a :class:`~repro.core.cancellation.CancellationModel`, sold
    units may be bought back when demand returns (the static rank rule
    of :mod:`repro.core.cancellation`): the decision sequence — and
    therefore ``sales`` and ``listings`` — is *identical* to the
    cancellation-free run, but ``r_physical`` regains each re-bought
    unit from its re-buy hour, the breakdown's ``rebuy`` component books
    the buy-back prices, and on-demand/billed hours are recomputed from
    the repaired timeline.
    """
    d = as_count_array(demands, "demands", SimulationError)
    n = as_count_array(reservations, "reservations", SimulationError)
    if d.ndim != 1 or n.ndim != 1 or d.size != n.size:
        raise SimulationError(
            "demands and reservations must be 1-D arrays of equal length"
        )
    if np.any(d < 0) or np.any(n < 0):
        raise SimulationError("demands and reservations must be non-negative")
    horizon = d.size
    period = model.period
    if kind is not FastPolicyKind.KEEP_RESERVED:
        validate_phi(phi)
    validate_threshold_scale(threshold_scale)
    if clearing is not None and not isinstance(clearing, ClearingModel):
        raise SimulationError(
            f"clearing must be a ClearingModel or None, got "
            f"{type(clearing).__name__}"
        )
    if cancellation is not None and not isinstance(cancellation, CancellationModel):
        raise SimulationError(
            f"cancellation must be a CancellationModel or None, got "
            f"{type(cancellation).__name__}"
        )

    decision_age = round(phi * period)
    beta = break_even_working_hours(model.plan, model.selling_discount, phi)

    # Active-reservation timelines: physical for costs, effective (with the
    # pseudocode's history rewrites) for decisions.
    r_physical = np.zeros(horizon, dtype=np.int64)
    r_effective = np.zeros(horizon, dtype=np.int64)
    for start in np.flatnonzero(n):
        end = min(int(start) + period, horizon)
        r_physical[start:end] += n[start]
        r_effective[start:end] += n[start]

    sales: list[FastSale] = []
    listings: list[FastListing] = []
    # Cleared listings as (clear_hour, creation_seq, income): income is
    # accumulated in clearing order, matching the streaming tracker's
    # book-at-clear-hour order; in the instant limit every delay is 0 so
    # this collapses to today's decision-order accumulation.
    cleared_entries: "list[tuple[int, int, float]]" = []
    income = 0.0
    evaluate = (
        kind is not FastPolicyKind.KEEP_RESERVED
        and 0 < decision_age < period
    )
    clear_profile: "ClearingProfile | None" = None
    clear_rng: "np.random.Generator | None" = None
    if clearing is not None and evaluate:
        clear_profile = clearing.profile(
            model.selling_discount, period, decision_age
        )
        clear_rng = clearing.stream(clearing_key)
    if evaluate:
        remaining_fraction = 1.0 - decision_age / period
        per_sale_income = model.sale_income(remaining_fraction)
        # The pseudocode recomputes the ``l`` running sum over the
        # effective schedule ``n_k`` with a fresh cumsum at every decision
        # hour. But its ``n_k`` decrements only ever touch index ``t0``,
        # at hour ``t0 + decision_age`` — strictly after every window
        # ``(t0', t')`` with ``t0' < t0`` has closed and strictly before
        # any window with ``t0' > t0`` opens reads below ``t0' + 1`` — so
        # inside any window the effective schedule equals the original
        # ``n`` and the whole family of per-hour cumulative sums collapses
        # into one prefix sum computed once per run.
        n_prefix = np.concatenate(([0], np.cumsum(n)))
        for t in range(decision_age, horizon):
            t0 = t - decision_age
            batch = int(n[t0])
            if batch == 0:
                continue  # "no need to make decisions at this moment"
            window = slice(t0, t)
            l_values = n_prefix[t0 + 1:t + 1] - n_prefix[t0 + 1]
            for i in range(1, batch + 1):  # the pseudocode's instance loop
                free = (
                    r_effective[window] - d[window] - i + 1 > l_values
                )
                working = decision_age - int(np.count_nonzero(free))
                if kind is FastPolicyKind.ONLINE:
                    sell = working < threshold_scale * beta
                else:  # ALL_SELLING
                    sell = True
                if not sell:
                    continue
                end = min(t0 + period, horizon)
                r_effective[t0:end] -= 1  # history rewrite (lines 17-21)
                sales.append(
                    FastSale(
                        reserved_at=t0, batch_index=i, hour=t, working_hours=working
                    )
                )
                if clear_profile is None:
                    r_physical[t:end] -= 1  # future: the unit stops serving
                    income += per_sale_income
                    continue
                # Clearing: the decision opened a listing. The unit keeps
                # serving (and billing) until the drawn clearing hour; a
                # draw of the full window means it never clears.
                delay = clear_profile.sample_delay(clear_rng.random())
                seq = len(listings)
                if delay < clear_profile.window:
                    clear_at = t + delay
                    if clear_at < horizon:
                        r_physical[clear_at:end] -= 1
                        clear_fraction = 1.0 - (clear_at - t0) / period
                        sale_value = (
                            (1.0 - model.marketplace_fee)
                            * float(clear_profile.discounts[delay])
                            * clear_fraction
                            * model.big_r
                        )
                        cleared_entries.append((clear_at, seq, sale_value))
                        listings.append(
                            FastListing(
                                reserved_at=t0,
                                batch_index=i,
                                listed_at=t,
                                delay=delay,
                                cleared_at=clear_at,
                                outcome="cleared",
                                income=sale_value,
                            )
                        )
                    else:
                        listings.append(
                            FastListing(
                                reserved_at=t0,
                                batch_index=i,
                                listed_at=t,
                                delay=delay,
                                cleared_at=None,
                                outcome="open",
                                income=0.0,
                            )
                        )
                else:
                    expire_at = t + clear_profile.window
                    listings.append(
                        FastListing(
                            reserved_at=t0,
                            batch_index=i,
                            listed_at=t,
                            delay=delay,
                            cleared_at=None,
                            outcome="expired" if expire_at < horizon else "open",
                            income=0.0,
                        )
                    )
        for _clear_at, _seq, sale_value in sorted(cleared_entries):
            income += sale_value

    rebuys: "tuple[Rebuy, ...]" = ()
    rebuy_cost = 0.0
    if cancellation is not None and evaluate:
        units: "list[SoldUnit]" = []
        if clear_profile is None:
            for sale in sales:
                units.append(
                    SoldUnit(
                        reserved_at=sale.reserved_at,
                        watch_from=sale.hour,
                        term_end=min(sale.reserved_at + period, horizon),
                    )
                )
        else:
            for listing in listings:
                if listing.outcome == "cleared":
                    units.append(
                        SoldUnit(
                            reserved_at=listing.reserved_at,
                            watch_from=listing.cleared_at,
                            term_end=min(listing.reserved_at + period, horizon),
                        )
                    )
        outcome = apply_rebuys(d, r_physical, units, period, model, cancellation)
        r_physical = outcome.r_after
        rebuys = outcome.rebuys
        rebuy_cost = outcome.rebuy_cost

    on_demand = np.maximum(d - r_physical, 0)
    if model.fee_mode is HourlyFeeMode.ACTIVE:
        billed_hours = int(r_physical.sum())
    else:
        billed_hours = int(np.minimum(d, r_physical).sum())
    breakdown = CostBreakdown(
        on_demand=float(on_demand.sum()) * model.p,
        upfront=float(n.sum()) * model.big_r,
        reserved_hourly=billed_hours * model.alpha * model.p,
        sale_income=income,
        rebuy=rebuy_cost,
    )
    return FastResult(
        breakdown=breakdown,
        sales=tuple(sales),
        on_demand=on_demand,
        r_physical=r_physical,
        listings=tuple(listings),
        rebuys=rebuys,
    )
