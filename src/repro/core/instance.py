"""Reserved-instance lifecycle: reservation, activity, sale.

A :class:`ReservedInstance` records one reservation's timing — when it was
bought, its period, its position within the batch of reservations made the
same hour (Algorithm 1 iterates ``i = 1..n_t`` over such batches), and
when (if ever) it was sold in the marketplace.

Time is discrete in hours. An instance reserved at hour ``t0`` with period
``T`` is active during the half-open range ``[t0, t0 + T)``. A sale at
hour ``ts`` takes effect at the *start* of that hour: the instance is
active during ``[t0, ts)``, pays the discounted hourly fee for exactly
``ts − t0`` hours, and the sale income is proportional to the remaining
fraction ``(t0 + T − ts)/T`` — so a sale at age φT yields exactly the
paper's ``(1 − φ)·a·R`` (cf. Eq. (15): the instance serves no demand after
the decision spot).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class ReservedInstance:
    """One reservation and its (possible) sale.

    Parameters
    ----------
    instance_id:
        Unique id within a simulation, assigned in reservation order.
    reserved_at:
        Hour the reservation was made (start of activity).
    period:
        Reservation period ``T`` in hours.
    batch_offset:
        Zero-based position among the reservations made the same hour;
        Algorithm 1's loop index ``i`` equals ``batch_offset + 1``.
    """

    instance_id: int
    reserved_at: int
    period: int
    batch_offset: int = 0
    sold_at: "int | None" = field(default=None)

    def __post_init__(self) -> None:
        if self.reserved_at < 0:
            raise SimulationError(f"reserved_at must be >= 0, got {self.reserved_at!r}")
        if self.period <= 0:
            raise SimulationError(f"period must be positive, got {self.period!r}")
        if self.batch_offset < 0:
            raise SimulationError(f"batch_offset must be >= 0, got {self.batch_offset!r}")
        if self.sold_at is not None:
            self._validate_sale_hour(self.sold_at)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    @property
    def expires_at(self) -> int:
        """First hour the reservation would no longer be active."""
        return self.reserved_at + self.period

    @property
    def end_of_activity(self) -> int:
        """First hour the instance is inactive: sale hour or expiry."""
        return self.expires_at if self.sold_at is None else self.sold_at

    @property
    def is_sold(self) -> bool:
        return self.sold_at is not None

    def is_active(self, hour: int) -> bool:
        """Whether the instance can serve demand during ``hour``."""
        return self.reserved_at <= hour < self.end_of_activity

    def age(self, hour: int) -> int:
        """Hours elapsed since reservation at the start of ``hour``."""
        return hour - self.reserved_at

    def elapsed_fraction(self, hour: int) -> float:
        """The paper's ε = t/T at the start of ``hour``."""
        return self.age(hour) / self.period

    def remaining_fraction(self, hour: int) -> float:
        """The paper's ``rp``: fraction of the period still ahead."""
        return 1.0 - self.elapsed_fraction(hour)

    def active_hours(self) -> int:
        """Hours the instance was (or will be) active: until sale or expiry."""
        return self.end_of_activity - self.reserved_at

    def decision_hour(self, phi: float) -> int:
        """The hour at which an ``A_{φT}`` policy evaluates this instance.

        The decision spot is age ``round(φ·T)`` (exact for the paper's
        φ ∈ {1/4, 1/2, 3/4} whenever ``T`` is a multiple of 4).
        """
        if not 0.0 < phi < 1.0:
            raise SimulationError(f"phi must lie in (0, 1), got {phi!r}")
        return self.reserved_at + round(phi * self.period)

    # ------------------------------------------------------------------
    # Sale
    # ------------------------------------------------------------------

    def _validate_sale_hour(self, hour: int) -> None:
        if not self.reserved_at < hour < self.expires_at:
            raise SimulationError(
                f"instance {self.instance_id} can only be sold strictly within "
                f"({self.reserved_at}, {self.expires_at}), got hour {hour!r}"
            )

    def sell(self, hour: int) -> float:
        """Mark the instance sold at ``hour``; returns the remaining fraction.

        Raises
        ------
        SimulationError
            If the instance is already sold or the hour is outside the
            open interval ``(reserved_at, expires_at)``.
        """
        if self.is_sold:
            raise SimulationError(
                f"instance {self.instance_id} was already sold at hour {self.sold_at}"
            )
        self._validate_sale_hour(hour)
        self.sold_at = hour
        return self.remaining_fraction(hour)
