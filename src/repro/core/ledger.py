"""Reservation ledger: active counts, batches, and Algorithm 1's bookkeeping.

The ledger owns every :class:`~repro.core.instance.ReservedInstance` of a
simulation and maintains three hour-indexed arrays:

* ``r_physical`` — active reservations per hour for *cost* purposes
  (Eq. (1)'s ``r_t``): a sale removes the instance from its sale hour
  onward, never retroactively (fees already paid stay paid).
* ``r_effective`` — active reservations per hour for *decision* purposes.
  Algorithm 1 (lines 17–21) erases a sold instance from the whole
  timeline, history included, so later instances' working-time
  computations treat it as never having existed.
* ``n_effective`` — reservations made per hour, likewise erased on sale;
  Algorithm 1's ``l`` (the count of instances with more remaining time
  than the one under evaluation) is a running sum of this array.

The working-time rule (Algorithm 1 lines 7–14): within the decision
window, instance ``i`` of a batch (1-based offset) is *free* at hour ``j``
iff ``r_j − d_j − i + 1 > l_j`` — the idle pool at ``j`` is deep enough to
cover all newer instances plus the instance's earlier batch mates, because
demand is assigned to reservations with the least remaining period first
(Section IV-B's working sequence).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import ReservedInstance
from repro.errors import SimulationError


class ReservationLedger:
    """Tracks reservations, sales, and Algorithm 1's decision arrays."""

    def __init__(self, horizon: int, period: int, demands: np.ndarray) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon!r}")
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        demands = np.asarray(demands)
        if demands.ndim != 1 or demands.size < horizon:
            raise SimulationError(
                f"demands must be a 1-D array covering at least {horizon} hours"
            )
        self.horizon = horizon
        self.period = period
        self.demands = demands[:horizon].astype(np.int64)
        self.r_physical = np.zeros(horizon, dtype=np.int64)
        self.r_effective = np.zeros(horizon, dtype=np.int64)
        self.n_effective = np.zeros(horizon, dtype=np.int64)
        self.instances: list[ReservedInstance] = []
        self._batch_sizes = np.zeros(horizon, dtype=np.int64)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reserve(self, hour: int, count: int = 1) -> list[ReservedInstance]:
        """Reserve ``count`` new instances at ``hour``; returns them in
        batch order (their ``batch_offset`` continues any earlier batch
        made the same hour)."""
        if not 0 <= hour < self.horizon:
            raise SimulationError(
                f"reservation hour must lie in [0, {self.horizon}), got {hour!r}"
            )
        if count <= 0:
            raise SimulationError(f"count must be positive, got {count!r}")
        created = []
        for _ in range(count):
            instance = ReservedInstance(
                instance_id=len(self.instances),
                reserved_at=hour,
                period=self.period,
                batch_offset=int(self._batch_sizes[hour]),
            )
            self._batch_sizes[hour] += 1
            self.instances.append(instance)
            created.append(instance)
        end = min(hour + self.period, self.horizon)
        self.r_physical[hour:end] += count
        self.r_effective[hour:end] += count
        self.n_effective[hour] += count
        return created

    def sell(self, instance: ReservedInstance, hour: int) -> float:
        """Sell ``instance`` at the start of ``hour``; returns the remaining
        fraction of its period (the paper's ``rp``).

        Physically the instance stops serving (and being billed) from
        ``hour``; for future decisions it is erased from its entire span
        (Algorithm 1 lines 17–21).
        """
        if instance is not self.instances[instance.instance_id]:
            raise SimulationError(
                f"instance {instance.instance_id} does not belong to this ledger"
            )
        remaining = instance.sell(hour)  # validates the hour, marks sold
        physical_end = min(instance.expires_at, self.horizon)
        self.r_physical[hour:physical_end] -= 1
        self.r_effective[instance.reserved_at:physical_end] -= 1
        self.n_effective[instance.reserved_at] -= 1
        return remaining

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def active_count(self, hour: int) -> int:
        """Eq. (1)'s ``r_t``: physically active reservations at ``hour``."""
        return int(self.r_physical[hour])

    def on_demand_needed(self, hour: int) -> int:
        """Eq. (1)'s ``o_t`` = max(0, d_t − r_t)."""
        return max(0, int(self.demands[hour]) - self.active_count(hour))

    def busy_count(self, hour: int) -> int:
        """Reservations actually serving demand at ``hour``: min(d_t, r_t)."""
        return min(int(self.demands[hour]), self.active_count(hour))

    def working_hours(self, instance: ReservedInstance, end_hour: int) -> int:
        """Algorithm 1's working time ``w`` over ``[reserved_at, end_hour)``.

        Uses the *effective* (history-rewritten) arrays, exactly as the
        paper's pseudocode does.
        """
        start = instance.reserved_at
        if not start < end_hour <= self.horizon:
            raise SimulationError(
                f"end_hour must lie in ({start}, {self.horizon}], got {end_hour!r}"
            )
        window = slice(start, end_hour)
        # l_j = reservations made strictly after `start`, up to and
        # including hour j (Algorithm 1 line 8's running sum).
        later = self.n_effective[start + 1:end_hour]
        l_values = np.concatenate(([0], np.cumsum(later)))
        idle_depth = (
            self.r_effective[window]
            - self.demands[window]
            - instance.batch_offset  # the paper's i − 1
        )
        free_hours = int(np.count_nonzero(idle_depth > l_values))
        return (end_hour - start) - free_hours

    def busy_profile(self, instance: ReservedInstance, end_hour: "int | None" = None) -> np.ndarray:
        """Boolean per-hour busy profile of ``instance`` under the same
        effective-allocation rule, over ``[reserved_at, end_hour)``.

        Used by the offline optimum, which needs *where* the working time
        falls, not just its total.
        """
        if end_hour is None:
            end_hour = min(instance.expires_at, self.horizon)
        start = instance.reserved_at
        if not start < end_hour <= self.horizon:
            raise SimulationError(
                f"end_hour must lie in ({start}, {self.horizon}], got {end_hour!r}"
            )
        window = slice(start, end_hour)
        later = self.n_effective[start + 1:end_hour]
        l_values = np.concatenate(([0], np.cumsum(later)))
        idle_depth = (
            self.r_effective[window]
            - self.demands[window]
            - instance.batch_offset
        )
        return ~(idle_depth > l_values)

    def unsold_instances(self) -> list[ReservedInstance]:
        """All instances not (yet) sold, in reservation order."""
        return [instance for instance in self.instances if not instance.is_sold]

    # ------------------------------------------------------------------
    # Physical utilisation reporting
    # ------------------------------------------------------------------

    def physical_busy_hours(self) -> dict[int, int]:
        """Actual busy hours per instance under least-remaining-first
        assignment against the *physical* timeline (sold instances serve
        until their sale hour). One O(horizon × pool) pass; reporting
        only — decisions use :meth:`working_hours`.
        """
        busy: dict[int, int] = {instance.instance_id: 0 for instance in self.instances}
        for hour in range(self.horizon):
            active = [
                instance
                for instance in self.instances
                if instance.is_active(hour)
            ]
            if not active:
                continue
            # Least remaining period first == earliest reservation first.
            # Within a same-hour batch Algorithm 1's freeness test
            # (r - d - i + 1 > l) marks *lower* i free first, i.e. work
            # goes to the later batch entries first — mirror that here.
            active.sort(key=lambda item: (item.reserved_at, -item.batch_offset))
            for instance in active[: int(self.demands[hour])]:
                busy[instance.instance_id] += 1
        return busy
