"""The optimal offline seller (the paper's benchmark ``OPT``).

Knowing the whole demand sequence, the offline seller picks, for each
reserved instance, the sale hour (or "never") minimising the *true*
Eq. (1) total cost. Selling interacts across instances through
``o_t = max(0, d_t − r_t)``: a sold instance's demand share falls to any
remaining idle reservation before it spills to on-demand. The exact
marginal cost of selling one instance at hour ``ts``, holding every
other decision fixed, is therefore::

    delta(ts) = p · #{ j in [ts, end) : d_j >= r_j }      (spill hours)
              − saved reserved fees over [ts, end)
              − income(ts)

where ``r`` is the current active-count timeline *including* the
instance. All candidate hours for one instance are evaluated in one
vectorised suffix-sum pass, and the optimiser runs coordinate descent
(repeated single-instance re-optimisation) until no move improves —
every accepted move strictly lowers the true total cost, so it
terminates.

``offline_decisions`` exposes the first pass against the keep-everything
world (the per-instance benchmark the paper's proofs reason about), and
:func:`optimal_sale_hour` remains the single-profile primitive used in
proof-level analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.core.account import CostModel, HourlyFeeMode
from repro.core.instance import ReservedInstance
from repro.core.policies import POLICY_OPT, ScriptedSellingPolicy
from repro.core.simulator import SimulationResult, run_policy
from repro.errors import SimulationError
from repro.workload.base import TraceLike, as_trace


@dataclass(frozen=True)
class OfflineDecision:
    """The offline choice for one instance (first pass, keep-world)."""

    instance_id: int
    sell_hour: "int | None"
    cost_delta: float  # total-cost change versus keeping (negative = sell)


def optimal_sale_hour(
    busy: np.ndarray,
    instance: ReservedInstance,
    horizon: int,
    model: CostModel,
    min_age: int = 1,
) -> "tuple[int | None, float]":
    """Best sale hour for one *isolated* instance given its busy profile.

    This is the single-instance primitive of the proofs (Section IV-A):
    every busy hour after the sale goes to on-demand. For fleet-level
    optimisation use :func:`offline_optimal_schedule`, which accounts
    for pool slack. ``min_age`` restricts candidates to ``age >=
    min_age`` (the proofs take ε ∈ [φ, 1]). Returns ``(None, 0.0)`` when
    keeping is optimal.
    """
    if min_age < 1:
        raise SimulationError(f"min_age must be >= 1, got {min_age!r}")
    start = instance.reserved_at
    end = min(instance.expires_at, horizon)
    length = end - start
    if busy.shape != (length,):
        raise SimulationError(
            f"busy profile must cover [{start}, {end}) "
            f"({length} hours), got shape {busy.shape}"
        )
    if length <= min_age:
        return None, 0.0
    best_age, best_delta = _best_sale_age(
        spill=busy.astype(np.int64),
        length=length,
        period=instance.period,
        model=model,
        min_age=min_age,
    )
    if best_age is None:
        return None, 0.0
    return start + best_age, best_delta


def _best_sale_age(
    spill: np.ndarray,
    length: int,
    period: int,
    model: CostModel,
    min_age: int,
) -> "tuple[int | None, float]":
    """Vectorised argmin of delta(age) over ``age in [min_age, length)``.

    ``spill`` is the per-hour indicator (0/1) of "selling costs an
    on-demand hour here"; for the isolated primitive it is the busy
    profile, for the fleet optimiser it is ``d >= r``.
    """
    ages = np.arange(min_age, length)
    if ages.size == 0:
        return None, 0.0
    # spill_after[k] = spill hours in [age k, length)
    spill_after = np.concatenate((np.cumsum(spill[::-1])[::-1], [0]))
    remaining_fractions = 1.0 - ages / period
    incomes = (
        (1.0 - model.marketplace_fee)
        * model.selling_discount
        * remaining_fractions
        * model.big_r
    )
    if model.fee_mode is HourlyFeeMode.ACTIVE:
        saved_fees = model.alpha * model.p * (length - ages)
        extra_on_demand = model.p * spill_after[ages]
    else:
        # Usage billing: the pool's billed hours drop by one exactly at
        # spill hours, and those same hours move to on-demand.
        saved_fees = model.alpha * model.p * spill_after[ages]
        extra_on_demand = model.p * spill_after[ages]
    deltas = -incomes - saved_fees + extra_on_demand
    best_index = int(np.argmin(deltas))
    best_delta = float(deltas[best_index])
    if best_delta >= 0.0 or math.isclose(best_delta, 0.0, abs_tol=1e-12):
        return None, 0.0
    return int(ages[best_index]), best_delta


class _FleetOptimizer:
    """Coordinate descent over per-instance sale hours, exact marginals."""

    def __init__(self, demands: np.ndarray, reservations: np.ndarray,
                 model: CostModel, min_age: int) -> None:
        if min_age < 1:
            raise SimulationError(f"min_age must be >= 1, got {min_age!r}")
        self.d = demands
        self.model = model
        self.min_age = min_age
        self.horizon = demands.size
        self.period = model.period
        # Instance spans in reservation order (matching ledger ids).
        self.spans: list[tuple[int, int]] = []
        for hour in np.flatnonzero(reservations):
            for _ in range(int(reservations[hour])):
                self.spans.append(
                    (int(hour), min(int(hour) + self.period, self.horizon))
                )
        # Active-count timeline under the current schedule (start: keep).
        self.r = np.zeros(self.horizon, dtype=np.int64)
        for start, end in self.spans:
            self.r[start:end] += 1
        self.sales: dict[int, int] = {}

    def _evaluate(self, index: int) -> "tuple[int | None, float]":
        """Best sale hour for one instance, others held fixed."""
        start, end = self.spans[index]
        length = end - start
        if length <= self.min_age:
            return None, 0.0
        current = self.sales.get(index)
        if current is not None:  # restore to "kept" for the evaluation
            self.r[current:end] += 1
        window = slice(start, end)
        spill = (self.d[window] >= self.r[window]).astype(np.int64)
        best_age, best_delta = _best_sale_age(
            spill=spill, length=length, period=self.period,
            model=self.model, min_age=self.min_age,
        )
        if current is not None:  # undo the restoration
            self.r[current:end] -= 1
        if best_age is None:
            return None, best_delta
        return start + best_age, best_delta

    def _apply(self, index: int, sell_hour: "int | None") -> None:
        start, end = self.spans[index]
        current = self.sales.get(index)
        if current == sell_hour:
            return
        if current is not None:
            self.r[current:end] += 1
            del self.sales[index]
        if sell_hour is not None:
            self.r[sell_hour:end] -= 1
            self.sales[index] = sell_hour

    def optimise(self, max_passes: int) -> dict[int, int]:
        for _ in range(max_passes):
            changed = False
            for index in range(len(self.spans)):
                previous = self.sales.get(index)
                sell_hour, _ = self._evaluate(index)
                if sell_hour != previous:
                    self._apply(index, sell_hour)
                    changed = True
            if not changed:
                break
        return dict(self.sales)

    def seed(self, sales: dict[int, int]) -> None:
        """Initialise the schedule before optimising (multi-start)."""
        for index, hour in sales.items():
            self._apply(index, hour)

    def schedule_cost(self, sales: dict[int, int]) -> float:
        """True Eq. (1) total cost of an arbitrary schedule."""
        r = np.zeros(self.horizon, dtype=np.int64)
        income = 0.0
        for index, (start, end) in enumerate(self.spans):
            stop = sales.get(index, end)
            r[start:stop] += 1
            if index in sales:
                age = sales[index] - start
                income += self.model.sale_income(1.0 - age / self.period)
        on_demand = np.maximum(self.d - r, 0)
        if self.model.fee_mode is HourlyFeeMode.ACTIVE:
            billed = int(r.sum())
        else:
            billed = int(np.minimum(self.d, r).sum())
        return (
            float(on_demand.sum()) * self.model.p
            + len(self.spans) * self.model.big_r
            + billed * self.model.alpha * self.model.p
            - income
        )


def _policy_start_schedules(
    demands: np.ndarray, reservations: np.ndarray, model: CostModel
) -> list[dict[int, int]]:
    """Seed schedules taken from the online policies' own sell sets.

    Starting the descent from each policy's schedule guarantees the
    returned benchmark is at least as cheap as that policy (descent
    never worsens its seed) — the dominance property the experiments
    rely on becomes structural rather than empirical.
    """
    from repro.core.fastsim import FastPolicyKind, run_fast

    id_base = np.concatenate(([0], np.cumsum(reservations)))
    starts = []
    for phi in (0.25, 0.5, 0.75):
        for kind in (FastPolicyKind.ONLINE, FastPolicyKind.ALL_SELLING):
            result = run_fast(demands, reservations, model, phi=phi, kind=kind)
            starts.append(
                {
                    int(id_base[sale.reserved_at]) + sale.batch_index - 1: sale.hour
                    for sale in result.sales
                }
            )
    return starts


def offline_optimal_schedule(
    demands: TraceLike,
    reservations: ArrayLike,
    model: CostModel,
    min_age: int = 1,
    max_passes: int = 8,
    extra_starts: "list[dict[int, int]] | None" = None,
    policy_starts: bool = True,
) -> dict[int, int]:
    """Compute the offline sell schedule: instance id → sale hour.

    Coordinate descent with multi-start. Single-instance moves cannot
    always escape a local optimum when several sales only pay off
    jointly, so the descent runs from several seeds and keeps the best:

    * keep-everything and sell-everything-at-the-earliest-hour;
    * (``policy_starts``) each online policy's and each All-Selling
      benchmark's sell set — making the result at least as cheap as
      every one of them *by construction*;
    * any caller-provided ``extra_starts``.

    Each accepted move strictly improves the true Eq. (1) cost;
    ``max_passes`` bounds the sweeps (convergence is typically 2-3).
    The result is certified globally optimal on small fleets by the
    brute-force cross-check in the property suite; on larger fleets it
    is a (near-)optimal feasible benchmark.
    """
    trace = as_trace(demands)
    horizon = len(trace)
    schedule = np.asarray(reservations).astype(np.int64)
    if schedule.size != horizon:
        raise SimulationError(
            f"reservations cover {schedule.size} hours, demands {horizon}"
        )
    if max_passes < 1:
        raise SimulationError(f"max_passes must be >= 1, got {max_passes!r}")

    def solve(start: "dict[int, int]") -> "tuple[dict[int, int], float]":
        optimizer = _FleetOptimizer(trace.values, schedule, model, min_age)
        optimizer.seed(start)
        sales = optimizer.optimise(max_passes)
        return sales, optimizer.schedule_cost(sales)

    reference = _FleetOptimizer(trace.values, schedule, model, min_age)
    sell_early = {
        index: start + min_age
        for index, (start, end) in enumerate(reference.spans)
        if end - start > min_age
    }
    starts: list[dict[int, int]] = [sell_early]
    if policy_starts:
        starts.extend(_policy_start_schedules(trace.values, schedule, model))
    if extra_starts:
        starts.extend(extra_starts)

    def feasible(start: dict[int, int]) -> dict[int, int]:
        """Drop seed entries violating min_age or falling outside spans,
        so a policy seed remains usable under a restricted benchmark."""
        cleaned = {}
        for index, hour in start.items():
            if not 0 <= index < len(reference.spans):
                continue
            span_start, span_end = reference.spans[index]
            if span_start + min_age <= hour < span_end:
                cleaned[index] = hour
        return cleaned

    best_sales, best_cost = solve({})
    for start in starts:
        try:
            sales, cost = solve(feasible(start))
        except SimulationError:
            continue  # a start the optimiser cannot represent — skip it
        if cost < best_cost - 1e-12:
            best_sales, best_cost = sales, cost
    return best_sales


def run_offline_optimal(
    demands: TraceLike,
    reservations: ArrayLike,
    model: CostModel,
    min_age: int = 1,
    max_passes: int = 8,
    name: str = POLICY_OPT,
) -> SimulationResult:
    """Full offline-optimal run, cost-accounted by the reference simulator."""
    sales = offline_optimal_schedule(
        demands, reservations, model, min_age=min_age, max_passes=max_passes
    )
    policy = ScriptedSellingPolicy(sales, name=name)
    return run_policy(demands, reservations, model, policy)


def exhaustive_optimal_schedule(
    demands: TraceLike,
    reservations: ArrayLike,
    model: CostModel,
    min_age: int = 1,
    max_instances: int = 6,
) -> "tuple[dict[int, int], float]":
    """Brute-force joint optimum for *small* fleets (validation tool).

    Enumerates every combination of per-instance sale hours (including
    "keep") and returns the cheapest schedule with its total cost. Used
    by the tests to certify that the coordinate-descent optimiser finds
    the true optimum; guarded by ``max_instances`` because the search is
    exponential.
    """
    trace = as_trace(demands)
    horizon = len(trace)
    schedule = np.asarray(reservations).astype(np.int64)
    if schedule.size != horizon:
        raise SimulationError(
            f"reservations cover {schedule.size} hours, demands {horizon}"
        )
    optimizer = _FleetOptimizer(trace.values, schedule, model, min_age)
    spans = optimizer.spans
    if len(spans) > max_instances:
        raise SimulationError(
            f"exhaustive search is limited to {max_instances} instances, "
            f"got {len(spans)}"
        )
    d = trace.values
    n_total = int(schedule.sum())
    upfront_total = n_total * model.big_r

    def total_cost(sales: dict[int, int]) -> float:
        r = np.zeros(horizon, dtype=np.int64)
        income = 0.0
        for index, (start, end) in enumerate(spans):
            stop = sales.get(index, end)
            r[start:stop] += 1
            if index in sales:
                age = sales[index] - start
                income += model.sale_income(1.0 - age / model.period)
        on_demand = np.maximum(d - r, 0)
        if model.fee_mode is HourlyFeeMode.ACTIVE:
            billed = int(r.sum())
        else:
            billed = int(np.minimum(d, r).sum())
        return (
            float(on_demand.sum()) * model.p
            + upfront_total
            + billed * model.alpha * model.p
            - income
        )

    import itertools

    options_per_instance = []
    for start, end in spans:
        candidates: list["int | None"] = [None]
        candidates.extend(range(start + min_age, end))
        options_per_instance.append(candidates)

    best_sales: dict[int, int] = {}
    best_cost = total_cost({})
    for combo in itertools.product(*options_per_instance):
        sales = {
            index: hour for index, hour in enumerate(combo) if hour is not None
        }
        if not sales:
            continue
        cost = total_cost(sales)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_sales = sales
    return best_sales, best_cost


def offline_decisions(
    demands: TraceLike,
    reservations: ArrayLike,
    model: CostModel,
    min_age: int = 1,
) -> list[OfflineDecision]:
    """Per-instance offline decisions against the keep-world (the proofs'
    per-instance benchmark), with their exact cost deltas."""
    trace = as_trace(demands)
    schedule = np.asarray(reservations).astype(np.int64)
    if schedule.size != len(trace):
        raise SimulationError(
            f"reservations cover {schedule.size} hours, demands {len(trace)}"
        )
    optimizer = _FleetOptimizer(trace.values, schedule, model, min_age)
    decisions = []
    for index in range(len(optimizer.spans)):
        sell_hour, delta = optimizer._evaluate(index)
        decisions.append(
            OfflineDecision(instance_id=index, sell_hour=sell_hour, cost_delta=delta)
        )
    return decisions
