"""Selling policies: the paper's three online algorithms and baselines.

A policy answers two questions per reserved instance:

1. *When* to evaluate it — a decision fraction φ of the period (or never).
2. *Whether* to sell — given the instance's measured working time during
   its first φT hours.

The paper's algorithms ``A_{3T/4}``, ``A_{T/2}`` and ``A_{T/4}`` share one
rule (Algorithm 1/2): sell iff the working time is below the break-even
point β = φ·a·R/(p(1−α)). The evaluation's two benchmarks are
:class:`KeepReservedPolicy` (never sell) and :class:`AllSellingPolicy`
(always sell at the decision spot). :class:`RandomizedSellingPolicy`
implements the paper's future-work sketch: each instance is evaluated at
a random spot.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.breakeven import (
    PHI_3T4,
    PHI_T2,
    PHI_T4,
    break_even_working_hours,
    validate_phi,
)
from repro.core.clearing import (
    SCHEDULE_ADAPTIVE,
    SCHEDULE_LADDER,
    ClearingModel,
    DiscountSchedule,
)
from repro.core.cancellation import CancellationModel
from repro.core.instance import ReservedInstance
from repro.core.randomized import SpotDistribution
from repro.core.streams import stream as _stream
from repro.core.streams import validate_seed
from repro.errors import PolicyError
from repro.pricing.plan import PricingPlan

# ----------------------------------------------------------------------
# Canonical policy names
# ----------------------------------------------------------------------
# Every experiment output, CSV column, advisory response and report keys
# policies by these exact strings. They live here — next to the policy
# classes that own the naming scheme — and everything else imports them
# (lint rule REP011 flags hard-coded copies elsewhere).

#: The paper's three online algorithms.
POLICY_A_3T4 = "A_{3T/4}"
POLICY_A_T2 = "A_{T/2}"
POLICY_A_T4 = "A_{T/4}"
#: The two benchmarks of Section VI-B.
POLICY_KEEP = "Keep-Reserved"
POLICY_ALL_3T4 = "All-Selling@3T/4"
POLICY_ALL_T2 = "All-Selling@T/2"
POLICY_ALL_T4 = "All-Selling@T/4"
#: The offline optimum.
POLICY_OPT = "OPT"
#: The randomized §VII policy (default name; spec-built instances may
#: carry a parameterised name derived from this prefix).
POLICY_RANDOMIZED = "Randomized"
#: The cancellation-aware (sell-then-rebuy) family at the paper's spots.
POLICY_CANCEL_3T4 = "Cancel@3T/4"
POLICY_CANCEL_T2 = "Cancel@T/2"
POLICY_CANCEL_T4 = "Cancel@T/4"

#: The three online algorithms with their decision fractions.
ONLINE_POLICIES: "dict[str, float]" = {
    POLICY_A_3T4: PHI_3T4,
    POLICY_A_T2: PHI_T2,
    POLICY_A_T4: PHI_T4,
}

#: The All-Selling benchmark at each spot.
ALL_SELLING_POLICIES: "dict[str, float]" = {
    POLICY_ALL_3T4: PHI_3T4,
    POLICY_ALL_T2: PHI_T2,
    POLICY_ALL_T4: PHI_T4,
}

#: The cancellation-aware family at each paper spot.
CANCELLATION_POLICIES: "dict[str, float]" = {
    POLICY_CANCEL_3T4: PHI_3T4,
    POLICY_CANCEL_T2: PHI_T2,
    POLICY_CANCEL_T4: PHI_T4,
}


@dataclass(frozen=True)
class DecisionContext:
    """Everything a policy may consult when deciding on one instance."""

    plan: PricingPlan
    selling_discount: float
    phi: float
    beta: float
    decision_hour: int
    instance: ReservedInstance


class SellingPolicy(abc.ABC):
    """Interface of all selling policies."""

    #: Human-readable name used in reports and result tables.
    name: str = "selling-policy"

    @abc.abstractmethod
    def decision_fraction(self, instance: ReservedInstance) -> "float | None":
        """φ at which ``instance`` is evaluated, or None to never evaluate."""

    @abc.abstractmethod
    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        """Decide given the working time during the first φT hours."""

    def decision_hour(self, instance: ReservedInstance) -> "int | None":
        """Hour at which ``instance`` is evaluated (scheduling primitive).

        Defaults to ``reserved_at + round(φ·T)``; policies that need an
        exact hour (e.g. the scripted replay of an offline optimum) may
        override this directly.
        """
        phi = self.decision_fraction(instance)
        if phi is None:
            return None
        return instance.decision_hour(phi)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class OnlineSellingPolicy(SellingPolicy):
    """The paper's deterministic online algorithm ``A_{φT}``.

    Sells an instance at age φT iff its working time is strictly below
    the break-even point β = φ·a·R/(p(1−α)) (Algorithm 1 line 15).

    ``threshold_scale`` multiplies β; 1.0 is the paper's rule, other
    values support the sensitivity ablation.
    """

    def __init__(self, phi: float, threshold_scale: float = 1.0) -> None:
        validate_phi(phi)
        if threshold_scale < 0:
            raise PolicyError(f"threshold_scale must be >= 0, got {threshold_scale!r}")
        self.phi = phi
        self.threshold_scale = threshold_scale
        self.name = f"A_{{{self._spot_label(phi)}}}"

    @staticmethod
    def _spot_label(phi: float) -> str:
        named = {PHI_3T4: "3T/4", PHI_T2: "T/2", PHI_T4: "T/4"}
        return named.get(phi, f"{phi:g}T")

    def decision_fraction(self, instance: ReservedInstance) -> float:
        return self.phi

    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        return working_hours < self.threshold_scale * context.beta

    # The paper's three named algorithms -----------------------------------

    @classmethod
    def a_3t4(cls) -> "OnlineSellingPolicy":
        """``A_{3T/4}`` — decide at 3/4 of the period (Section IV)."""
        return cls(PHI_3T4)

    @classmethod
    def a_t2(cls) -> "OnlineSellingPolicy":
        """``A_{T/2}`` — decide at half the period (Section V)."""
        return cls(PHI_T2)

    @classmethod
    def a_t4(cls) -> "OnlineSellingPolicy":
        """``A_{T/4}`` — decide at a quarter of the period (Section V)."""
        return cls(PHI_T4)

    @classmethod
    def paper_policies(cls) -> "list[OnlineSellingPolicy]":
        """The three algorithms in the paper's presentation order."""
        return [cls.a_3t4(), cls.a_t2(), cls.a_t4()]


class ListedSellingPolicy(OnlineSellingPolicy):
    """The break-even rule plus a managed listing-price schedule.

    Promotes the price-cutting sellers of
    :mod:`repro.marketplace.seller` into first-class policies: the
    *sell decision* stays the paper's Algorithm 1/2 at φ (so decision
    sequences — and the reference simulator — are unchanged), while the
    attached :class:`~repro.core.clearing.DiscountSchedule` governs the
    asking discount while the listing waits on the marketplace. Every
    execution layer runs it the same way: pass ``policy.phi`` as the
    decision fraction and ``policy.clearing_model(...)`` as the
    ``clearing=`` argument of ``run_fast`` / ``run_population`` /
    ``run_sweep`` / the serve layer.
    """

    def __init__(
        self,
        phi: float,
        schedule: DiscountSchedule,
        threshold_scale: float = 1.0,
        name: "str | None" = None,
    ) -> None:
        super().__init__(phi, threshold_scale)
        if not isinstance(schedule, DiscountSchedule):
            raise PolicyError(
                f"schedule must be a DiscountSchedule, got {type(schedule).__name__}"
            )
        self.schedule = schedule
        self.name = name if name is not None else f"{self.name}/{schedule.kind}"

    def clearing_model(
        self, liquidity: str = "normal", seed: int = 0, **overrides: object
    ) -> ClearingModel:
        """This policy's clearing process in one liquidity regime."""
        return ClearingModel.for_regime(
            liquidity, seed=seed, schedule=self.schedule, **overrides
        )

    # The promoted marketplace sellers -------------------------------------

    @classmethod
    def adaptive(
        cls,
        phi: float,
        start_discount: float = 1.0,
        floor_discount: float = 0.5,
        decay_per_day: float = 0.05,
    ) -> "ListedSellingPolicy":
        """The promoted ``AdaptiveDiscountSeller``: start near the cap,
        decay toward a floor while unsold."""
        return cls(
            phi,
            DiscountSchedule(
                kind=SCHEDULE_ADAPTIVE,
                start_discount=start_discount,
                floor_discount=floor_discount,
                decay_per_day=decay_per_day,
            ),
        )

    @classmethod
    def ladder(
        cls,
        phi: float,
        rungs: "tuple[float, ...]" = (1.0, 0.85, 0.7),
        step_hours: int = 168,
    ) -> "ListedSellingPolicy":
        """The promoted re-list ladder: step down through ``rungs`` every
        ``step_hours`` open hours, holding the last rung."""
        return cls(
            phi,
            DiscountSchedule(
                kind=SCHEDULE_LADDER, ladder=tuple(rungs), step_hours=step_hours
            ),
        )


class KeepReservedPolicy(SellingPolicy):
    """Benchmark: never sell (the normalisation baseline of Fig. 3/4)."""

    name = POLICY_KEEP

    def decision_fraction(self, instance: ReservedInstance) -> None:
        return None

    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        return False


class AllSellingPolicy(SellingPolicy):
    """Benchmark: sell every instance at the decision spot (Section VI-B)."""

    def __init__(self, phi: float) -> None:
        validate_phi(phi)
        self.phi = phi
        self.name = f"All-Selling@{OnlineSellingPolicy._spot_label(phi)}"

    def decision_fraction(self, instance: ReservedInstance) -> float:
        return self.phi

    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        return True


class RandomizedSellingPolicy(SellingPolicy):
    """The paper's §VII randomized algorithm, production form.

    Each entity (a sweep user, a serve instance) draws its decision
    fraction from ``spots`` — uniformly, or with the given ``weights`` —
    then applies the break-even rule at the drawn spot. The draw is one
    uniform from the shared per-key stream
    (:func:`repro.core.streams.stream` on ``(seed, key)``), inverted
    through the cumulative weights with ``searchsorted`` — exactly the
    clearing model's delay-draw idiom. That contract is what makes the
    per-user engine, the population tensor engine, and a
    killed-and-restored server agree bit-for-bit on every drawn spot;
    the old per-call ``np.random.default_rng((seed, instance_id))``
    construction (pinned by the migration test in
    ``tests/core/test_randomized_production.py``) could not be
    reproduced from a vectorised path and is gone.

    ``spots=(phi,)`` degenerates to the deterministic ``A_{φT}`` rule —
    every draw yields ``phi`` — which the differential tests use as the
    reduction property.
    """

    def __init__(
        self,
        spots: "tuple[float, ...]" = (PHI_T4, PHI_T2, PHI_3T4),
        weights: "tuple[float, ...] | None" = None,
        seed: int = 0,
        name: "str | None" = None,
    ) -> None:
        if not spots:
            raise PolicyError("spots must be a non-empty tuple of decision fractions")
        for phi in spots:
            validate_phi(phi)
        if weights is not None:
            if len(weights) != len(spots):
                raise PolicyError("weights must match spots in length")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise PolicyError("weights must be non-negative and sum to > 0")
            total = float(sum(weights))
            self._probabilities = tuple(w / total for w in weights)
        else:
            self._probabilities = tuple(1.0 / len(spots) for _ in spots)
        self.spots = tuple(float(phi) for phi in spots)
        self.seed = validate_seed(seed)
        # CDF of the spot menu; the last entry is forced to 1.0 so a
        # uniform arbitrarily close to 1 still maps into the menu.
        cumulative = np.cumsum(np.asarray(self._probabilities, dtype=np.float64))
        cumulative[-1] = 1.0
        self._cumulative = cumulative
        self.name = POLICY_RANDOMIZED if name is None else name

    @classmethod
    def from_distribution(
        cls,
        distribution: SpotDistribution,
        seed: int = 0,
        name: "str | None" = None,
    ) -> "RandomizedSellingPolicy":
        """Adopt an (LP-optimised) :class:`SpotDistribution` verbatim."""
        if not isinstance(distribution, SpotDistribution):
            raise PolicyError(
                "distribution must be a SpotDistribution, got "
                f"{type(distribution).__name__}"
            )
        return cls(
            spots=distribution.spots,
            weights=distribution.probabilities,
            seed=seed,
            name=name,
        )

    @property
    def probabilities(self) -> "tuple[float, ...]":
        """The normalised spot probabilities, menu order."""
        return self._probabilities

    @property
    def distribution(self) -> SpotDistribution:
        """This policy's spot menu as an analysable distribution."""
        return SpotDistribution(self.spots, self._probabilities)

    def draw_spot(self, key: object) -> float:
        """The decision spot drawn for one entity key.

        One uniform from ``stream(seed, key)``, inverted through the
        cumulative menu weights — deterministic per key across
        processes, engines, and restarts.
        """
        u = _stream(self.seed, key).random()
        index = int(np.searchsorted(self._cumulative, u, side="right"))
        return self.spots[min(index, len(self.spots) - 1)]

    def draw_spots(self, keys: "list[object]") -> np.ndarray:
        """Per-key drawn spots, one stream per key (vector convenience).

        Consumes exactly one draw per key, so it agrees bit-for-bit
        with repeated :meth:`draw_spot` calls.
        """
        return np.asarray([self.draw_spot(key) for key in keys], dtype=np.float64)

    def decision_fraction(self, instance: ReservedInstance) -> float:
        return self.draw_spot(instance.instance_id)

    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        return working_hours < context.beta


class CancellationAwareSellingPolicy(OnlineSellingPolicy):
    """Sell now, optionally re-buy at a penalty when demand returns.

    The "Online Resource Allocation with Cancellations" (arXiv
    2210.11570) direction grafted onto the paper's rule: the *sell
    decision* is exactly Algorithm 1/2 at ``phi`` (decision sequences
    are unchanged — the invariant the clearing engine established), but
    a sold unit is watched for the rest of its term. If unmet demand
    returns for ``trigger_hours`` distinct hours inside the sold unit's
    watch window, the seller *cancels the sale economically*: a
    replacement reservation is bought back at the prorated upfront plus
    a ``penalty`` surcharge, and the unit serves again to term end. The
    re-buy rule itself is the static rank rule of
    :mod:`repro.core.cancellation`, shared verbatim by ``run_fast``,
    ``run_population``, and the serving fleet.
    """

    def __init__(
        self,
        phi: float,
        penalty: float = 0.25,
        trigger_hours: int = 1,
        threshold_scale: float = 1.0,
        name: "str | None" = None,
    ) -> None:
        super().__init__(phi, threshold_scale)
        self.cancellation = CancellationModel(
            penalty=penalty, trigger_hours=trigger_hours
        )
        self.name = (
            f"Cancel@{self._spot_label(phi)}" if name is None else name
        )

    @property
    def penalty(self) -> float:
        return self.cancellation.penalty

    @property
    def trigger_hours(self) -> int:
        return self.cancellation.trigger_hours


class ScriptedSellingPolicy(SellingPolicy):
    """Replays a precomputed sell schedule (instance id → sale hour).

    Used by the offline optimum so its cost accounting goes through the
    exact same simulator path as every online policy.
    """

    name = "Scripted"

    def __init__(self, sale_hours: "dict[int, int]", name: str = "Scripted") -> None:
        self.sale_hours = dict(sale_hours)
        self.name = name

    def decision_fraction(self, instance: ReservedInstance) -> "float | None":
        hour = self.sale_hours.get(instance.instance_id)
        if hour is None:
            return None
        return (hour - instance.reserved_at) / instance.period

    def decision_hour(self, instance: ReservedInstance) -> "int | None":
        return self.sale_hours.get(instance.instance_id)

    def should_sell(self, working_hours: float, context: DecisionContext) -> bool:
        return True


def beta_for(
    plan: PricingPlan, selling_discount: float, policy: SellingPolicy, phi: float
) -> float:
    """β for one decision; thin wrapper kept for symmetry with the paper."""
    return break_even_working_hours(plan, selling_discount, phi)
