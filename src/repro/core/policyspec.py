"""The declarative policy-spec grammar behind ``repro.api.make_policy``.

Before this module, every layer grew its own policy-construction idiom:
the CLI hard-wired the paper's three online policies, sweep configs
enumerated constructor calls, the serve layer took bare ``--phi``
floats, and tests instantiated classes directly. A policy is now named
by one **spec** — a short string (or equivalent typed dict) that parses,
validates, canonicalises, and round-trips through ``repr`` and JSON —
so cache keys, checkpoints, HTTP provenance fields, and CLI flags all
store the *same* declarative value instead of pickled objects.

String grammar::

    kind[:key=value[,key=value...]]

    keep
    online:phi=0.75[,scale=1.0][,name=...]
    all-selling:phi=0.5[,name=...]
    randomized:seed=7,spots=0.25|0.5|0.75[,weights=0.2|0.3|0.5][,name=...]
    cancellation:phi=0.75[,penalty=0.25][,trigger=1][,scale=1.0][,name=...]

Floats use Python ``repr`` formatting (exact shortest round-trip);
float lists are ``|``-separated. The dict form mirrors the string form:
``{"kind": "randomized", "seed": 7, "spots": [0.25, 0.5, 0.75]}``.

Canonical form: parameters in the kind's declaration order with
defaulted entries omitted, so two specs that build the same policy
compare, hash, and digest identically — the property the sweep cache
key and the serve checkpoint rely on.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import Dict, Mapping, Tuple

from repro.core.breakeven import PAPER_DECISION_FRACTIONS
from repro.core.policies import (
    ALL_SELLING_POLICIES,
    ONLINE_POLICIES,
    POLICY_KEEP,
    AllSellingPolicy,
    CancellationAwareSellingPolicy,
    KeepReservedPolicy,
    ListedSellingPolicy,
    OnlineSellingPolicy,
    RandomizedSellingPolicy,
    SellingPolicy,
)
from repro.errors import PolicyError, SimulationError

#: Spec kinds (the grammar's first token).
SPEC_KEEP = "keep"
SPEC_ONLINE = "online"
SPEC_ALL_SELLING = "all-selling"
SPEC_RANDOMIZED = "randomized"
SPEC_CANCELLATION = "cancellation"

#: Per-kind parameter declarations: ``name -> (type tag, default)``.
#: ``REQUIRED`` marks parameters without a default. Declaration order is
#: the canonical emission order.
_REQUIRED = object()
_PARAMS: "Dict[str, Tuple[Tuple[str, str, object], ...]]" = {
    SPEC_KEEP: (),
    SPEC_ONLINE: (
        ("phi", "float", _REQUIRED),
        ("scale", "float", 1.0),
        ("name", "str", None),
    ),
    SPEC_ALL_SELLING: (
        ("phi", "float", _REQUIRED),
        ("name", "str", None),
    ),
    SPEC_RANDOMIZED: (
        ("seed", "int", 0),
        ("spots", "floats", tuple(sorted(PAPER_DECISION_FRACTIONS))),
        ("weights", "floats", None),
        ("name", "str", None),
    ),
    SPEC_CANCELLATION: (
        ("phi", "float", _REQUIRED),
        ("penalty", "float", 0.25),
        ("trigger", "int", 1),
        ("scale", "float", 1.0),
        ("name", "str", None),
    ),
}


def _format_value(tag: str, value: object) -> str:
    if tag == "floats":
        return "|".join(repr(float(v)) for v in value)  # type: ignore[union-attr]
    if tag == "float":
        return repr(float(value))  # type: ignore[arg-type]
    if tag == "int":
        return repr(int(value))  # type: ignore[call-overload]
    return str(value)


def _parse_value(kind: str, key: str, tag: str, raw: object) -> object:
    try:
        if tag == "floats":
            if isinstance(raw, str):
                parts = [part for part in raw.split("|") if part != ""]
                return tuple(float(part) for part in parts)
            return tuple(float(v) for v in raw)  # type: ignore[union-attr]
        if tag == "float":
            return float(raw)  # type: ignore[arg-type]
        if tag == "int":
            if isinstance(raw, float) and not raw.is_integer():
                raise ValueError(raw)
            return int(raw)  # type: ignore[call-overload]
        if not isinstance(raw, str) or not raw:
            raise ValueError(raw)
        return raw
    except (TypeError, ValueError):
        raise PolicyError(
            f"policy spec {kind!r}: parameter {key}={raw!r} is not a valid {tag}"
        ) from None


class PolicySpec:
    """One parsed, validated, canonical policy specification.

    Accepts the string grammar, the dict form, or another
    :class:`PolicySpec` (copied). Instances are immutable, hashable,
    compare by canonical form, and ``repr`` round-trips::

        >>> PolicySpec("randomized:seed=7")
        PolicySpec('randomized:seed=7')
    """

    __slots__ = ("kind", "params", "_canonical")

    def __init__(self, spec: "str | Mapping[str, object] | PolicySpec") -> None:
        if isinstance(spec, PolicySpec):
            kind, raw_params = spec.kind, dict(spec.params)
        elif isinstance(spec, str):
            kind, raw_params = self._split_text(spec)
        elif isinstance(spec, Mapping):
            payload = dict(spec)
            kind = payload.pop("kind", None)
            if not isinstance(kind, str):
                raise PolicyError(
                    f"policy spec dict needs a string 'kind', got {kind!r}"
                )
            raw_params = payload
        else:
            raise PolicyError(
                "policy spec must be a string, a dict, or a PolicySpec, got "
                f"{type(spec).__name__}"
            )
        if kind not in _PARAMS:
            raise PolicyError(
                f"unknown policy spec kind {kind!r}; expected one of "
                f"{sorted(_PARAMS)}"
            )
        declared = _PARAMS[kind]
        known = {name for name, _tag, _default in declared}
        unknown = set(raw_params) - known
        if unknown:
            raise PolicyError(
                f"policy spec {kind!r} got unknown parameter(s) "
                f"{sorted(unknown)}; expected {sorted(known)}"
            )
        params: "Dict[str, object]" = {}
        for name, tag, default in declared:
            if name in raw_params and raw_params[name] is not None:
                params[name] = _parse_value(kind, name, tag, raw_params[name])
            elif default is _REQUIRED:
                raise PolicyError(
                    f"policy spec {kind!r} requires parameter {name!r}"
                )
            else:
                params[name] = default
        object.__setattr__(self, "kind", kind)
        object.__setattr__(
            self, "params", tuple(sorted(params.items()))
        )
        object.__setattr__(self, "_canonical", self._render(kind, params))
        # Validate eagerly: a spec that parses must also build, so bad
        # parameter values fail at spec-construction time, not later in
        # a worker process or on checkpoint restore.
        try:
            self.build()
        except SimulationError as error:
            raise PolicyError(
                f"policy spec {self._canonical!r}: {error}"
            ) from error

    # -- parsing helpers ------------------------------------------------

    @staticmethod
    def _split_text(text: str) -> "Tuple[str, Dict[str, object]]":
        text = text.strip()
        if not text:
            raise PolicyError("policy spec string must be non-empty")
        kind, _sep, tail = text.partition(":")
        kind = kind.strip()
        raw_params: "Dict[str, object]" = {}
        if tail.strip():
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise PolicyError(
                        f"policy spec parameter {item!r} must look like "
                        "key=value"
                    )
                if key in raw_params:
                    raise PolicyError(
                        f"policy spec repeats parameter {key!r}"
                    )
                raw_params[key] = value.strip()
        return kind, raw_params

    @staticmethod
    def _render(kind: str, params: "Mapping[str, object]") -> str:
        parts = []
        for name, tag, default in _PARAMS[kind]:
            value = params[name]
            if default is not _REQUIRED and value == default:
                continue
            if value is None:
                continue
            parts.append(f"{name}={_format_value(tag, value)}")
        return kind if not parts else f"{kind}:{','.join(parts)}"

    # -- the public surface ---------------------------------------------

    def get(self, name: str) -> object:
        """One normalised parameter (defaults applied)."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def canonical(self) -> str:
        """The canonical string form (defaults omitted, fixed order)."""
        return self._canonical

    def to_payload(self) -> dict:
        """JSON-ready dict form; ``from_payload`` round-trips it."""
        payload: "Dict[str, object]" = {"kind": self.kind}
        for key, value in self.params:
            if value is None:
                continue
            payload[key] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_payload(cls, payload: "Mapping[str, object]") -> "PolicySpec":
        return cls(payload)

    def content_digest(self) -> str:
        """Stable identity for cache keys and checkpoints."""
        return hashlib.sha256(self._canonical.encode("utf-8")).hexdigest()

    def build(self) -> SellingPolicy:
        """Construct the policy this spec names."""
        params = dict(self.params)
        name = params.get("name")
        if self.kind == SPEC_KEEP:
            return KeepReservedPolicy()
        if self.kind == SPEC_ONLINE:
            policy = OnlineSellingPolicy(
                params["phi"], threshold_scale=params["scale"]
            )
            if name is not None:
                policy.name = str(name)
            return policy
        if self.kind == SPEC_ALL_SELLING:
            policy = AllSellingPolicy(params["phi"])
            if name is not None:
                policy.name = str(name)
            return policy
        if self.kind == SPEC_RANDOMIZED:
            return RandomizedSellingPolicy(
                spots=params["spots"],
                weights=params["weights"],
                seed=params["seed"],
                name=name,
            )
        return CancellationAwareSellingPolicy(
            params["phi"],
            penalty=params["penalty"],
            trigger_hours=params["trigger"],
            threshold_scale=params["scale"],
            name=name,
        )

    # -- dunder plumbing ------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PolicySpec is immutable")

    def __repr__(self) -> str:
        return f"PolicySpec({self._canonical!r})"

    def __str__(self) -> str:
        return self._canonical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicySpec):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return hash(self._canonical)


def spec_for(policy: SellingPolicy) -> PolicySpec:
    """The declarative spec of a constructed policy instance.

    The reverse mapping used for provenance (serve decision rows) and
    by the deprecation shims; raises :class:`PolicyError` for policies
    with no declarative form (e.g. scripted replays).
    """
    if isinstance(policy, RandomizedSellingPolicy):
        weights: "Tuple[float, ...] | None" = tuple(policy.probabilities)
        if len(set(weights)) == 1:
            weights = None  # uniform is the default; keep the spec canonical
        return PolicySpec(
            {
                "kind": SPEC_RANDOMIZED,
                "seed": policy.seed,
                "spots": policy.spots,
                "weights": weights,
            }
        )
    if isinstance(policy, CancellationAwareSellingPolicy):
        return PolicySpec(
            {
                "kind": SPEC_CANCELLATION,
                "phi": policy.phi,
                "penalty": policy.penalty,
                "trigger": policy.trigger_hours,
                "scale": policy.threshold_scale,
            }
        )
    if isinstance(policy, ListedSellingPolicy):
        # The decision rule is the online rule at phi; the listing
        # schedule travels via the clearing model, not the policy spec.
        return PolicySpec(
            {"kind": SPEC_ONLINE, "phi": policy.phi, "scale": policy.threshold_scale}
        )
    if isinstance(policy, OnlineSellingPolicy):
        return PolicySpec(
            {"kind": SPEC_ONLINE, "phi": policy.phi, "scale": policy.threshold_scale}
        )
    if isinstance(policy, AllSellingPolicy):
        return PolicySpec({"kind": SPEC_ALL_SELLING, "phi": policy.phi})
    if isinstance(policy, KeepReservedPolicy):
        return PolicySpec(SPEC_KEEP)
    raise PolicyError(
        f"policy {policy!r} has no declarative spec form"
    )


def make_policy(spec: object) -> SellingPolicy:
    """Build a selling policy from any accepted spec form.

    The one construction entry point (exported as
    ``repro.api.make_policy``):

    * a spec string or dict — the declarative grammar above;
    * a :class:`PolicySpec` — built directly;
    * an already-constructed :class:`SellingPolicy` — passed through
      unchanged (composition-friendly);
    * **deprecated shims** for the historical ad-hoc idioms, each
      emitting a :class:`DeprecationWarning` naming its replacement: a
      bare decision fraction (→ ``online:phi=...``) and a canonical
      policy *name* such as ``A_{T/2}`` (→ its spec).
    """
    if isinstance(spec, SellingPolicy):
        return spec
    if isinstance(spec, PolicySpec):
        return spec.build()
    if isinstance(spec, bool):
        raise PolicyError(f"cannot build a policy from {spec!r}")
    if isinstance(spec, (int, float)):
        warnings.warn(
            "make_policy(phi) with a bare decision fraction is deprecated; "
            f"pass the spec string 'online:phi={float(spec)!r}' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return PolicySpec({"kind": SPEC_ONLINE, "phi": float(spec)}).build()
    if isinstance(spec, str):
        resolved = _spec_for_policy_name(spec)
        if resolved is not None:
            warnings.warn(
                f"make_policy({spec!r}) with a policy display name is "
                f"deprecated; pass the spec string {resolved.canonical()!r} "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return resolved.build()
    return PolicySpec(spec).build()  # type: ignore[arg-type]


def _spec_for_policy_name(name: str) -> "PolicySpec | None":
    """The spec behind a canonical display name, if it is one."""
    if name == POLICY_KEEP:
        return PolicySpec(SPEC_KEEP)
    phi = ONLINE_POLICIES.get(name)
    if phi is not None:
        return PolicySpec({"kind": SPEC_ONLINE, "phi": phi})
    phi = ALL_SELLING_POLICIES.get(name)
    if phi is not None:
        return PolicySpec({"kind": SPEC_ALL_SELLING, "phi": phi})
    return None


def parse_policies(text: str) -> "Tuple[PolicySpec, ...]":
    """Parse a ``;``-separated list of specs (the CLI ``--policies`` form).

    Specs contain commas, so the list separator is ``;``. Duplicate
    display names are rejected — result tables, cache entries, and serve
    responses key policies by name.
    """
    specs = tuple(
        PolicySpec(part.strip())
        for part in text.split(";")
        if part.strip()
    )
    if not specs:
        raise PolicyError("--policies must name at least one policy spec")
    names = [spec.build().name for spec in specs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise PolicyError(
            f"policy specs produce duplicate display name(s) "
            f"{sorted(duplicates)}; give each a distinct name=... parameter"
        )
    return specs
