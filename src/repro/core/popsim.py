"""Population-tensor engine: one policy over every user in one pass.

:func:`repro.core.fastsim.run_fast` renders Algorithm 1/2 faithfully for
*one* user; sweeping a population through it costs one Python loop per
user (≈257 users/sec in ``BENCH_sweep.json``), which is fatal for the
ROADMAP's millions-of-users target. This module runs the same decision
rule over a whole ``(users × hours)`` demand/reservation tensor with
numpy doing the user dimension, and is proven **bit-identical** to
``run_fast`` per user (``tests/core/test_popsim.py`` sweeps ≥40 seeds ×
3 φ × 3 policy kinds).

Why the rule vectorises across users
------------------------------------

Users never interact, so the only obstacle is the *within*-user
sequential structure: each decision batch rewrites history
(``r_effective[t0:end] -= 1`` per sale), which feeds later windows. Two
observations collapse it:

1. History rewrites are strictly per-user: a sale of user ``u`` only
   edits row ``u``. The only ordering that matters is each user's *own*
   windows in ascending ``t0`` — exactly the order the per-user loop
   visits them. So the engine runs in *rounds*: round ``j`` handles
   every user's ``j``-th reservation event at once (different ``t0``
   per row, gathered with one fancy index), reads the current
   ``r_effective`` tensor, and applies the row-local rewrites before
   round ``j+1``. The loop length becomes the maximum events per user,
   not the number of distinct decision hours.
2. Within one window the batch loop (the pseudocode's ``i = 1..n_t``)
   reduces to an order statistic. With ``c_k = r_eff_k − d_k − l_k``
   over the window, instance ``i`` (with ``s`` sales so far in the
   batch) is free at hour ``k`` iff ``c_k > i − 1 + s``, so its working
   time is ``φT − F(i − 1 + s)`` where ``F(m) = #{k : c_k > m}`` is
   non-increasing in ``m``. Working time is therefore non-decreasing
   over the batch: once one instance is kept, every later instance is
   kept too, and the number sold is determined by the ``j0``-th largest
   value of ``c`` alone (``j0`` = the smallest free-hour count that
   still sells, a run-level constant). One ``np.partition`` per window
   replaces the per-instance loop — for every user at once.

Float identity: β, ``scale·β``, the per-sale income and the cost-model
products are computed with exactly the expressions ``run_fast`` uses,
and the sale-income accumulator is reproduced by a sequential-sum table
(``k`` sales = ``k`` repeated ``+=``, not ``k·income``), so costs match
bitwise, not approximately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._arrays import as_count_array
from repro.core.account import CostBreakdown, CostModel, HourlyFeeMode
from repro.core.breakeven import break_even_working_hours, validate_phi
from repro.core.cancellation import CancellationModel, SoldUnit, apply_rebuys
from repro.core.clearing import ClearingModel
from repro.core.fastsim import FastPolicyKind, validate_threshold_scale
from repro.core.policies import RandomizedSellingPolicy
from repro.errors import SimulationError

#: Default number of users processed per tensor block by the streaming
#: helpers (bounds peak memory at roughly ``4 × block × horizon × 8``
#: bytes of working set regardless of population size).
DEFAULT_BLOCK_USERS = 4096


@dataclass(frozen=True)
class PopulationResult:
    """Per-user outputs of one population-tensor run (aligned arrays).

    The four cost components reproduce :class:`CostBreakdown`'s fields;
    :meth:`total_costs` applies the same expression as
    ``CostBreakdown.total`` so totals are bit-identical to per-user
    ``run_fast`` results.
    """

    kind: FastPolicyKind
    phi: float
    on_demand: np.ndarray  # (U,) float64 — o_t · p totals
    upfront: np.ndarray  # (U,) float64 — n_t · R totals
    reserved_hourly: np.ndarray  # (U,) float64 — billed hours · α · p
    sale_income: np.ndarray  # (U,) float64
    instances_sold: np.ndarray  # (U,) int64
    #: Listing-lifecycle tallies, populated only when a clearing model
    #: ran (``None`` under the paper's instant-sale semantics). A SELL
    #: decision counts in ``instances_sold`` either way; under clearing
    #: it lands in exactly one of cleared/expired/open.
    instances_cleared: "np.ndarray | None" = None  # (U,) int64
    listings_expired: "np.ndarray | None" = None  # (U,) int64
    listings_open: "np.ndarray | None" = None  # (U,) int64
    #: Cancellation tallies, populated only when a
    #: :class:`~repro.core.cancellation.CancellationModel` ran.
    rebuy: "np.ndarray | None" = None  # (U,) float64 — buy-back cost totals
    instances_rebought: "np.ndarray | None" = None  # (U,) int64
    #: The per-user drawn decision fraction of a randomized run
    #: (:func:`run_population_randomized`); ``phi`` is NaN in that case.
    drawn_phi: "np.ndarray | None" = None  # (U,) float64

    @property
    def n_users(self) -> int:
        return int(self.instances_sold.size)

    def total_costs(self) -> np.ndarray:
        """Per-user net cost, same evaluation order as Eq. (1)'s total."""
        totals = (
            self.on_demand + self.upfront + self.reserved_hourly - self.sale_income
        )
        if self.rebuy is not None:
            totals = totals + self.rebuy
        return totals

    def breakdown(self, user: int) -> CostBreakdown:
        """One user's :class:`CostBreakdown` (bitwise ``run_fast`` match)."""
        return CostBreakdown(
            on_demand=float(self.on_demand[user]),
            upfront=float(self.upfront[user]),
            reserved_hourly=float(self.reserved_hourly[user]),
            sale_income=float(self.sale_income[user]),
            rebuy=0.0 if self.rebuy is None else float(self.rebuy[user]),
        )

    @classmethod
    def concatenate(
        cls, results: "list[PopulationResult]"
    ) -> "PopulationResult":
        """Stitch block results (same policy) back into one population."""
        if not results:
            raise SimulationError("cannot concatenate zero population results")
        first = results[0]
        for other in results[1:]:
            if other.kind is not first.kind or other.phi != first.phi:
                raise SimulationError(
                    "population blocks ran different policies: "
                    f"{(first.kind, first.phi)} vs {(other.kind, other.phi)}"
                )
        def _cat_optional(name: str, label: str) -> "np.ndarray | None":
            present = [getattr(r, name) is not None for r in results]
            if any(present) and not all(present):
                raise SimulationError(
                    f"cannot concatenate population blocks that mix "
                    f"{label}-on and {label}-off runs"
                )
            if not all(present):
                return None
            return np.concatenate([getattr(r, name) for r in results])

        return cls(
            kind=first.kind,
            phi=first.phi,
            on_demand=np.concatenate([r.on_demand for r in results]),
            upfront=np.concatenate([r.upfront for r in results]),
            reserved_hourly=np.concatenate([r.reserved_hourly for r in results]),
            sale_income=np.concatenate([r.sale_income for r in results]),
            instances_sold=np.concatenate([r.instances_sold for r in results]),
            instances_cleared=_cat_optional("instances_cleared", "clearing"),
            listings_expired=_cat_optional("listings_expired", "clearing"),
            listings_open=_cat_optional("listings_open", "clearing"),
            rebuy=_cat_optional("rebuy", "cancellation"),
            instances_rebought=_cat_optional("instances_rebought", "cancellation"),
            drawn_phi=_cat_optional("drawn_phi", "randomized"),
        )


class PopulationPrecompute:
    """Validated tensors plus the policy-independent intermediates.

    ``run_population`` derives the active-instance timeline and the
    reservation prefix sum from ``(demands, reservations, period)``
    alone — nothing about φ, the policy kind, or the threshold scale
    enters them. A sweep runs ~7 policies over the *same* block, so
    :func:`prepare_population` lets callers validate once and share
    those tensors across every policy run of the block. All held arrays
    are treated as read-only by the engine (sale rewrites always go to
    fresh per-run arrays), which is what keeps sharing bit-safe.
    """

    __slots__ = ("demands", "reservations", "period", "active", "_prefix")

    def __init__(
        self, demands: np.ndarray, reservations: np.ndarray, period: int
    ) -> None:
        self.demands = demands
        self.reservations = reservations
        self.period = period
        self.active = _active_timeline(reservations, period)
        self._prefix: "np.ndarray | None" = None

    @property
    def reservation_prefix(self) -> np.ndarray:
        """``[0, cumsum(n)]`` per row — built lazily: only the windowed
        online path reads it (KEEP / All-Selling runs never pay for it)."""
        if self._prefix is None:
            n = self.reservations
            self._prefix = np.concatenate(
                [np.zeros((n.shape[0], 1), dtype=np.int64), np.cumsum(n, axis=1)],
                axis=1,
            )
        return self._prefix


def prepare_population(
    demands: np.ndarray, reservations: np.ndarray, period: int
) -> PopulationPrecompute:
    """Validate one ``(users × hours)`` block and precompute the
    policy-independent tensors, for sharing across ``run_population``
    calls (pass the result as ``precomputed=``)."""
    d = as_count_array(demands, "demands", SimulationError)
    n = as_count_array(reservations, "reservations", SimulationError)
    if d.ndim != 2 or n.ndim != 2 or d.shape != n.shape:
        raise SimulationError(
            "demands and reservations must be 2-D (users x hours) arrays "
            f"of equal shape, got {d.shape} and {n.shape}"
        )
    if np.any(d < 0) or np.any(n < 0):
        raise SimulationError("demands and reservations must be non-negative")
    if d.shape[1] == 0:
        raise SimulationError("the horizon must cover at least one hour")
    return PopulationPrecompute(d, n, period)


def _active_timeline(reservations: np.ndarray, period: int) -> np.ndarray:
    """Active-reservation tensor: each ``n[u, h]`` covers ``[h, h+T)``.

    Built with a difference array + row cumsum instead of a per-user
    loop over reservation hours.
    """
    horizon = reservations.shape[1]
    delta = reservations.copy()
    if period < horizon:
        # Reservations expiring inside the horizon stop contributing at
        # h + T; later ones run off the end and need no terminator.
        delta[:, period:] -= reservations[:, : horizon - period]
    return np.cumsum(delta, axis=1)


def _sequential_income_table(per_sale_income: float, max_sales: int) -> np.ndarray:
    """``table[k]`` = ``k`` repeated float ``+=`` of ``per_sale_income``.

    ``run_fast`` accumulates sale income with one addition per sale;
    ``k · income`` rounds differently in the last ulp, so the exact
    running sums are tabulated instead (``max_sales`` is small: it is
    bounded by the largest per-user reservation total).
    """
    table = np.empty(max_sales + 1, dtype=np.float64)
    acc = 0.0
    for count in range(max_sales + 1):
        table[count] = acc
        acc += per_sale_income
    return table


def _apply_clearing(
    clearing: ClearingModel,
    clearing_keys: "list[object]",
    model: CostModel,
    sale_rows: np.ndarray,
    sale_t0: np.ndarray,
    decision_age: int,
    period: int,
    horizon: int,
    users: int,
    sale_delta: np.ndarray,
) -> (
    "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, "
    "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]"
):
    """Vectorised clearing over the collected per-sale events.

    ``sale_rows``/``sale_t0`` carry one entry per SELL decision in the
    engine's emission order — per user that is ascending ``t0`` and
    ascending batch index, exactly the order ``run_fast`` draws its
    scalar uniforms in. Grouping with a *stable* argsort therefore
    preserves each user's draw order, and because
    ``Generator.random(size=k)`` consumes the stream identically to
    ``k`` scalar draws, the delays match the per-user engine draw for
    draw. Returns per-user ``(income, cleared, expired, open)`` plus the
    per-sale event arrays ``(rows, t0, clear_at, cleared)`` sorted by
    row (each user's listings in decision order — what the cancellation
    post-pass ranks by), and writes the physical-timeline clear events
    into ``sale_delta``.
    """
    profile = clearing.profile(model.selling_discount, period, decision_age)
    order = np.argsort(sale_rows, kind="stable")
    rows = sale_rows[order]
    t0 = sale_t0[order]
    uniforms = np.empty(rows.size, dtype=np.float64)
    boundaries = np.flatnonzero(np.diff(rows)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_stops = np.concatenate((boundaries, [rows.size]))
    for start, stop in zip(group_starts.tolist(), group_stops.tolist()):
        user = int(rows[start])
        uniforms[start:stop] = clearing.stream(clearing_keys[user]).random(
            stop - start
        )
    delays = profile.sample_delays(uniforms)
    listed_at = t0 + decision_age
    clear_at = listed_at + delays
    has_clear_draw = delays < profile.window
    cleared = has_clear_draw & (clear_at < horizon)
    expired = ~has_clear_draw & (listed_at + profile.window < horizon)
    still_open = ~cleared & ~expired

    income = np.zeros(users, dtype=np.float64)
    rows_cleared = rows[cleared]
    if rows_cleared.size:
        t0_cleared = t0[cleared]
        tc = clear_at[cleared]
        end = np.minimum(t0_cleared + period, horizon)
        # Duplicate (row, hour) pairs are possible — several listings of
        # one user can clear the same hour — so the unbuffered add is
        # required, unlike the decision-time path.
        np.add.at(sale_delta, (rows_cleared, tc), -1)
        np.add.at(sale_delta, (rows_cleared, end), 1)
        # Income per cleared listing, with run_fast's exact expression
        # order ((1−fee) · a(w) · remaining · R, left to right).
        clear_fraction = 1.0 - (tc - t0_cleared) / period
        values = (
            (1.0 - model.marketplace_fee)
            * profile.discounts[delays[cleared]]
            * clear_fraction
            * model.big_r
        )
        # Accumulate per user sequentially in (clear hour, listing
        # order): the order income is booked in streaming serving, and
        # a plain repeated ``+=`` so the float sum matches run_fast
        # (pairwise reductions round differently in the last ulp).
        cleared_bounds = np.flatnonzero(np.diff(rows_cleared)) + 1
        starts = np.concatenate(([0], cleared_bounds))
        stops = np.concatenate((cleared_bounds, [rows_cleared.size]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            user = int(rows_cleared[start])
            by_clear_hour = np.argsort(tc[start:stop], kind="stable")
            acc = 0.0
            for value in values[start:stop][by_clear_hour].tolist():
                acc += value
            income[user] = acc

    cleared_counts = np.bincount(rows_cleared, minlength=users)
    expired_counts = np.bincount(rows[expired], minlength=users)
    open_counts = np.bincount(rows[still_open], minlength=users)
    return income, cleared_counts, expired_counts, open_counts, (
        rows,
        t0,
        clear_at,
        cleared,
    )


def run_population(
    demands: np.ndarray,
    reservations: np.ndarray,
    model: CostModel,
    phi: float = 0.75,
    kind: FastPolicyKind = FastPolicyKind.ONLINE,
    threshold_scale: float = 1.0,
    precomputed: "PopulationPrecompute | None" = None,
    *,
    clearing: "ClearingModel | None" = None,
    clearing_keys: "list[object] | None" = None,
    cancellation: "CancellationModel | None" = None,
) -> PopulationResult:
    """Run one selling policy over a whole ``(users × hours)`` tensor.

    ``demands`` and ``reservations`` are 2-D integer arrays of equal
    shape — row ``u`` is exactly the ``(d, n)`` pair ``run_fast`` would
    receive for user ``u``, and the returned per-user costs and sale
    counts are bit-identical to per-user ``run_fast`` calls. Inputs are
    validated with the same strictness (non-negative, integral, finite;
    ``threshold_scale`` finite and ≥ 0).

    When sweeping several policies over the same block, build a
    :func:`prepare_population` once and pass it as ``precomputed`` —
    the validation and the policy-independent tensors are then shared
    instead of being rebuilt per policy (``demands``/``reservations``
    positional arguments are ignored in that case).

    With a :class:`~repro.core.clearing.ClearingModel`, SELL decisions
    open listings whose clearing delays are drawn vectorised — one
    uniform per sale from the per-user stream
    ``clearing.stream(clearing_keys[u])`` — and the clear events are
    composed with the same difference-array cost accumulation the
    instant path uses. Per user the outputs are bit-identical to
    ``run_fast(..., clearing=clearing, clearing_key=clearing_keys[u])``
    (``tests/core/test_clearing.py``). ``clearing_keys`` defaults to the
    row index within this block; pass stable per-user keys (for example
    user ids) when the same population is split across blocks.

    With a :class:`~repro.core.cancellation.CancellationModel`, the
    static rank rule of :func:`repro.core.cancellation.apply_rebuys`
    runs as a per-user post-pass over the sold units (cleared listings
    under clearing, every sale under instant semantics) — decisions,
    sale income and the listing lifecycle are untouched; the physical
    timeline gains the re-bought serving hours and the result carries
    per-user ``rebuy`` cost and ``instances_rebought`` tallies,
    bit-identical to ``run_fast(..., cancellation=cancellation)``.
    """
    period = model.period
    if precomputed is None:
        precomputed = prepare_population(demands, reservations, period)
    elif precomputed.period != period:
        raise SimulationError(
            "precomputed block was prepared for a "
            f"{precomputed.period}-hour period but the cost model uses "
            f"{period} hours"
        )
    d = precomputed.demands
    n = precomputed.reservations
    users, horizon = d.shape
    if kind is not FastPolicyKind.KEEP_RESERVED:
        validate_phi(phi)
    validate_threshold_scale(threshold_scale)
    if clearing is not None and not isinstance(clearing, ClearingModel):
        raise SimulationError(
            f"clearing must be a ClearingModel or None, got "
            f"{type(clearing).__name__}"
        )
    if cancellation is not None and not isinstance(cancellation, CancellationModel):
        raise SimulationError(
            f"cancellation must be a CancellationModel or None, got "
            f"{type(cancellation).__name__}"
        )
    resolved_keys: "list[object] | None" = None
    if clearing is not None:
        if clearing_keys is None:
            resolved_keys = list(range(users))
        else:
            resolved_keys = list(clearing_keys)
            if len(resolved_keys) != users:
                raise SimulationError(
                    f"clearing_keys must have one entry per user "
                    f"({users}), got {len(resolved_keys)}"
                )

    decision_age = round(phi * period)
    beta = break_even_working_hours(model.plan, model.selling_discount, phi)

    r_physical = precomputed.active
    total_sold = np.zeros(users, dtype=np.int64)
    evaluate = (
        kind is not FastPolicyKind.KEEP_RESERVED
        and 0 < decision_age < period
    )
    per_sale_income = 0.0
    # Sales' effect on the active-instance timeline, as a difference
    # array (one extra column swallows end == horizon): r_physical is
    # never edited in the loop, the cumsum below applies every sale at
    # once at the end of the run.
    sale_delta: "np.ndarray | None" = None
    # Under clearing the physical timeline changes at the *drawn clear
    # hour*, not the decision hour, so the branches below collect one
    # event per sold instance (per user in run_fast's draw order)
    # instead of writing decision-time deltas. The cancellation
    # post-pass also needs the per-sale events (it ranks sold units in
    # that same order), so instant-path runs collect them too — on top
    # of, not instead of, their decision-time deltas.
    collect_events = clearing is not None or cancellation is not None
    event_rows_parts: "list[np.ndarray]" = []
    event_t0_parts: "list[np.ndarray]" = []
    if evaluate:
        remaining_fraction = 1.0 - decision_age / period
        per_sale_income = model.sale_income(remaining_fraction)
        if kind is FastPolicyKind.ONLINE:
            scaled_beta = threshold_scale * beta
            # Largest integer working time that still sells under the
            # strict ``working < scale·β`` test (exact: ceil on floats).
            max_selling_working = math.ceil(scaled_beta) - 1
            # Smallest free-hour count F that sells (working = φT − F).
            min_selling_free = decision_age - max_selling_working
        else:  # ALL_SELLING sells regardless of the free-hour count.
            min_selling_free = 0

        # Batches whose decision hour lands inside the horizon
        # (t0 < horizon − φT), in row-major = per-user ascending order.
        event_rows, event_t0 = np.nonzero(n[:, : max(horizon - decision_age, 0)])
        if event_rows.size == 0 or min_selling_free > decision_age:
            # No batches, or even a fully idle window (F = φT) keeps.
            pass
        elif min_selling_free <= 0:
            # Every instance of every batch sells (All-Selling, or a
            # scale·β so large the working-time test always passes) —
            # no window needs reading, the whole run is closed-form.
            counts = n[event_rows, event_t0]
            np.add.at(total_sold, event_rows, counts)
            if clearing is None:
                sale_delta = np.zeros((users, horizon + 1), dtype=np.int64)
                np.subtract.at(
                    sale_delta, (event_rows, event_t0 + decision_age), counts
                )
                np.add.at(
                    sale_delta,
                    (event_rows, np.minimum(event_t0 + period, horizon)),
                    counts,
                )
            if collect_events:
                # Expand batches to per-sale events; nonzero's row-major
                # order keeps each user's sales in ascending t0 / batch
                # order, matching run_fast's draw order.
                event_rows_parts.append(np.repeat(event_rows, counts))
                event_t0_parts.append(np.repeat(event_t0, counts))
        else:
            # Round j handles every user's j-th batch at once; a user's
            # own rounds run in ascending t0 (row-major nonzero order),
            # which is the only ordering the history rewrites need.
            if clearing is None:
                sale_delta = np.zeros((users, horizon + 1), dtype=np.int64)
            # The same collapse as run_fast: the l running sum always
            # reads the *original* schedule, so one prefix sum serves
            # every window (and every policy of the block).
            n_prefix = precomputed.reservation_prefix
            # Window expression tensor: expression[u, k] =
            # r_eff[u, k] − d[u, k] − n_prefix[u, k+1]. The free-slack
            # value of window t0 is expression[u, k] + n_prefix[u, t0+1]
            # — a per-row constant, which commutes with taking an order
            # statistic, so it is added to the *pivot* after the
            # partition and only one tensor gather is needed per round.
            # Sale rewrites of r_eff edit this tensor identically.
            expression = r_physical - d - n_prefix[:, 1:]
            events_per_user = np.bincount(event_rows, minlength=users)
            event_start = np.concatenate(([0], np.cumsum(events_per_user)))
            # j0-th largest slack value per user: the pivot deciding how
            # many batch instances clear the break-even test.
            pivot_column = decision_age - min_selling_free
            window_offsets = np.arange(decision_age)
            for round_index in range(int(events_per_user.max(initial=0))):
                rows = np.flatnonzero(events_per_user > round_index)
                t0 = event_t0[event_start[rows] + round_index]
                cols = t0[:, None] + window_offsets
                window = expression[rows[:, None], cols]
                pivot = (
                    np.partition(window, pivot_column, axis=1)[:, pivot_column]
                    + n_prefix[rows, t0 + 1]
                )
                batch_sizes = n[rows, t0]
                # Selling i instances needs c_(j0) > 2(i−1): each sale
                # both advances the batch index and rewrites history.
                sold = np.where(
                    pivot >= 1,
                    np.minimum(batch_sizes, (pivot - 1) // 2 + 1),
                    0,
                )
                sellers = np.flatnonzero(sold > 0)
                if sellers.size == 0:
                    continue
                sell_rows = rows[sellers]
                sell_t0 = t0[sellers]
                sell_counts = sold[sellers]
                sell_end = np.minimum(sell_t0 + period, horizon)
                if clearing is None:
                    # One row per seller within a round: plain fancy
                    # assignment is safe (no duplicate indices).
                    sale_delta[sell_rows, sell_t0 + decision_age] -= sell_counts
                    sale_delta[sell_rows, sell_end] += sell_counts
                if collect_events:
                    # Rounds visit each user's batches in ascending t0,
                    # so appending round by round keeps every user's
                    # events in run_fast's draw order.
                    event_rows_parts.append(np.repeat(sell_rows, sell_counts))
                    event_t0_parts.append(np.repeat(sell_t0, sell_counts))
                total_sold[sell_rows] += sell_counts
                for row, start, stop, count in zip(
                    sell_rows.tolist(),
                    sell_t0.tolist(),
                    sell_end.tolist(),
                    sell_counts.tolist(),
                ):
                    expression[row, start:stop] -= count

    instances_cleared: "np.ndarray | None" = None
    listings_expired: "np.ndarray | None" = None
    listings_open: "np.ndarray | None" = None
    sale_events: "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None"
    sale_events = None
    if clearing is not None:
        clearing_income = np.zeros(users, dtype=np.float64)
        instances_cleared = np.zeros(users, dtype=np.int64)
        listings_expired = np.zeros(users, dtype=np.int64)
        listings_open = np.zeros(users, dtype=np.int64)
        if event_rows_parts:
            sale_delta = np.zeros((users, horizon + 1), dtype=np.int64)
            (
                clearing_income,
                instances_cleared,
                listings_expired,
                listings_open,
                sale_events,
            ) = _apply_clearing(
                clearing,
                resolved_keys,
                model,
                np.concatenate(event_rows_parts),
                np.concatenate(event_t0_parts),
                decision_age,
                period,
                horizon,
                users,
                sale_delta,
            )

    if sale_delta is not None and total_sold.any():
        r_physical = r_physical + np.cumsum(sale_delta, axis=1)[:, :horizon]

    rebuy_costs: "np.ndarray | None" = None
    instances_rebought: "np.ndarray | None" = None
    if cancellation is not None:
        rebuy_costs = np.zeros(users, dtype=np.float64)
        instances_rebought = np.zeros(users, dtype=np.int64)
        if clearing is None and event_rows_parts:
            # Instant sales: every sale is a sold unit watching from its
            # decision hour. The round-wise appends interleave users, so
            # a stable row sort restores each user's (t0, batch) order.
            rows_all = np.concatenate(event_rows_parts)
            t0_all = np.concatenate(event_t0_parts)
            order = np.argsort(rows_all, kind="stable")
            sale_events = (
                rows_all[order],
                t0_all[order],
                t0_all[order] + decision_age,
                np.ones(rows_all.size, dtype=bool),
            )
        if sale_events is not None:
            unit_rows, unit_t0, unit_watch, unit_sold = sale_events
            boundaries = np.flatnonzero(np.diff(unit_rows)) + 1
            group_starts = np.concatenate(([0], boundaries))
            group_stops = np.concatenate((boundaries, [unit_rows.size]))
            for start, stop in zip(group_starts.tolist(), group_stops.tolist()):
                user = int(unit_rows[start])
                units = [
                    SoldUnit(
                        reserved_at=int(t0),
                        watch_from=int(watch),
                        term_end=min(int(t0) + period, horizon),
                    )
                    for t0, watch, sold in zip(
                        unit_t0[start:stop].tolist(),
                        unit_watch[start:stop].tolist(),
                        unit_sold[start:stop].tolist(),
                    )
                    if sold
                ]
                if not units:
                    continue
                outcome = apply_rebuys(
                    d[user], r_physical[user], units, period, model, cancellation
                )
                if outcome.rebuys:
                    # r_physical is a fresh array whenever sales (and
                    # therefore units) exist — safe to edit in place.
                    r_physical[user] = outcome.r_after
                    rebuy_costs[user] = outcome.rebuy_cost
                    instances_rebought[user] = len(outcome.rebuys)

    on_demand_hours = np.maximum(d - r_physical, 0).sum(axis=1)
    if model.fee_mode is HourlyFeeMode.ACTIVE:
        billed_hours = r_physical.sum(axis=1)
    else:
        billed_hours = np.minimum(d, r_physical).sum(axis=1)
    if clearing is None:
        income_table = _sequential_income_table(
            per_sale_income, int(total_sold.max(initial=0))
        )
        sale_income = income_table[total_sold]
    else:
        sale_income = clearing_income
    return PopulationResult(
        kind=kind,
        phi=phi,
        on_demand=on_demand_hours.astype(np.float64) * model.p,
        upfront=n.sum(axis=1).astype(np.float64) * model.big_r,
        reserved_hourly=billed_hours.astype(np.float64) * model.alpha * model.p,
        sale_income=sale_income,
        instances_sold=total_sold,
        instances_cleared=instances_cleared,
        listings_expired=listings_expired,
        listings_open=listings_open,
        rebuy=rebuy_costs,
        instances_rebought=instances_rebought,
    )


def run_population_randomized(
    demands: np.ndarray,
    reservations: np.ndarray,
    model: CostModel,
    policy: RandomizedSellingPolicy,
    *,
    user_keys: "list[object] | None" = None,
    threshold_scale: float = 1.0,
    clearing: "ClearingModel | None" = None,
    clearing_keys: "list[object] | None" = None,
    cancellation: "CancellationModel | None" = None,
) -> PopulationResult:
    """Run a :class:`RandomizedSellingPolicy` over a population tensor.

    One decision fraction is drawn per user from the policy's per-key
    uniform stream — ``policy.draw_spot(user_keys[u])`` — and the run
    then *is* the deterministic online engine at that φ: rows are
    grouped by drawn spot, each group runs through
    :func:`run_population` at its φ, and the per-user outputs scatter
    back into the original row order. Per user the result is therefore
    bit-identical to ``run_fast`` at the drawn φ (and to the serving
    fleet, which draws from the same stream keyed the same way); a
    single-spot menu reduces bit-identically to the plain deterministic
    run.

    ``user_keys`` (default: the row index) are the draw keys; pass the
    same stable per-user keys the serving layer uses to reproduce its
    draws. ``clearing_keys`` keeps its :func:`run_population` meaning
    and defaults to the row index of the *full* block, so grouping does
    not re-key the clearing streams. The returned result carries
    ``drawn_phi`` and has ``phi`` set to NaN (no single fraction
    describes the run).
    """
    if not isinstance(policy, RandomizedSellingPolicy):
        raise SimulationError(
            f"policy must be a RandomizedSellingPolicy, got "
            f"{type(policy).__name__}"
        )
    precomputed = prepare_population(demands, reservations, model.period)
    users = precomputed.demands.shape[0]
    keys: "list[object]" = (
        list(range(users)) if user_keys is None else list(user_keys)
    )
    if len(keys) != users:
        raise SimulationError(
            f"user_keys must have one entry per user ({users}), got {len(keys)}"
        )
    resolved_clearing_keys: "list[object] | None" = None
    if clearing is not None:
        resolved_clearing_keys = (
            list(range(users)) if clearing_keys is None else list(clearing_keys)
        )
        if len(resolved_clearing_keys) != users:
            raise SimulationError(
                f"clearing_keys must have one entry per user ({users}), "
                f"got {len(resolved_clearing_keys)}"
            )

    drawn = policy.draw_spots(keys)

    def _alloc(dtype: type) -> np.ndarray:
        return np.zeros(users, dtype=dtype)

    out: "dict[str, np.ndarray | None]" = {
        "on_demand": _alloc(np.float64),
        "upfront": _alloc(np.float64),
        "reserved_hourly": _alloc(np.float64),
        "sale_income": _alloc(np.float64),
        "instances_sold": _alloc(np.int64),
        "instances_cleared": _alloc(np.int64) if clearing is not None else None,
        "listings_expired": _alloc(np.int64) if clearing is not None else None,
        "listings_open": _alloc(np.int64) if clearing is not None else None,
        "rebuy": _alloc(np.float64) if cancellation is not None else None,
        "instances_rebought": (
            _alloc(np.int64) if cancellation is not None else None
        ),
    }
    for phi in np.unique(drawn).tolist():
        rows = np.flatnonzero(drawn == phi)
        group = run_population(
            precomputed.demands[rows],
            precomputed.reservations[rows],
            model,
            phi=phi,
            kind=FastPolicyKind.ONLINE,
            threshold_scale=threshold_scale,
            clearing=clearing,
            clearing_keys=(
                None
                if resolved_clearing_keys is None
                else [resolved_clearing_keys[row] for row in rows.tolist()]
            ),
            cancellation=cancellation,
        )
        for name, target in out.items():
            if target is not None:
                target[rows] = getattr(group, name)
    return PopulationResult(
        kind=FastPolicyKind.ONLINE,
        phi=float("nan"),
        on_demand=out["on_demand"],
        upfront=out["upfront"],
        reserved_hourly=out["reserved_hourly"],
        sale_income=out["sale_income"],
        instances_sold=out["instances_sold"],
        instances_cleared=out["instances_cleared"],
        listings_expired=out["listings_expired"],
        listings_open=out["listings_open"],
        rebuy=out["rebuy"],
        instances_rebought=out["instances_rebought"],
        drawn_phi=drawn.astype(np.float64),
    )
