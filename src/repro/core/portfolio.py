"""Portfolios: one user, many instance types.

The paper's model treats each instance type independently (demand for a
d2.xlarge cannot be served by an m4.large, and marketplace listings are
per type), so a multi-type user is a collection of per-type simulations
sharing the selling terms. :class:`Portfolio` packages that: one
position per type, one policy across all of them, aggregate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.account import CostBreakdown, CostModel, HourlyFeeMode
from repro.core.policies import SellingPolicy
from repro.core.simulator import SimulationResult, run_policy
from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.purchasing.base import PurchasingAlgorithm
from repro.purchasing.runner import imitate
from repro.workload.base import DemandTrace, TraceLike, as_trace


@dataclass(frozen=True)
class Position:
    """One instance type's demand and reservations within a portfolio."""

    plan: PricingPlan
    demands: DemandTrace
    reservations: "object"  # per-hour counts, validated by the simulator

    @classmethod
    def imitated(
        cls, plan: PricingPlan, demands: TraceLike, algorithm: PurchasingAlgorithm
    ) -> "Position":
        """Build a position by imitating the user's purchasing."""
        schedule = imitate(demands, plan, algorithm)
        return cls(plan=plan, demands=schedule.demands,
                   reservations=schedule.reservations)


@dataclass
class PortfolioResult:
    """Aggregate of the per-type simulation results."""

    policy_name: str
    per_type: dict[str, SimulationResult]
    breakdown: CostBreakdown = field(init=False)

    def __post_init__(self) -> None:
        total = CostBreakdown()
        for result in self.per_type.values():
            total = total + result.breakdown
        self.breakdown = total

    @property
    def total_cost(self) -> float:
        return self.breakdown.total

    @property
    def instances_sold(self) -> int:
        return sum(result.instances_sold for result in self.per_type.values())

    def cost_of(self, instance_type: str) -> float:
        """Total cost of one instance type's position."""
        return self.per_type[instance_type].total_cost


class Portfolio:
    """A user's holdings across instance types."""

    def __init__(
        self,
        selling_discount: float = 0.8,
        marketplace_fee: float = 0.0,
        fee_mode: HourlyFeeMode = HourlyFeeMode.ACTIVE,
    ) -> None:
        self.selling_discount = selling_discount
        self.marketplace_fee = marketplace_fee
        self.fee_mode = fee_mode
        self._positions: dict[str, Position] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, instance_type: str) -> bool:
        return instance_type in self._positions

    @property
    def instance_types(self) -> list[str]:
        return list(self._positions)

    def add(self, position: Position) -> None:
        """Register one instance type's position (plan must be named)."""
        name = position.plan.name
        if not name:
            raise SimulationError("portfolio positions need a named plan")
        if name in self._positions:
            raise SimulationError(f"duplicate position for {name!r}")
        self._positions[name] = position

    def add_imitated(
        self, plan: PricingPlan, demands: TraceLike, algorithm: PurchasingAlgorithm
    ) -> None:
        """Convenience: imitate purchasing and add the position."""
        self.add(Position.imitated(plan, as_trace(demands), algorithm))

    def model_for(self, instance_type: str) -> CostModel:
        """The cost model applied to one position (shared terms)."""
        position = self._positions[instance_type]
        return CostModel(
            plan=position.plan,
            selling_discount=self.selling_discount,
            marketplace_fee=self.marketplace_fee,
            fee_mode=self.fee_mode,
        )

    def run(self, policy: SellingPolicy) -> PortfolioResult:
        """Run one selling policy across every position."""
        if not self._positions:
            raise SimulationError("portfolio is empty")
        per_type = {}
        for name, position in self._positions.items():
            per_type[name] = run_policy(
                position.demands,
                position.reservations,
                self.model_for(name),
                policy,
            )
        return PortfolioResult(policy_name=policy.name, per_type=per_type)

    def compare(self, policies: "list[SellingPolicy]") -> dict[str, PortfolioResult]:
        """Run several policies; returns {policy name: result}."""
        return {policy.name: self.run(policy) for policy in policies}
