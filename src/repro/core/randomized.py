"""Randomized selling: the paper's future-work direction, made concrete.

Section VII: "we would like to design a randomized online selling
algorithm … we speculate that the randomized online selling algorithm
will achieve a better possible competitive ratio." This module builds
that algorithm in the proofs' single-instance model:

* :func:`expected_online_cost` — the expected cost of drawing the
  decision spot φ from a distribution over a spot menu, each spot then
  applying Algorithm 1's break-even rule;
* :func:`adversary_profiles` — the structured adversary family the
  deterministic proofs implicitly optimise over (busy prefix of length
  ``x0`` before the spot, busy block afterwards): all two-block
  profiles on a grid;
* :func:`worst_case_expected_ratio` — the randomized algorithm's
  worst expected ratio against that family (OPT knows the profile but
  not the realised spot — the oblivious-adversary model);
* :func:`optimize_distribution` — a linear program (scipy) choosing the
  spot probabilities minimising the worst-case expected ratio; the
  classic ski-rental result suggests (and the tests confirm) that the
  optimised mixture beats every deterministic spot on the same
  adversary family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.core.breakeven import PAPER_DECISION_FRACTIONS, validate_phi
from repro.core.single import offline_single_cost, online_single_cost
from repro.errors import PolicyError
from repro.pricing.plan import PricingPlan


@dataclass(frozen=True)
class SpotDistribution:
    """A probability distribution over decision spots."""

    spots: tuple[float, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.spots) != len(self.probabilities) or not self.spots:
            raise PolicyError("spots and probabilities must align and be non-empty")
        for phi in self.spots:
            validate_phi(phi)
        if any(p < -1e-12 for p in self.probabilities):
            raise PolicyError("probabilities must be non-negative")
        if abs(sum(self.probabilities) - 1.0) > 1e-9:
            raise PolicyError(
                f"probabilities must sum to 1, got {sum(self.probabilities)!r}"
            )

    @classmethod
    def uniform(
        cls, spots: tuple[float, ...] = PAPER_DECISION_FRACTIONS
    ) -> "SpotDistribution":
        return cls(tuple(spots), tuple(1.0 / len(spots) for _ in spots))

    @classmethod
    def deterministic(cls, phi: float) -> "SpotDistribution":
        return cls((phi,), (1.0,))


def expected_online_cost(
    busy: ArrayLike, plan: PricingPlan, selling_discount: float, distribution: SpotDistribution
) -> float:
    """Expected single-instance cost when φ is drawn from ``distribution``."""
    total = 0.0
    for phi, probability in zip(distribution.spots, distribution.probabilities):
        if probability == 0.0:
            continue
        cost, _ = online_single_cost(busy, plan, selling_discount, phi)
        total += probability * cost
    return total


def adversary_profiles(period: int, grid_step: "int | None" = None) -> list[np.ndarray]:
    """Two-block busy profiles: busy on [0, k) and on [m, T), k ≤ m.

    This family contains the proofs' worst cases (the x0/x1/x2 block
    structure of Section IV-C) and is what the minimax LP optimises
    against. ``grid_step`` controls resolution (default: T/24).
    """
    if period <= 0:
        raise PolicyError(f"period must be positive, got {period!r}")
    step = grid_step or max(period // 24, 1)
    profiles = []
    cuts = list(range(0, period + 1, step))
    if cuts[-1] != period:
        cuts.append(period)
    hours = np.arange(period)
    for k in cuts:
        for m in cuts:
            if m < k:
                continue
            profiles.append((hours < k) | (hours >= m))
    return profiles


def worst_case_expected_ratio(
    plan: PricingPlan,
    selling_discount: float,
    distribution: SpotDistribution,
    profiles: "list[np.ndarray] | None" = None,
) -> float:
    """Max over the adversary family of E[online] / OPT (oblivious OPT,
    unrestricted sale instant)."""
    profiles = profiles if profiles is not None else adversary_profiles(plan.period_hours)
    worst = 0.0
    for profile in profiles:
        opt_cost, _ = offline_single_cost(profile, plan, selling_discount)
        if opt_cost <= 0:
            continue
        expected = expected_online_cost(profile, plan, selling_discount, distribution)
        worst = max(worst, expected / opt_cost)
    return worst


@dataclass(frozen=True)
class RandomizedDesign:
    """Output of the minimax optimisation."""

    distribution: SpotDistribution
    ratio: float  # the achieved worst-case expected ratio
    deterministic_ratios: dict[float, float]  # spot -> its worst-case ratio

    @property
    def best_deterministic(self) -> float:
        return min(self.deterministic_ratios.values())

    @property
    def improvement(self) -> float:
        """Relative gain of the mixture over the best single spot."""
        return 1.0 - self.ratio / self.best_deterministic


def optimize_distribution(
    plan: PricingPlan,
    selling_discount: float,
    spots: tuple[float, ...] = PAPER_DECISION_FRACTIONS,
    profiles: "list[np.ndarray] | None" = None,
) -> RandomizedDesign:
    """Choose spot probabilities minimising the worst expected ratio.

    Linear program: minimise ``t`` subject to, for every adversary
    profile ``b``: Σ_i p_i · cost_i(b) ≤ t · OPT(b), Σ p_i = 1, p ≥ 0.
    """
    from scipy.optimize import linprog

    for phi in spots:
        validate_phi(phi)
    profiles = profiles if profiles is not None else adversary_profiles(plan.period_hours)

    costs = np.zeros((len(profiles), len(spots)))
    opts = np.zeros(len(profiles))
    for row, profile in enumerate(profiles):
        opts[row], _ = offline_single_cost(profile, plan, selling_discount)
        for col, phi in enumerate(spots):
            costs[row, col], _ = online_single_cost(
                profile, plan, selling_discount, phi
            )
    keep = opts > 0
    costs, opts = costs[keep], opts[keep]

    # Variables: [p_1 .. p_n, t]; minimise t.
    n = len(spots)
    objective = np.zeros(n + 1)
    objective[-1] = 1.0
    # cost_i(b) · p − OPT(b) · t <= 0 for every profile b.
    a_ub = np.hstack([costs, -opts[:, None]])
    b_ub = np.zeros(costs.shape[0])
    a_eq = np.zeros((1, n + 1))
    a_eq[0, :n] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)]
    solution = linprog(
        objective, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not solution.success:
        raise PolicyError(f"minimax LP failed: {solution.message}")
    probabilities = np.clip(solution.x[:n], 0.0, None)
    probabilities = probabilities / probabilities.sum()
    distribution = SpotDistribution(tuple(spots), tuple(probabilities))

    deterministic = {
        phi: worst_case_expected_ratio(
            plan, selling_discount, SpotDistribution.deterministic(phi), profiles
        )
        for phi in spots
    }
    return RandomizedDesign(
        distribution=distribution,
        ratio=float(solution.x[-1]),
        deterministic_ratios=deterministic,
    )
