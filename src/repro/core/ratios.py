"""Competitive-ratio theory: the bounds of Propositions 1, 2a/2b, 3a/3b.

The paper proves, for decision fraction φ and all standard (Linux,
US-East) 1-year instances (which satisfy θ = p·T/R ∈ (1, 4) and α < 0.36):

* **Case 1** (the instance was sold; worst at ε = 1)::

      ratio < 1 + (1 − φ)·θ·(1 − α) − (1 − φ)·a          (Eqs. (22)/(37)/(46))

  With the catalog-wide θ < 4 this yields the headline bounds
  2 − α − a/4 (φ = 3/4), 3 − 2α − a/2 (φ = 1/2), 4 − 3α − 3a/4 (φ = 1/4).

* **Case 2** (the instance was kept; worst at ε = φ)::

      ratio < 1 / (1 − (1 − φ)·a)                          (Eqs. (31)/(41)/(50))

  i.e. 4/(4−a), 2/(2−a), 4/(4−3a) for the three algorithms.

The algorithm's competitive ratio is the larger of the two cases; the
paper's case predicates (e.g. α + a/4 + 4/(4−a) ≤ 2 for ``A_{3T/4}``)
decide which one binds. This module provides the general formulas, the
paper's named forms, adversarial profile constructions approaching the
Case-1/Case-2 worst cases, and a catalog-wide bounds table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.breakeven import (
    PHI_3T4,
    PHI_T2,
    PHI_T4,
    break_even_working_hours,
    validate_phi,
)
from repro.errors import PolicyError
from repro.pricing.catalog import Catalog, default_catalog
from repro.pricing.plan import PricingPlan

#: The θ supremum the paper plugs in for the standard catalog.
PAPER_THETA_SUP = 4.0


def _validate_inputs(phi: float, alpha: float, a: float) -> None:
    validate_phi(phi)
    if not 0.0 <= alpha < 1.0:
        raise PolicyError(f"alpha must lie in [0, 1), got {alpha!r}")
    if not 0.0 <= a <= 1.0:
        raise PolicyError(f"selling discount a must lie in [0, 1], got {a!r}")


def case1_bound(phi: float, alpha: float, a: float, theta: float = PAPER_THETA_SUP) -> float:
    """Case-1 bound: 1 + (1−φ)·θ·(1−α) − (1−φ)·a."""
    _validate_inputs(phi, alpha, a)
    if theta <= 0:
        raise PolicyError(f"theta must be positive, got {theta!r}")
    return 1.0 + (1.0 - phi) * theta * (1.0 - alpha) - (1.0 - phi) * a


def case2_bound(phi: float, a: float) -> float:
    """Case-2 bound: 1 / (1 − (1−φ)·a)."""
    validate_phi(phi)
    if not 0.0 <= a <= 1.0:
        raise PolicyError(f"selling discount a must lie in [0, 1], got {a!r}")
    return 1.0 / (1.0 - (1.0 - phi) * a)


def case1_binds(phi: float, alpha: float, a: float, theta: float = PAPER_THETA_SUP) -> bool:
    """The paper's case predicate: Case 2 is dominated by Case 1.

    For φ = 3/4 and θ = 4 this is exactly "α + a/4 + 4/(4−a) ≤ 2"
    (Section IV-C), and analogously for the other spots.
    """
    return case2_bound(phi, a) <= case1_bound(phi, alpha, a, theta)


def competitive_ratio(
    phi: float, alpha: float, a: float, theta: float = PAPER_THETA_SUP
) -> float:
    """The proved competitive ratio of ``A_{φT}``: max of the two cases."""
    return max(case1_bound(phi, alpha, a, theta), case2_bound(phi, a))


def competitive_ratio_for_plan(
    plan: PricingPlan, a: float, phi: float, use_paper_theta: bool = True
) -> float:
    """Ratio for one concrete instance type.

    ``use_paper_theta=True`` plugs in the catalog supremum θ = 4 (the
    paper's headline numbers); ``False`` uses the plan's own θ (a tighter,
    still valid bound per Eq. (21))."""
    theta = PAPER_THETA_SUP if use_paper_theta else plan.theta
    return competitive_ratio(phi, plan.alpha, a, theta)


# ----------------------------------------------------------------------
# The paper's named propositions
# ----------------------------------------------------------------------


def ratio_a_3t4(alpha: float, a: float) -> float:
    """Proposition 1: ``A_{3T/4}`` is (2 − α − a/4)-competitive (when the
    Case-1 predicate holds, which it does for the standard catalog)."""
    return competitive_ratio(PHI_3T4, alpha, a)


def ratio_a_t2(alpha: float, a: float) -> float:
    """Propositions 2a/2b: ``A_{T/2}`` is (3 − 2α − a/2)- or
    (2/(2−a))-competitive depending on the predicate."""
    return competitive_ratio(PHI_T2, alpha, a)


def ratio_a_t4(alpha: float, a: float) -> float:
    """Propositions 3a/3b: ``A_{T/4}`` is (4 − 3α − 3a/4)- or
    (4/(4−3a))-competitive depending on the predicate."""
    return competitive_ratio(PHI_T4, alpha, a)


def predicate_3t4(alpha: float, a: float) -> bool:
    """The literal Section IV-C predicate: α + a/4 + 4/(4−a) ≤ 2."""
    return alpha + a / 4.0 + 4.0 / (4.0 - a) <= 2.0


def predicate_t2(alpha: float, a: float) -> bool:
    """The literal Proposition 2a predicate: α + a/4 + 1/(2−a) ≤ 3/2."""
    return alpha + a / 4.0 + 1.0 / (2.0 - a) <= 1.5


def predicate_t4(alpha: float, a: float) -> bool:
    """The literal Proposition 3a predicate: α + a/4 + 4/(12−9a) ≤ 4/3."""
    return alpha + a / 4.0 + 4.0 / (12.0 - 9.0 * a) <= 4.0 / 3.0


# ----------------------------------------------------------------------
# Adversarial profiles (worst-case constructions of the proofs)
# ----------------------------------------------------------------------


def adversarial_case1_profile(
    plan: PricingPlan, a: float, phi: float
) -> np.ndarray:
    """Busy profile approaching the Case-1 worst case.

    Working time just *below* β before the decision spot (so the online
    algorithm sells) and demand every hour afterwards (so ε = 1 is where
    OPT lands and the on-demand penalty is maximal — Eq. (19) ff.).
    """
    validate_phi(phi)
    period = plan.period_hours
    decision_age = round(phi * period)
    beta = break_even_working_hours(plan, a, phi)
    x0 = min(max(int(math.ceil(beta)) - 1, 0), decision_age)
    profile = np.zeros(period, dtype=bool)
    profile[:x0] = True  # x0 busy hours, then idle until the spot
    profile[decision_age:] = True  # fully busy afterwards
    return profile


def adversarial_case2_profile(
    plan: PricingPlan, a: float, phi: float
) -> np.ndarray:
    """Busy profile approaching the Case-2 worst case.

    Working time just *above* β before the spot (so the online algorithm
    keeps) and no demand afterwards (so OPT sells immediately at ε = φ —
    Eq. (29) ff.).
    """
    validate_phi(phi)
    period = plan.period_hours
    decision_age = round(phi * period)
    beta = break_even_working_hours(plan, a, phi)
    x0 = min(int(math.floor(beta)) + 1, decision_age)
    profile = np.zeros(period, dtype=bool)
    profile[:x0] = True
    return profile


# ----------------------------------------------------------------------
# Catalog-wide bounds table
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BoundRow:
    """Proved bounds for one instance type at one decision spot."""

    instance_type: str
    phi: float
    alpha: float
    theta: float
    case1: float
    case2: float
    ratio: float
    case1_binds: bool


def bounds_table(
    a: float,
    catalog: "Catalog | None" = None,
    phis: "tuple[float, ...]" = (PHI_3T4, PHI_T2, PHI_T4),
    use_paper_theta: bool = True,
) -> list[BoundRow]:
    """Proved competitive ratios for every catalog entry and spot."""
    catalog = catalog or default_catalog()
    rows = []
    for name, plan in catalog.items():
        theta = PAPER_THETA_SUP if use_paper_theta else plan.theta
        for phi in phis:
            one = case1_bound(phi, plan.alpha, a, theta)
            two = case2_bound(phi, a)
            rows.append(
                BoundRow(
                    instance_type=name,
                    phi=phi,
                    alpha=plan.alpha,
                    theta=plan.theta,
                    case1=one,
                    case2=two,
                    ratio=max(one, two),
                    case1_binds=two <= one,
                )
            )
    return rows
