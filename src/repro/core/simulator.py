"""The reference simulator: hour-by-hour replay of Eq. (1) under a policy.

Given a demand trace ``d_t``, a reservation schedule ``n_t`` (produced by
one of the purchasing imitators of :mod:`repro.purchasing`, matching the
paper's Section VI-A setup), a :class:`~repro.core.account.CostModel` and
a :class:`~repro.core.policies.SellingPolicy`, the simulator:

1. opens the scheduled reservations each hour (booking their upfronts),
2. evaluates any instance whose decision hour arrived — computing its
   working time through the ledger's Algorithm-1 rule and asking the
   policy whether to sell (a sale takes effect at the start of the hour),
3. buys ``o_t = max(0, d_t − r_t)`` on-demand instances, and
4. bills the reserved hourly fee (per the model's fee mode).

The result carries the full per-hour cost series, every sale record, and
the instance ledger, so analyses never need to re-run anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.typing import ArrayLike

from repro.core.account import CostBreakdown, CostModel, HourlyCosts, HourlyFeeMode
from repro.core.breakeven import break_even_working_hours
from repro.core.instance import ReservedInstance
from repro.core.ledger import ReservationLedger
from repro.core.policies import DecisionContext, SellingPolicy
from repro.errors import SimulationError
from repro.workload.base import DemandTrace, TraceLike, as_trace


@dataclass(frozen=True)
class SaleRecord:
    """One marketplace sale performed by the policy."""

    instance_id: int
    hour: int
    phi: float
    working_hours: int
    beta: float
    remaining_fraction: float
    income: float


@dataclass
class SimulationResult:
    """Everything produced by one policy run."""

    policy_name: str
    horizon: int
    period: int
    demands: DemandTrace
    reservations: np.ndarray
    costs: HourlyCosts
    sales: list[SaleRecord]
    instances: list[ReservedInstance]
    on_demand: np.ndarray
    r_physical: np.ndarray
    breakdown: CostBreakdown = field(init=False)

    def __post_init__(self) -> None:
        self.breakdown = self.costs.breakdown()

    @property
    def total_cost(self) -> float:
        """Σ_t C_t — the quantity the paper compares across policies."""
        return self.breakdown.total

    @property
    def instances_reserved(self) -> int:
        return len(self.instances)

    @property
    def instances_sold(self) -> int:
        return len(self.sales)

    @property
    def total_sale_income(self) -> float:
        return self.breakdown.sale_income

    def utilisation(self) -> float:
        """Fraction of physically-active reservation-hours that were busy."""
        active_hours = int(self.r_physical.sum())
        if active_hours == 0:
            return 0.0
        busy = np.minimum(self.demands.values[: self.horizon], self.r_physical)
        return float(busy.sum()) / active_hours

    def to_dict(self) -> dict:
        """JSON-serialisable summary of the run (for pipelines/storage).

        Contains the cost breakdown, the sale records, and aggregate
        counters — not the full per-hour arrays (export those with
        :meth:`SweepResult.to_csv <repro.experiments.runner.SweepResult.to_csv>`
        or directly from the attributes).
        """
        return {
            "policy": self.policy_name,
            "horizon": self.horizon,
            "period": self.period,
            "total_cost": self.total_cost,
            "breakdown": {
                "on_demand": self.breakdown.on_demand,
                "upfront": self.breakdown.upfront,
                "reserved_hourly": self.breakdown.reserved_hourly,
                "sale_income": self.breakdown.sale_income,
            },
            "instances_reserved": self.instances_reserved,
            "instances_sold": self.instances_sold,
            "utilisation": self.utilisation(),
            "sales": [
                {
                    "instance_id": sale.instance_id,
                    "hour": sale.hour,
                    "phi": sale.phi,
                    "working_hours": sale.working_hours,
                    "beta": sale.beta,
                    "remaining_fraction": sale.remaining_fraction,
                    "income": sale.income,
                }
                for sale in self.sales
            ],
        }


def schedule_decision(
    policy: SellingPolicy,
    instance: ReservedInstance,
    horizon: int,
    pending: "dict[int, list[ReservedInstance]]",
) -> None:
    """Register ``instance`` for evaluation at its policy decision hour
    (skipping degenerate or out-of-horizon spots). Shared by the
    decoupled and coupled simulation loops."""
    decision_hour = policy.decision_hour(instance)
    if decision_hour is None:
        return
    if not instance.reserved_at < decision_hour < instance.expires_at:
        return  # degenerate spot (e.g. round(phi*T) == 0)
    if decision_hour >= horizon:
        return  # falls beyond the simulated horizon
    pending.setdefault(decision_hour, []).append(instance)


def evaluate_decision(
    policy: SellingPolicy,
    instance: ReservedInstance,
    hour: int,
    ledger: ReservationLedger,
    model: CostModel,
    costs: HourlyCosts,
    sales: "list[SaleRecord]",
) -> None:
    """Algorithm 1's per-instance evaluation at its decision hour:
    measure the working time, ask the policy, and execute a sale (income
    booked, ledger history rewritten). Shared by both simulation loops."""
    if instance.is_sold:
        return
    working = ledger.working_hours(instance, hour)
    phi = instance.age(hour) / model.period
    context = DecisionContext(
        plan=model.plan,
        selling_discount=model.selling_discount,
        phi=phi,
        beta=break_even_working_hours(model.plan, model.selling_discount, phi),
        decision_hour=hour,
        instance=instance,
    )
    if not policy.should_sell(working, context):
        return
    remaining = ledger.sell(instance, hour)
    costs.record_sale(hour, remaining, model)
    sales.append(
        SaleRecord(
            instance_id=instance.instance_id,
            hour=hour,
            phi=phi,
            working_hours=working,
            beta=context.beta,
            remaining_fraction=remaining,
            income=model.sale_income(remaining),
        )
    )


def _normalise_reservations(reservations, horizon: int) -> np.ndarray:
    array = np.asarray(reservations)
    if array.ndim != 1:
        raise SimulationError(
            f"reservations must be a 1-D per-hour count array, got shape {array.shape}"
        )
    if array.size != horizon:
        raise SimulationError(
            f"reservations cover {array.size} hours but the demand trace "
            f"covers {horizon}"
        )
    if np.any(array < 0):
        raise SimulationError("reservation counts must be non-negative")
    as_int = array.astype(np.int64)
    if not np.array_equal(as_int, array):
        raise SimulationError("reservation counts must be whole numbers")
    return as_int


class SellingSimulator:
    """Runs one selling policy over a (demands, reservations) input."""

    def __init__(self, model: CostModel, policy: SellingPolicy) -> None:
        self.model = model
        self.policy = policy

    def run(self, demands: TraceLike, reservations: ArrayLike) -> SimulationResult:
        """Simulate the full horizon; see the module docstring for the
        per-hour sequence of events."""
        trace = as_trace(demands)
        horizon = len(trace)
        schedule = _normalise_reservations(reservations, horizon)
        period = self.model.period
        ledger = ReservationLedger(horizon, period, trace.values)
        costs = HourlyCosts(horizon)
        sales: list[SaleRecord] = []
        on_demand = np.zeros(horizon, dtype=np.int64)
        # decision hour -> instances evaluated then, in reservation order.
        pending: dict[int, list[ReservedInstance]] = {}

        for hour in range(horizon):
            count = int(schedule[hour])
            if count:
                created = ledger.reserve(hour, count)
                costs.record_upfront(hour, count, self.model)
                for instance in created:
                    schedule_decision(self.policy, instance, horizon, pending)

            for instance in pending.pop(hour, ()):  # sales effective this hour
                evaluate_decision(
                    self.policy, instance, hour, ledger, self.model, costs, sales
                )

            active = ledger.active_count(hour)
            needed = ledger.on_demand_needed(hour)
            on_demand[hour] = needed
            costs.record_on_demand(hour, needed, self.model)
            if self.model.fee_mode is HourlyFeeMode.ACTIVE:
                costs.record_reserved_hourly(hour, active, self.model)
            else:
                costs.record_reserved_hourly(hour, ledger.busy_count(hour), self.model)

        return SimulationResult(
            policy_name=self.policy.name,
            horizon=horizon,
            period=period,
            demands=trace,
            reservations=schedule,
            costs=costs,
            sales=sales,
            instances=ledger.instances,
            on_demand=on_demand,
            r_physical=ledger.r_physical.copy(),
        )


def run_policy(
    demands: TraceLike,
    reservations: ArrayLike,
    model: CostModel,
    policy: SellingPolicy,
) -> SimulationResult:
    """Functional shorthand for ``SellingSimulator(model, policy).run(...)``."""
    return SellingSimulator(model, policy).run(demands, reservations)
