"""The proofs' single-instance setting (Sections IV-A and IV-C).

Every proposition in the paper reasons about *one* reserved instance and
the demands it would serve: ``x0`` busy hours before the decision spot,
``x1`` between the spot and the offline sale instant ε·T, ``x2`` after.
Costs in the proofs bill the discounted hourly fee per *busy* hour and
prorate the upfront (the ``ε·R`` terms of Eqs. (4)–(5)) — the
``HourlyFeeMode.USAGE`` convention.

This module computes, for an arbitrary busy profile over one period:

* the online algorithm's cost (Eq. (15) / Eq. (25) depending on the case),
* the offline optimum's cost over every sale instant (restricted to
  ε ∈ [φ, 1] as in the proofs, or unrestricted),
* their ratio — which the property tests compare against the proved
  bounds of :mod:`repro.core.ratios`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.core.breakeven import break_even_working_hours, validate_phi
from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan


@dataclass(frozen=True)
class SingleInstanceOutcome:
    """Result of the single-instance online-vs-offline comparison."""

    online_cost: float
    offline_cost: float
    online_sold: bool
    offline_sell_hour: "int | None"
    x0: int  # busy hours before the decision spot

    @property
    def ratio(self) -> float:
        """Empirical competitive ratio (inf when OPT is zero-cost)."""
        if self.offline_cost <= 0:
            return math.inf
        return self.online_cost / self.offline_cost


def _validate_busy(busy: ArrayLike, period: int) -> np.ndarray:
    profile = np.asarray(busy).astype(bool)
    if profile.ndim != 1 or profile.size != period:
        raise SimulationError(
            f"busy profile must be 1-D of length {period}, got shape {profile.shape}"
        )
    return profile


def online_single_cost(
    busy: ArrayLike, plan: PricingPlan, selling_discount: float, phi: float
) -> "tuple[float, bool]":
    """Cost of ``A_{φT}`` on one instance, in the proof model.

    Returns ``(cost, sold)``. If the working time ``x0`` before φT is
    below β the instance is sold at φT (Eq. (15)); otherwise it is kept
    (Eq. (25))."""
    validate_phi(phi)
    profile = _validate_busy(busy, plan.period_hours)
    decision_age = round(phi * plan.period_hours)
    x0 = int(profile[:decision_age].sum())
    beta = break_even_working_hours(plan, selling_discount, phi)
    alpha_p = plan.alpha * plan.on_demand_hourly
    if x0 < beta:
        residual = int(profile[decision_age:].sum())
        income = (1.0 - phi) * selling_discount * plan.upfront
        cost = (
            plan.upfront
            + alpha_p * x0
            - income
            + plan.on_demand_hourly * residual
        )
        return cost, True
    return plan.upfront + alpha_p * int(profile.sum()), False


def offline_single_cost(
    busy: ArrayLike,
    plan: PricingPlan,
    selling_discount: float,
    min_age: "int | None" = None,
) -> "tuple[float, int | None]":
    """The offline optimum's cost on one instance, in the proof model.

    Evaluates every sale age ``ts ∈ [min_age, T)`` (plus keeping) where
    selling at age ``ts`` costs ``R + αp·busy[:ts] − (1 − ts/T)·a·R +
    p·busy[ts:]``. ``min_age`` defaults to 1; the proofs restrict the
    benchmark to ε ∈ [φ, 1], i.e. ``min_age = round(φT)``."""
    profile = _validate_busy(busy, plan.period_hours)
    period = plan.period_hours
    if min_age is None:
        min_age = 1
    if not 1 <= min_age <= period:
        raise SimulationError(f"min_age must lie in [1, {period}], got {min_age!r}")
    alpha_p = plan.alpha * plan.on_demand_hourly
    busy_int = profile.astype(np.int64)
    prefix = np.concatenate(([0], np.cumsum(busy_int)))  # prefix[k] = busy[:k]
    total = int(prefix[-1])
    keep_cost = plan.upfront + alpha_p * total

    ages = np.arange(min_age, period)
    if ages.size == 0:
        return keep_cost, None
    incomes = (1.0 - ages / period) * selling_discount * plan.upfront
    sell_costs = (
        plan.upfront
        + alpha_p * prefix[ages]
        - incomes
        + plan.on_demand_hourly * (total - prefix[ages])
    )
    best = int(np.argmin(sell_costs))
    if sell_costs[best] < keep_cost:
        return float(sell_costs[best]), int(ages[best])
    return keep_cost, None


def compare_single_instance(
    busy: ArrayLike,
    plan: PricingPlan,
    selling_discount: float,
    phi: float,
    restrict_offline: bool = True,
) -> SingleInstanceOutcome:
    """Run both the online algorithm and OPT on one busy profile.

    ``restrict_offline=True`` matches the proofs (OPT sells no earlier
    than the online decision spot); ``False`` gives OPT the full range.
    """
    validate_phi(phi)
    profile = _validate_busy(busy, plan.period_hours)
    decision_age = round(phi * plan.period_hours)
    online_cost, sold = online_single_cost(profile, plan, selling_discount, phi)
    min_age = decision_age if restrict_offline else 1
    offline_cost, sell_hour = offline_single_cost(
        profile, plan, selling_discount, min_age=max(min_age, 1)
    )
    return SingleInstanceOutcome(
        online_cost=online_cost,
        offline_cost=offline_cost,
        online_sold=sold,
        offline_sell_hour=sell_hour,
        x0=int(profile[:decision_age].sum()),
    )
