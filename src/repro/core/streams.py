"""Per-key deterministic uniform streams shared by every random draw.

The clearing engine (PR 9) established the repository's randomness
contract: every stochastic draw comes from a ``numpy`` generator rooted
on ``(seed, key)``, where the key is a stable per-entity identity — a
user id in the sweeps, an instance id in the serving layer. Python's
built-in ``hash`` is randomised per process, so string keys are folded
through SHA-256 instead; the same key yields the same stream in every
process and session, which is what makes the population tensor engine,
the per-user engine, and a killed-and-restored server draw *identical*
values.

This module is the single home of that contract. ``repro.core.clearing``
draws its listing delays from here, and the randomized selling policy
(the paper's §VII future-work direction) draws its per-entity decision
spots from here — one uniform per entity, inverted through the spot
distribution's CDF with ``searchsorted``, exactly the clearing model's
delay-draw idiom.

Because ``Generator.random(size=k)`` consumes the stream identically to
``k`` scalar ``random()`` calls, vectorised and scalar consumers of the
same key agree bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import SimulationError


def key_to_int(key: object) -> int:
    """Deterministic non-negative integer identity for a stream key.

    Python's built-in ``hash`` is randomised per process, so string keys
    (user ids, serve instance ids) are folded through SHA-256 instead —
    the same key yields the same stream in every process and session.
    """
    if isinstance(key, bool):
        raise SimulationError(f"stream key must not be a bool: {key!r}")
    if isinstance(key, (int, np.integer)):
        value = int(key)
        if value < 0:
            raise SimulationError(
                f"integer stream keys must be >= 0, got {value!r}"
            )
        return value
    if isinstance(key, str):
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:16], "big")
    raise SimulationError(
        f"stream key must be an int or str, got {type(key).__name__}"
    )


def validate_seed(seed: object) -> int:
    """A non-negative integer stream seed; bools and floats are rejected."""
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise SimulationError(f"seed must be an integer, got {seed!r}")
    if int(seed) < 0:
        raise SimulationError(f"seed must be >= 0, got {seed!r}")
    return int(seed)


def stream(seed: int, key: object) -> np.random.Generator:
    """The seeded per-key uniform stream.

    Every consumer — clearing delays, randomized decision spots — gets
    its own generator per ``(seed, key)`` pair; distinct seeds give
    statistically independent draw families over the same keys.
    """
    return np.random.default_rng((int(seed), key_to_int(key)))


def uniform(seed: int, key: object) -> float:
    """One uniform in ``[0, 1)`` from the per-key stream's head.

    The scalar form of the contract: consuming exactly one draw leaves
    the stream positioned identically to ``stream(seed, key).random()``,
    so a caller that later needs more draws from the same key can
    recreate the generator and skip one.
    """
    return float(stream(seed, key).random())
