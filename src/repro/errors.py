"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Subclasses are grouped by subsystem:
pricing, workload, simulation, marketplace, and experiment configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class PricingError(ReproError):
    """Invalid pricing parameters (negative rates, discount out of range)."""


class UnknownInstanceTypeError(PricingError):
    """An instance type was requested that is not in the catalog."""

    def __init__(self, instance_type: str) -> None:
        super().__init__(f"unknown instance type: {instance_type!r}")
        self.instance_type = instance_type


class WorkloadError(ReproError):
    """Invalid workload trace or generator configuration."""


class TraceLengthError(WorkloadError):
    """A demand trace is shorter than the simulation requires."""


class SimulationError(ReproError):
    """Inconsistent simulation state or invalid simulation input."""


class PolicyError(SimulationError):
    """Invalid selling/purchasing policy configuration."""


class MarketplaceError(ReproError):
    """Invalid marketplace operation (bad listing, double sale...)."""


class ListingError(MarketplaceError):
    """A listing violates the marketplace rules (e.g. above prorated cap)."""


class ExperimentError(ReproError):
    """Invalid experiment configuration."""
