"""Experiment harness: one module per table/figure of Section VI."""

from repro.experiments import (  # noqa: F401  (re-exported experiment modules)
    ablations,
    breakdown,
    fig1,
    fig2,
    fig3,
    fig4,
    liquidity,
    optgap,
    stability,
    table1,
    table2,
    table3,
    theory,
)
from repro.experiments.config import (
    PAPER_ALPHA,
    PAPER_SELLING_DISCOUNT,
    ExperimentConfig,
)
from repro.core.policies import (
    ALL_SELLING_POLICIES,
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    POLICY_KEEP,
    POLICY_OPT,
)
from repro.experiments.population import ExperimentUser, build_experiment_population
from repro.experiments.runner import (
    SWEEP_ENGINES,
    SweepResult,
    UserOutcome,
    run_sweep,
    run_user,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_ALPHA",
    "PAPER_SELLING_DISCOUNT",
    "ExperimentUser",
    "build_experiment_population",
    "SWEEP_ENGINES",
    "run_sweep",
    "run_user",
    "SweepResult",
    "UserOutcome",
    "ONLINE_POLICIES",
    "ALL_SELLING_POLICIES",
    "POLICY_A_3T4",
    "POLICY_A_T2",
    "POLICY_A_T4",
    "POLICY_KEEP",
    "POLICY_OPT",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "table2",
    "table3",
    "theory",
    "ablations",
    "stability",
    "optgap",
    "breakdown",
    "liquidity",
]
