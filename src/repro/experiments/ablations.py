"""Ablations over the design choices DESIGN.md calls out.

Not figures from the paper, but the sensitivity studies its design
implies:

* **selling-discount sweep** — how the savings of each algorithm move
  with the seller's ``a`` (the paper fixes one value; Eq. (1)'s income is
  linear in it, the decisions are not: β scales with ``a`` too);
* **decision-fraction sweep** — the generalised ``A_{φT}`` over a φ grid,
  probing the paper's future-work question of arbitrary spots (including
  the randomized-spot policy);
* **marketplace-fee sweep** — Eq. (1) books income gross of Amazon's 12%
  cut; this quantifies what explicit fees change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.fastsim import FastPolicyKind, run_fast
from repro.core.policies import (
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    RandomizedSellingPolicy,
)
from repro.core.simulator import run_policy
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import ExperimentUser, build_experiment_population

#: Default sweeps.
DISCOUNT_GRID = (0.2, 0.4, 0.6, 0.8, 1.0)
PHI_GRID = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875)
FEE_GRID = (0.0, 0.12, 0.25)
THRESHOLD_GRID = (0.5, 1.0, 1.5, 2.0)


@dataclass(frozen=True)
class AblationResult:
    config: ExperimentConfig
    discount_sweep: dict[float, dict[str, float]]  # a -> policy -> mean norm. cost
    phi_sweep: dict[float, float]  # phi -> mean normalized cost
    randomized_mean: float  # randomized-spot policy, mean normalized cost
    fee_sweep: dict[float, dict[str, float]]  # fee -> policy -> mean norm. cost
    threshold_sweep: dict[float, float]  # beta scale -> mean norm. cost (A_{3T/4})
    coupling: dict[str, float]  # decoupled vs coupled mean norm. cost (A_{T/4})


def _mean_normalized(
    users: "list[ExperimentUser]",
    model,
    phi: float,
    kind: FastPolicyKind = FastPolicyKind.ONLINE,
) -> float:
    """Mean over users of (policy cost / keep cost)."""
    ratios = []
    for user in users:
        d = user.schedule.demands.values
        n = user.schedule.reservations
        keep = run_fast(d, n, model, kind=FastPolicyKind.KEEP_RESERVED).total_cost
        if keep <= 0:
            continue
        cost = run_fast(d, n, model, phi=phi, kind=kind).total_cost
        ratios.append(cost / keep)
    return float(np.mean(ratios))


def run(config: ExperimentConfig, users: "list[ExperimentUser] | None" = None) -> AblationResult:
    if users is None:
        users = build_experiment_population(config)

    discount_sweep = {}
    for a in DISCOUNT_GRID:
        model = config.scaled(selling_discount=a).cost_model()
        discount_sweep[a] = {
            POLICY_A_3T4: _mean_normalized(users, model, 0.75),
            POLICY_A_T2: _mean_normalized(users, model, 0.5),
            POLICY_A_T4: _mean_normalized(users, model, 0.25),
        }

    model = config.cost_model()
    phi_sweep = {phi: _mean_normalized(users, model, phi) for phi in PHI_GRID}

    randomized = RandomizedSellingPolicy(seed=config.seed)
    ratios = []
    for user in users:
        d = user.schedule.demands.values
        n = user.schedule.reservations
        keep = run_fast(d, n, model, kind=FastPolicyKind.KEEP_RESERVED).total_cost
        if keep <= 0:
            continue
        cost = run_policy(user.schedule.demands, n, model, randomized).total_cost
        ratios.append(cost / keep)
    randomized_mean = float(np.mean(ratios))

    fee_sweep = {}
    for fee in FEE_GRID:
        fee_model = config.scaled(marketplace_fee=fee).cost_model()
        fee_sweep[fee] = {
            POLICY_A_3T4: _mean_normalized(users, fee_model, 0.75),
            POLICY_A_T2: _mean_normalized(users, fee_model, 0.5),
            POLICY_A_T4: _mean_normalized(users, fee_model, 0.25),
        }

    # Sensitivity of Algorithm 1's "sell iff working < beta" threshold.
    threshold_sweep = {}
    for scale in THRESHOLD_GRID:
        ratios = []
        for user in users:
            d = user.schedule.demands.values
            n = user.schedule.reservations
            keep = run_fast(d, n, model, kind=FastPolicyKind.KEEP_RESERVED).total_cost
            if keep <= 0:
                continue
            cost = run_fast(d, n, model, phi=0.75, threshold_scale=scale).total_cost
            ratios.append(cost / keep)
        threshold_sweep[scale] = float(np.mean(ratios))

    # Coupled purchasing (re-buying after sales) vs the paper's decoupled
    # pipeline, for A_{T/4} where the most gets sold.
    from repro.core.coupled import run_coupled
    from repro.core.policies import OnlineSellingPolicy
    from repro.purchasing.runner import paper_imitators
    from repro.purchasing.stepper import stepper_for

    imitators = {a.name: a for a in paper_imitators(seed=config.seed)}
    decoupled_ratios, coupled_ratios = [], []
    plan = config.plan()
    for user in users:
        d = user.schedule.demands.values
        n = user.schedule.reservations
        keep = run_fast(d, n, model, kind=FastPolicyKind.KEEP_RESERVED).total_cost
        if keep <= 0:
            continue
        decoupled_ratios.append(run_fast(d, n, model, phi=0.25).total_cost / keep)
        stepper = stepper_for(imitators[user.imitator_name], plan)
        coupled = run_coupled(
            user.schedule.demands, stepper, model, OnlineSellingPolicy.a_t4()
        )
        coupled_ratios.append(coupled.total_cost / keep)
    coupling = {
        "decoupled": float(np.mean(decoupled_ratios)),
        "coupled": float(np.mean(coupled_ratios)),
    }

    return AblationResult(
        config=config,
        discount_sweep=discount_sweep,
        phi_sweep=phi_sweep,
        randomized_mean=randomized_mean,
        fee_sweep=fee_sweep,
        threshold_sweep=threshold_sweep,
        coupling=coupling,
    )


def render(result: AblationResult) -> str:
    pieces = ["Ablations — mean cost normalized to Keep-Reserved"]

    headers = ["a", POLICY_A_3T4, POLICY_A_T2, POLICY_A_T4]
    rows = [
        [a, row[POLICY_A_3T4], row[POLICY_A_T2], row[POLICY_A_T4]]
        for a, row in result.discount_sweep.items()
    ]
    pieces.append("")
    pieces.append(format_table(headers, rows, title="selling-discount sweep"))

    headers = ["phi", "mean normalized cost"]
    rows = [[f"{phi:g}", value] for phi, value in result.phi_sweep.items()]
    pieces.append("")
    pieces.append(
        format_table(headers, rows, title="decision-fraction sweep (A_{phi*T})")
    )
    pieces.append(
        f"randomized-spot policy (future work): {result.randomized_mean:.4f}"
    )

    headers = ["fee", POLICY_A_3T4, POLICY_A_T2, POLICY_A_T4]
    rows = [
        [fee, row[POLICY_A_3T4], row[POLICY_A_T2], row[POLICY_A_T4]]
        for fee, row in result.fee_sweep.items()
    ]
    pieces.append("")
    pieces.append(format_table(headers, rows, title="marketplace-fee sweep"))

    headers = ["beta scale", "mean normalized cost (A_{3T/4})"]
    rows = [[scale, value] for scale, value in result.threshold_sweep.items()]
    pieces.append("")
    pieces.append(
        format_table(headers, rows, title="break-even threshold sensitivity")
    )

    pieces.append("")
    pieces.append(
        format_table(
            ["pipeline", "mean normalized cost (A_{T/4})"],
            [[name, value] for name, value in result.coupling.items()],
            title="coupled purchasing (re-buy after sales) vs decoupled",
        )
    )
    return "\n".join(pieces)
