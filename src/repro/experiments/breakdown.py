"""Savings breakdown by purchasing behaviour (diagnostic experiment).

Section VI-A imitates reservation behaviour with four algorithms but the
paper never reports results *per imitator*. This experiment does: mean
normalized cost per (imitator × policy) plus the Eq. (1) flow
decomposition (income / avoided fees / extra on-demand) aggregated per
imitator — answering which kind of user the marketplace actually helps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.diagnostics import decompose_savings
from repro.analysis.tables import format_table
from repro.core.simulator import run_policy
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import ExperimentUser, build_experiment_population
from repro.core.policies import (
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    KeepReservedPolicy,
    OnlineSellingPolicy,
)


@dataclass(frozen=True)
class ImitatorRow:
    """Aggregates for one purchasing behaviour."""

    imitator: str
    users: int
    reservations_per_user: float
    mean_normalized: dict[str, float]  # policy -> mean normalized cost
    income_share: float  # share of A_{T/4} saving from marketplace income
    fee_share: float  # share from avoided reserved-hourly fees


@dataclass(frozen=True)
class BreakdownResult:
    config: ExperimentConfig
    rows: list[ImitatorRow]

    def row(self, imitator: str) -> ImitatorRow:
        """Look one imitator's aggregates up by name."""
        for row in self.rows:
            if row.imitator == imitator:
                return row
        raise ExperimentError(f"no imitator {imitator!r} in the breakdown")


def run(
    config: ExperimentConfig,
    users: "list[ExperimentUser] | None" = None,
) -> BreakdownResult:
    """Aggregate savings per purchasing imitator."""
    if users is None:
        users = build_experiment_population(config)
    model = config.cost_model()
    by_imitator: dict[str, list[ExperimentUser]] = {}
    for user in users:
        by_imitator.setdefault(user.imitator_name, []).append(user)

    rows = []
    for imitator, members in sorted(by_imitator.items()):
        normalized: dict[str, list[float]] = {name: [] for name in ONLINE_POLICIES}
        income_total = 0.0
        fees_total = 0.0
        saving_total = 0.0
        for user in members:
            demands = user.schedule.demands
            reservations = user.schedule.reservations
            keep = run_policy(demands, reservations, model, KeepReservedPolicy())
            if keep.total_cost <= 0:
                continue
            for name, phi in ONLINE_POLICIES.items():
                result = run_policy(
                    demands, reservations, model, OnlineSellingPolicy(phi)
                )
                normalized[name].append(result.total_cost / keep.total_cost)
                if name == POLICY_A_T4:
                    waterfall = decompose_savings(keep, result)
                    income_total += waterfall.sale_income
                    fees_total += waterfall.avoided_reserved_fees
                    saving_total += waterfall.saving
        if not normalized[POLICY_A_T4]:
            continue
        gross_gain = income_total + fees_total
        rows.append(
            ImitatorRow(
                imitator=imitator,
                users=len(members),
                reservations_per_user=float(
                    np.mean([user.schedule.total_reserved for user in members])
                ),
                mean_normalized={
                    name: float(np.mean(values))
                    for name, values in normalized.items()
                },
                income_share=income_total / gross_gain if gross_gain else 0.0,
                fee_share=fees_total / gross_gain if gross_gain else 0.0,
            )
        )
    if not rows:
        raise ExperimentError("no imitator had users with positive keep cost")
    return BreakdownResult(config=config, rows=rows)


def render(result: BreakdownResult) -> str:
    headers = [
        "Imitator", "users", "RIs/user",
        POLICY_A_3T4, POLICY_A_T2, POLICY_A_T4,
        "income share", "fee share",
    ]
    rows = []
    for row in result.rows:
        rows.append([
            row.imitator,
            row.users,
            row.reservations_per_user,
            row.mean_normalized[POLICY_A_3T4],
            row.mean_normalized[POLICY_A_T2],
            row.mean_normalized[POLICY_A_T4],
            f"{row.income_share:.0%}",
            f"{row.fee_share:.0%}",
        ])
    return format_table(
        headers,
        rows,
        float_format="{:.3f}",
        title=(
            "Savings by purchasing behaviour (mean normalized cost; "
            "gross-gain shares for A_{T/4})"
        ),
    )
