"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments table1
    repro-experiments fig3 --scale quick
    repro-experiments all --scale paper --seed 7
    python -m repro fig4
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.clearing import LIQUIDITY_REGIMES, ClearingModel
from repro.core.policyspec import parse_policies
from repro.experiments import (
    ablations,
    breakdown,
    fig1,
    liquidity,
    optgap,
    fig2,
    fig3,
    fig4,
    randomized,
    stability,
    table1,
    table2,
    table3,
    theory,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SWEEP_ENGINES, SweepResult, run_sweep
from repro.parallel.cache import DEFAULT_CACHE_ROOT

_SCALES = {
    "quick": ExperimentConfig.quick,
    "default": ExperimentConfig.default,
    "paper": ExperimentConfig.paper_scale,
}

#: Experiments that consume a shared population sweep.
_SWEEP_EXPERIMENTS = ("fig3", "fig4", "table2", "table3")

_ALL = ("table1", "fig1", "fig2", "fig3", "fig4", "table2", "table3", "theory", "ablations")

#: Extra experiments not part of ``all`` (opt-in: slower or exploratory).
_EXTRA = ("stability", "optgap", "breakdown", "liquidity", "randomized")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'To Sell or Not To Sell' "
            "(ICDCS 2018)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=(*_ALL, *_EXTRA, "all"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale preset (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=2018, help="population seed (default: %(default)s)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each report to DIR/<experiment>.txt",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "process-pool size for the population sweep "
            "(1 = serial, 0 = one per core; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=SWEEP_ENGINES,
        default="user",
        help=(
            "sweep execution engine: 'user' simulates one user at a time, "
            "'population' runs user-blocks as (users x hours) tensors; "
            "results are bit-identical (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse per-user sweep results cached on disk (see --cache-dir)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(DEFAULT_CACHE_ROOT),
        metavar="DIR",
        help="root of the on-disk result cache (default: %(default)s)",
    )
    parser.add_argument(
        "--clearing",
        choices=("off", *sorted(LIQUIDITY_REGIMES)),
        default="off",
        help=(
            "marketplace liquidity regime for the population sweep: sales "
            "become pending listings that clear stochastically instead of "
            "instantly ('off' keeps the paper's instant-sale model; "
            "default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--clearing-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed of the clearing model's hazard draws (default: %(default)s)",
    )
    parser.add_argument(
        "--policies",
        default=None,
        metavar="SPECS",
        help=(
            "extra policy specs for the population sweep, ';'-separated "
            "(specs contain commas), e.g. "
            "\"randomized:seed=7;cancellation:phi=0.75\"; see "
            "docs/randomized.md for the grammar"
        ),
    )
    return parser


def run_experiment(
    name: str,
    config: ExperimentConfig,
    sweep: "SweepResult | None" = None,
    *,
    clearing_seed: int = 0,
    workers: int = 1,
    cache: "Path | None" = None,
    engine: str = "user",
) -> str:
    """Run one experiment by name and return its rendered report.

    ``clearing_seed``/``workers``/``cache``/``engine`` only matter to
    the ``liquidity`` experiment, which runs its own multi-regime sweeps
    instead of consuming the shared one.
    """
    if name == "table1":
        return table1.render(table1.run())
    if name == "fig1":
        return fig1.render(fig1.run(config))
    if name == "fig2":
        return fig2.render(fig2.run(config))
    if name == "theory":
        return theory.render(theory.run(config))
    if name == "ablations":
        return ablations.render(ablations.run(config))
    if name == "stability":
        return stability.render(stability.run(config))
    if name == "optgap":
        return optgap.render(optgap.run(config))
    if name == "breakdown":
        return breakdown.render(breakdown.run(config))
    if name == "randomized":
        return randomized.render(randomized.run(config))
    if name == "liquidity":
        return liquidity.render(
            liquidity.run(
                config,
                clearing_seed=clearing_seed,
                workers=workers,
                cache=cache,
                engine=engine,
            )
        )
    if name in _SWEEP_EXPERIMENTS:
        if sweep is None:
            sweep = run_sweep(config)
        module = {"fig3": fig3, "fig4": fig4, "table2": table2, "table3": table3}[name]
        return module.render(module.run(config, sweep=sweep))
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    config = _SCALES[args.scale](seed=args.seed)
    if args.policies:
        config = config.scaled(
            policies=tuple(
                spec.canonical() for spec in parse_policies(args.policies)
            )
        )
    names = _ALL if args.experiment == "all" else (args.experiment,)
    clearing = (
        ClearingModel.for_regime(args.clearing, seed=args.clearing_seed)
        if args.clearing != "off"
        else None
    )
    sweep = None
    if any(name in _SWEEP_EXPERIMENTS for name in names):
        started = time.perf_counter()
        print(
            f"running population sweep ({config.total_users} users, "
            f"T={config.period_hours}h, horizon={config.horizon}h, "
            f"workers={args.workers or 'auto'}, engine={args.engine}"
            f"{', cached' if args.cache else ''}"
            f"{f', clearing={args.clearing}' if clearing is not None else ''})...",
            file=sys.stderr,
        )
        sweep = run_sweep(
            config,
            workers=args.workers,
            cache=args.cache_dir if args.cache else None,
            engine=args.engine,
            clearing=clearing,
        )
        print(f"sweep done in {time.perf_counter() - started:.1f}s", file=sys.stderr)
        if sweep.timing is not None:
            print(sweep.timing.render(), file=sys.stderr)
    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)
    for name in names:
        report = run_experiment(
            name,
            config,
            sweep=sweep,
            clearing_seed=args.clearing_seed,
            workers=args.workers,
            cache=args.cache_dir if args.cache else None,
            engine=args.engine,
        )
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(report)
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
            documents: dict[str, str] = {}
            if name in ("fig3", "fig4") and sweep is not None:
                module = {"fig3": fig3, "fig4": fig4}[name]
                documents = module.to_svg(module.run(config, sweep=sweep))
            elif name == "fig2":
                documents = fig2.to_svg(fig2.run(config))
            elif name == "fig1":
                documents = fig1.to_svg(fig1.run(config))
            for file_name, document in documents.items():
                (args.output / file_name).write_text(document + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
