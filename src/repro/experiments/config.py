"""Experiment configuration (Section VI-A's settings, scalable).

The paper's setup: 300 users (100 per fluctuation group), d2.xlarge
(Linux, US East) with upfront $1506, on-demand $0.69/h, α = 0.25, 1-year
reservations, selling discount chosen by the seller (the worked example
uses 20% off, a = 0.8), reservation behaviour imitated by four purchasing
algorithms.

Because every quantity in the model is expressed in fractions of the
period ``T`` (β, the decision spots, the prorated income), the period can
be scaled down — with the upfront scaled proportionally, preserving θ —
without changing any algorithmic behaviour. Three presets:

* ``quick()`` — CI-size: T = 336 h, 15 users/group;
* ``default()`` — bench-size: T = 672 h, 50 users/group;
* ``paper_scale()`` — the full Section VI setup: T = 8760 h, 100/group.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.account import CostModel, HourlyFeeMode
from repro.errors import ExperimentError
from repro.pricing.catalog import paper_experiment_plan
from repro.pricing.plan import HOURS_PER_YEAR, PricingPlan

#: The paper's experiment instance parameters (Section VI-A).
PAPER_ALPHA = 0.25
PAPER_SELLING_DISCOUNT = 0.8


def _canonical_policy_specs(specs: "tuple[str, ...]") -> "tuple[str, ...]":
    """Parse, canonicalise, and name-check extra sweep policy specs."""
    from repro.core import policies as _policies
    from repro.core.policyspec import PolicySpec

    standard = {
        _policies.POLICY_KEEP,
        _policies.POLICY_OPT,
        *_policies.ONLINE_POLICIES,
        *_policies.ALL_SELLING_POLICIES,
    }
    canonical: "list[str]" = []
    names: "list[str]" = []
    for spec in specs:
        parsed = PolicySpec(spec)
        name = parsed.build().name
        if name in standard:
            raise ExperimentError(
                f"policy spec {parsed.canonical()!r} produces the display "
                f"name {name!r}, which collides with the standard sweep "
                "set; give it a distinct name=... parameter"
            )
        if name in names:
            raise ExperimentError(
                f"policy specs produce the duplicate display name {name!r}; "
                "give each a distinct name=... parameter"
            )
        canonical.append(parsed.canonical())
        names.append(name)
    return tuple(canonical)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scalable rendition of the paper's experimental settings."""

    users_per_group: int = 50
    period_hours: int = 672
    horizon_periods: float = 2.0
    seed: int = 2018  # the paper's publication year; any value works
    selling_discount: float = PAPER_SELLING_DISCOUNT
    alpha: float = PAPER_ALPHA
    mean_demand: float = 5.0
    marketplace_fee: float = 0.0
    fee_mode: HourlyFeeMode = HourlyFeeMode.ACTIVE
    #: Extra policy specs (see :mod:`repro.core.policyspec`) appended
    #: after the standard sweep set — canonical spec strings, stored
    #: declaratively so the configuration (and the cache key derived
    #: from :meth:`content_hash`) never carries pickled policy objects.
    policies: "tuple[str, ...]" = ()
    label: str = "default"

    def __post_init__(self) -> None:
        if self.users_per_group <= 0:
            raise ExperimentError(
                f"users_per_group must be positive, got {self.users_per_group!r}"
            )
        if self.period_hours < 8 or self.period_hours % 4 != 0:
            raise ExperimentError(
                "period_hours must be a multiple of 4 (the decision spots "
                f"T/4, T/2, 3T/4 must be whole hours), got {self.period_hours!r}"
            )
        if self.horizon_periods < 1.0:
            raise ExperimentError(
                f"horizon_periods must be >= 1, got {self.horizon_periods!r}"
            )
        if not 0.0 <= self.selling_discount <= 1.0:
            raise ExperimentError(
                f"selling_discount must lie in [0, 1], got {self.selling_discount!r}"
            )
        if self.policies:
            object.__setattr__(
                self, "policies", _canonical_policy_specs(self.policies)
            )

    # ------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Simulated hours; reservations made in the first period always
        complete their decision spot inside the horizon."""
        return round(self.horizon_periods * self.period_hours)

    @property
    def total_users(self) -> int:
        return 3 * self.users_per_group

    def plan(self) -> PricingPlan:
        """The d2.xlarge plan at this config's scale (θ preserved)."""
        base = paper_experiment_plan(alpha=self.alpha)
        if self.period_hours == base.period_hours:
            return base
        return base.with_period(self.period_hours)

    def cost_model(self) -> CostModel:
        """The Eq. (1) cost model implied by this configuration."""
        return CostModel(
            plan=self.plan(),
            selling_discount=self.selling_discount,
            marketplace_fee=self.marketplace_fee,
            fee_mode=self.fee_mode,
        )

    def scaled(self, **overrides: object) -> "ExperimentConfig":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    def content_hash(self) -> str:
        """Stable digest of every field that can influence a result.

        Deterministic across processes and sessions (unlike ``hash``),
        this is the configuration component of the sweep cache key — any
        field change, including the ``label``-excluded ones below, must
        produce a different digest or the cache would serve stale
        outcomes. ``label`` is presentation-only and deliberately left
        out so renaming a preset does not cold-start the cache.
        """
        from repro.parallel.hashing import stable_hash

        key: "dict[str, object]" = {
            "users_per_group": self.users_per_group,
            "period_hours": self.period_hours,
            "horizon_periods": self.horizon_periods,
            "seed": self.seed,
            "selling_discount": self.selling_discount,
            "alpha": self.alpha,
            "mean_demand": self.mean_demand,
            "marketplace_fee": self.marketplace_fee,
            "fee_mode": self.fee_mode,
        }
        if self.policies:
            # Only added when present, so configurations predating the
            # policy-spec field keep their historical digests (an empty
            # tuple and an absent field must hash identically).
            key["policies"] = self.policies
        return stable_hash(key)

    # Presets --------------------------------------------------------------

    @classmethod
    def quick(cls, seed: int = 2018) -> "ExperimentConfig":
        """Small and fast: suitable for tests and CI."""
        return cls(users_per_group=15, period_hours=336, seed=seed, label="quick")

    @classmethod
    def default(cls, seed: int = 2018) -> "ExperimentConfig":
        """The benchmark default: minutes, not hours."""
        return cls(users_per_group=50, period_hours=672, seed=seed, label="default")

    @classmethod
    def paper_scale(cls, seed: int = 2018) -> "ExperimentConfig":
        """The paper's full setting: 300 users, 1-year period."""
        return cls(
            users_per_group=100,
            period_hours=HOURS_PER_YEAR,
            seed=seed,
            label="paper",
        )
