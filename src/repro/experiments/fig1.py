"""Figure 1: the Algorithm-1 selling example, regenerated.

The paper's Fig. 1 illustrates Section IV-B's walkthrough: two instances
(*inst₁*, *inst₂*) reserved at ``t − 3T/4 + 1``, two more (*inst₃*,
*inst₄*) reserved later; at the decision spot ``t`` one of the first
batch is sold, and the dotted line shows the reservation curve ``r``
dropping from the sale hour onward (plus the history rewrite used for
later decisions).

We reconstruct exactly that scenario at a readable scale and plot the
physical reservation curve of Keep-Reserved against ``A_{3T/4}`` —
the gap between the two curves *is* the paper's dotted line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ascii_plots import ascii_series
from repro.core.account import CostModel
from repro.core.policies import KeepReservedPolicy, OnlineSellingPolicy
from repro.core.simulator import SimulationResult, run_policy
from repro.experiments.config import ExperimentConfig
from repro.pricing.plan import PricingPlan


@dataclass(frozen=True)
class Fig1Result:
    """The reconstructed example and both reservation curves."""

    plan: PricingPlan
    demands: np.ndarray
    reservations: np.ndarray
    keep: SimulationResult
    online: SimulationResult

    @property
    def sale_hours(self) -> list[int]:
        return [sale.hour for sale in self.online.sales]

    def curves(self) -> dict[str, np.ndarray]:
        return {
            "r (keep)": self.keep.r_physical,
            "r (A_{3T/4} sold)": self.online.r_physical,
        }


def build_scenario(period: int = 32) -> "tuple[PricingPlan, np.ndarray, np.ndarray]":
    """The Section IV-B example at a chosen period.

    * hour 0: *inst₁*, *inst₂* reserved (the batch under evaluation);
    * hours T/4 and T/2: *inst₃*, *inst₄* reserved (less remaining than
      the first batch at decision time — the paper's ``l`` count);
    * demand: busy enough early that the batch does some work, then
      sparse, so exactly one of the batch falls below β at 3T/4 (the
      paper's batch rule retains the other — see DESIGN.md §4).
    """
    if period < 8 or period % 4:
        raise ValueError("period must be a multiple of 4, at least 8")
    horizon = 2 * period
    plan = PricingPlan(
        on_demand_hourly=1.0,
        upfront=period / 4,  # theta = p*T/R = 4, matching the paper's regime
        alpha=0.25,
        period_hours=period,
        name="fig1-example",
    )
    reservations = np.zeros(horizon, dtype=np.int64)
    reservations[0] = 2  # inst1, inst2
    reservations[period // 4] = 1  # inst3
    reservations[period // 2] = 1  # inst4
    demands = np.zeros(horizon, dtype=np.int64)
    demands[: period // 8] = 2  # the batch works early...
    demands[period // 4: period // 2] = 1  # ...then one instance's worth
    demands[period:] = 2  # demand returns after the decision spot
    return plan, demands, reservations


def run(config: "ExperimentConfig | None" = None, period: int = 32) -> Fig1Result:
    """Reconstruct the example and run Keep vs ``A_{3T/4}``."""
    plan, demands, reservations = build_scenario(period)
    selling_discount = (
        config.selling_discount if config is not None else 0.8
    )
    model = CostModel(plan, selling_discount=selling_discount)
    keep = run_policy(demands, reservations, model, KeepReservedPolicy())
    online = run_policy(demands, reservations, model, OnlineSellingPolicy.a_3t4())
    return Fig1Result(
        plan=plan,
        demands=demands,
        reservations=reservations,
        keep=keep,
        online=online,
    )


def render(result: Fig1Result) -> str:
    """Text rendition of Fig. 1 (the two reservation curves)."""
    pieces = [
        "Fig. 1 — Algorithm 1's selling example "
        f"(T={result.plan.period_hours}h, decision at 3T/4)",
        "",
        ascii_series(
            {"demand d_t": result.demands, **result.curves()},
            width=64,
            height=10,
        ),
        "",
    ]
    for sale in result.online.sales:
        pieces.append(
            f"sold instance #{sale.instance_id} at hour {sale.hour} "
            f"(worked {sale.working_hours}h < beta {sale.beta:.1f}h); the gap "
            f"between the two r curves from hour {sale.hour} on is the "
            f"paper's dotted line"
        )
    if not result.online.sales:
        pieces.append("no sale occurred (unexpected for this scenario)")
    return "\n".join(pieces)


def to_svg(result: Fig1Result) -> dict[str, str]:
    """SVG rendition: both r curves plus the demand, as step series."""
    from repro.analysis.svgplot import svg_series

    return {
        "fig1.svg": svg_series(
            {"demand d_t": result.demands, **result.curves()},
            title="Fig. 1 — reservation curve before/after the sale",
            x_label="hour",
            y_label="instances",
        )
    }
