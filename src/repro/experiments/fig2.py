"""Figure 2: demand-fluctuation statistics (σ/μ) of the three user groups.

The paper's Fig. 2 shows the σ/μ distribution of the 300 selected users,
grouped into stable (< 1), slightly fluctuating (1–3), and highly
fluctuating (> 3). We regenerate it from the synthesized population:
per-group σ/μ summaries plus an ASCII histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ascii_plots import ascii_histogram
from repro.analysis.tables import format_table
from repro.experiments.config import ExperimentConfig
from repro.workload.groups import (
    FluctuationGroup,
    UserWorkload,
    build_population,
    population_by_group,
)
from repro.workload.stats import summarize_cvs


@dataclass(frozen=True)
class Fig2Result:
    """σ/μ summaries per group plus the raw values."""

    config: ExperimentConfig
    per_group: dict[FluctuationGroup, dict[str, float]]
    cvs: dict[FluctuationGroup, list[float]]

    def all_in_band(self) -> bool:
        """Whether every user's σ/μ falls inside its group's band —
        the property Fig. 2 visualises."""
        return all(
            group.contains(cv)
            for group, values in self.cvs.items()
            for cv in values
        )


def run(
    config: ExperimentConfig,
    population: "list[UserWorkload] | None" = None,
) -> Fig2Result:
    """Compute the Fig. 2 statistics for the configured population."""
    if population is None:
        population = build_population(
            users_per_group=config.users_per_group,
            horizon=config.horizon,
            seed=config.seed,
            mean_demand=config.mean_demand,
        )
    grouped = population_by_group(population)
    per_group = {}
    cvs = {}
    for group, users in grouped.items():
        values = [user.cv for user in users]
        cvs[group] = values
        per_group[group] = summarize_cvs([user.trace for user in users])
    return Fig2Result(config=config, per_group=per_group, cvs=cvs)


def to_svg(result: Fig2Result) -> dict[str, str]:
    """SVG histograms of the per-group σ/μ distributions."""
    from repro.analysis.svgplot import SERIES_COLORS, svg_histogram

    documents = {}
    for index, (group, values) in enumerate(result.cvs.items()):
        letter = chr(ord("a") + index)
        documents[f"fig2{letter}.svg"] = svg_histogram(
            values,
            title=f"Fig. 2({letter}) — sigma/mu of the {group.value} group",
            color=SERIES_COLORS[index % len(SERIES_COLORS)],
        )
    return documents


def render(result: Fig2Result) -> str:
    """Text rendition of Fig. 2."""
    headers = ["Group", "band", "users", "min", "median", "mean", "max"]
    bands = {
        FluctuationGroup.STABLE: "sigma/mu < 1",
        FluctuationGroup.MODERATE: "1 < sigma/mu < 3",
        FluctuationGroup.BURSTY: "sigma/mu > 3",
    }
    rows = []
    for group, stats in result.per_group.items():
        rows.append(
            [
                group.value,
                bands[group],
                int(stats["count"]),
                stats["min"],
                stats["median"],
                stats["mean"],
                stats["max"],
            ]
        )
    pieces = [
        format_table(
            headers,
            rows,
            float_format="{:.3f}",
            title="Fig. 2 — demand fluctuation (sigma/mu) per user group",
        )
    ]
    for group, values in result.cvs.items():
        pieces.append(f"\n{group.value} group sigma/mu histogram:")
        pieces.append(ascii_histogram(values, bins=10, width=40))
    pieces.append(
        "\nall users inside their group band: "
        + ("yes" if result.all_in_band() else "NO")
    )
    return "\n".join(pieces)
