"""Figure 3: each online algorithm vs All-Selling and Keep-Reserved.

The paper's Fig. 3 has one panel per online algorithm, showing the CDF of
per-user cost (normalised to Keep-Reserved) for the algorithm and its two
benchmarks, over all 300 users. The §VI-B headline claims we check for:

* switching from Keep-Reserved to ``A_{3T/4}`` saves money for >60% of
  users, with ~1% losing slightly;
* ``A_{T/2}``: >70% save, ~40% save more than 20%, ~3% lose;
* ``A_{T/4}``: >75% save, >40% save more than 30%, ~5% lose — the
  largest savings and the largest losing tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ascii_plots import ascii_cdf
from repro.analysis.summary import SavingsSummary
from repro.experiments.config import ExperimentConfig
from repro.core.policies import (
    ALL_SELLING_POLICIES,
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    POLICY_ALL_3T4,
    POLICY_ALL_T2,
    POLICY_ALL_T4,
    POLICY_KEEP,
)
from repro.experiments.runner import SweepResult, run_sweep

#: Panel layout: online policy -> its All-Selling benchmark.
PANELS: dict[str, str] = {
    POLICY_A_3T4: POLICY_ALL_3T4,
    POLICY_A_T2: POLICY_ALL_T2,
    POLICY_A_T4: POLICY_ALL_T4,
}


@dataclass(frozen=True)
class Fig3Result:
    """Normalised cost samples and summaries per panel."""

    config: ExperimentConfig
    panels: dict[str, dict[str, "list[float]"]]  # panel -> series -> samples
    summaries: dict[str, SavingsSummary]  # policy -> headline stats


def run(config: ExperimentConfig, sweep: "SweepResult | None" = None) -> Fig3Result:
    """Run (or reuse) the sweep and assemble the three panels."""
    if sweep is None:
        sweep = run_sweep(config)
    normalized = sweep.normalized()
    panels = {}
    summaries = {}
    for online_name, all_selling_name in PANELS.items():
        panels[online_name] = {
            online_name: normalized[online_name].tolist(),
            all_selling_name: normalized[all_selling_name].tolist(),
            POLICY_KEEP: normalized[POLICY_KEEP].tolist(),
        }
        summaries[online_name] = SavingsSummary.of(normalized[online_name])
    return Fig3Result(config=config, panels=panels, summaries=summaries)


def render(result: Fig3Result) -> str:
    """Text rendition of the three Fig. 3 panels."""
    pieces = ["Fig. 3 — cost CDFs normalized to Keep-Reserved (all users)"]
    for index, (panel_name, series) in enumerate(result.panels.items()):
        pieces.append(f"\n(panel {chr(ord('a') + index)}) {panel_name}:")
        pieces.append(ascii_cdf(series, width=64, height=16))
        pieces.append("  " + result.summaries[panel_name].describe())
    return "\n".join(pieces)


def to_svg(result: Fig3Result) -> dict[str, str]:
    """SVG documents of the three panels, keyed by file name."""
    from repro.analysis.svgplot import svg_cdf

    documents = {}
    for index, (panel_name, series) in enumerate(result.panels.items()):
        letter = chr(ord("a") + index)
        documents[f"fig3{letter}.svg"] = svg_cdf(
            series,
            title=f"Fig. 3({letter}) — {panel_name} vs benchmarks",
        )
    return documents


# Re-exported so benches can assert the paper's headline shape directly.
__all__ = [
    "Fig3Result",
    "run",
    "render",
    "PANELS",
    "ONLINE_POLICIES",
    "ALL_SELLING_POLICIES",
]
