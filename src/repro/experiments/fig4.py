"""Figure 4: the three online algorithms compared within each group.

One panel per fluctuation group, each showing the normalised-cost CDFs of
``A_{3T/4}``, ``A_{T/2}`` and ``A_{T/4}``. The paper's reading: with
stable or slightly fluctuating demand, the earlier the decision spot the
better (``A_{T/4}`` wins — more remaining period to monetise), and even
under high fluctuation ``A_{T/4}`` wins *on average* while ``A_{3T/4}``
is the safest in the extreme cases (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ascii_plots import ascii_cdf
from repro.analysis.summary import SavingsSummary
from repro.experiments.config import ExperimentConfig
from repro.core.policies import (
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
)
from repro.experiments.runner import SweepResult, run_sweep
from repro.workload.groups import FluctuationGroup


@dataclass(frozen=True)
class Fig4Result:
    """Per-group normalised-cost samples and summaries."""

    config: ExperimentConfig
    panels: dict[FluctuationGroup, dict[str, "list[float]"]]
    summaries: dict[FluctuationGroup, dict[str, SavingsSummary]]

    def mean_ordering_holds(self, group: FluctuationGroup) -> bool:
        """Whether mean cost orders A_{T/4} <= A_{T/2} <= A_{3T/4} in a
        group (the paper's average-case finding)."""
        means = {
            name: summary.mean for name, summary in self.summaries[group].items()
        }
        return means[POLICY_A_T4] <= means[POLICY_A_T2] <= means[POLICY_A_3T4]


def run(config: ExperimentConfig, sweep: "SweepResult | None" = None) -> Fig4Result:
    if sweep is None:
        sweep = run_sweep(config)
    panels = {}
    summaries = {}
    for group in FluctuationGroup:
        subset = sweep.select(group)
        normalized = subset.normalized()
        panels[group] = {
            name: normalized[name].tolist() for name in ONLINE_POLICIES
        }
        summaries[group] = {
            name: SavingsSummary.of(normalized[name]) for name in ONLINE_POLICIES
        }
    return Fig4Result(config=config, panels=panels, summaries=summaries)


def to_svg(result: Fig4Result) -> dict[str, str]:
    """SVG documents of the three group panels, keyed by file name."""
    from repro.analysis.svgplot import svg_cdf

    documents = {}
    for index, (group, series) in enumerate(result.panels.items()):
        letter = chr(ord("a") + index)
        documents[f"fig4{letter}.svg"] = svg_cdf(
            series,
            title=f"Fig. 4({letter}) — {group.value} demand",
        )
    return documents


def render(result: Fig4Result) -> str:
    pieces = ["Fig. 4 — the three algorithms per fluctuation group"]
    for index, (group, series) in enumerate(result.panels.items()):
        pieces.append(f"\n(panel {chr(ord('a') + index)}) {group.value} demand:")
        pieces.append(ascii_cdf(series, width=64, height=16))
        for name, summary in result.summaries[group].items():
            pieces.append(f"  {name:10s} mean normalized cost {summary.mean:.4f}")
        pieces.append(
            "  mean ordering A_{T/4} <= A_{T/2} <= A_{3T/4}: "
            + ("yes" if result.mean_ordering_holds(group) else "no")
        )
    return "\n".join(pieces)
