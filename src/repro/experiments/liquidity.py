"""Liquidity sweep: how do stochastic clearing delays erode the ratios?

The proved bounds of :mod:`repro.core.ratios` assume every sale clears
the instant it is listed. The EC2 marketplace is not that liquid: a
listing waits for a buyer, loses resale value while it waits, and may
expire unsold. This experiment quantifies the gap — it reruns the
population sweep under :class:`~repro.core.clearing.ClearingModel`
regimes of decreasing depth and reports, per online policy and regime,
the empirical mean/worst-case cost ratio against the *instant-sale*
clairvoyant OPT next to the closed-form bound. OPT deliberately stays
the instant baseline in every regime, so a row's degradation is
attributable to liquidity alone, not to a moving benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.tables import format_table
from repro.core.clearing import LIQUIDITY_REGIMES, ClearingModel
from repro.core.policies import ONLINE_POLICIES, POLICY_OPT
from repro.core.ratios import competitive_ratio
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_sweep

#: Regimes swept in addition to the instant-sale baseline, deepest
#: first. Three non-instant regimes is the floor for the degradation
#: report to mean anything.
DEFAULT_REGIMES = ("deep", "normal", "thin")


@dataclass(frozen=True)
class LiquidityRow:
    """One (regime, policy) cell of the liquidity sweep."""

    regime: str
    policy: str
    phi: float
    mean_ratio: float
    max_ratio: float
    proved_bound: float
    instances_listed: int
    instances_cleared: int

    @property
    def clear_fraction(self) -> float:
        """Share of listed instances that found a buyer in time."""
        if self.instances_listed == 0:
            return 1.0
        return self.instances_cleared / self.instances_listed


@dataclass(frozen=True)
class LiquidityResult:
    config: ExperimentConfig
    users: int
    regimes: "tuple[str, ...]"
    clearing_seed: int
    rows: "list[LiquidityRow]"

    def rows_for(self, regime: str) -> "list[LiquidityRow]":
        return [row for row in self.rows if row.regime == regime]

    def degradation(self, policy: str, regime: str) -> float:
        """Worst-case ratio excess of ``regime`` over the instant baseline."""
        by_regime = {
            row.regime: row for row in self.rows if row.policy == policy
        }
        if regime not in by_regime or "instant" not in by_regime:
            raise ExperimentError(
                f"no liquidity rows for policy {policy!r} in regime {regime!r}"
            )
        return by_regime[regime].max_ratio - by_regime["instant"].max_ratio


def run(
    config: ExperimentConfig,
    regimes: "tuple[str, ...]" = DEFAULT_REGIMES,
    clearing_seed: int = 0,
    workers: int = 1,
    cache: "str | Path | None" = None,
    engine: str = "user",
) -> LiquidityResult:
    """Sweep the population under instant + each clearing regime."""
    if len(regimes) < 3:
        raise ExperimentError(
            f"the liquidity report needs at least 3 non-instant regimes, got "
            f"{len(regimes)}"
        )
    for regime in regimes:
        if regime not in LIQUIDITY_REGIMES or regime == "instant":
            raise ExperimentError(
                f"unknown liquidity regime {regime!r}; choose from "
                f"{sorted(name for name in LIQUIDITY_REGIMES if name != 'instant')}"
            )
    plan = config.plan()

    rows: "list[LiquidityRow]" = []
    users = 0
    for regime in ("instant", *regimes):
        clearing = ClearingModel.for_regime(regime, seed=clearing_seed)
        sweep = run_sweep(
            config,
            include_opt=True,
            include_all_selling=False,
            workers=workers,
            cache=cache,
            engine=engine,
            clearing=clearing,
        )
        matrix = sweep.costs_matrix()
        opt = matrix[POLICY_OPT]
        safe_opt = np.where(opt <= 0, np.nan, opt)
        users = len(sweep.outcomes)
        for name, phi in ONLINE_POLICIES.items():
            ratio = matrix[name] / safe_opt
            listed = sum(o.instances_sold[name] for o in sweep.outcomes)
            cleared = sum(
                (o.instances_cleared or {}).get(name, 0) for o in sweep.outcomes
            )
            rows.append(
                LiquidityRow(
                    regime=regime,
                    policy=name,
                    phi=phi,
                    mean_ratio=float(np.nanmean(ratio)),
                    max_ratio=float(np.nanmax(ratio)),
                    proved_bound=competitive_ratio(
                        phi, plan.alpha, config.selling_discount
                    ),
                    instances_listed=int(listed),
                    instances_cleared=int(cleared),
                )
            )
    return LiquidityResult(
        config=config,
        users=users,
        regimes=tuple(regimes),
        clearing_seed=clearing_seed,
        rows=rows,
    )


def render(result: LiquidityResult) -> str:
    headers = [
        "Regime",
        "Policy",
        "mean vs OPT",
        "max vs OPT",
        "bound*",
        "listed",
        "cleared",
        "clear %",
    ]
    table_rows = [
        [
            row.regime,
            row.policy,
            row.mean_ratio,
            row.max_ratio,
            row.proved_bound,
            row.instances_listed,
            row.instances_cleared,
            f"{100.0 * row.clear_fraction:.1f}",
        ]
        for row in result.rows
    ]
    table = format_table(
        headers,
        table_rows,
        title=(
            f"Liquidity sweep over {result.users} users "
            f"(clearing seed {result.clearing_seed}; OPT stays instant-sale)"
        ),
    )
    degradation_lines = []
    for regime in result.regimes:
        worst = max(
            (result.degradation(policy, regime), policy)
            for policy in ONLINE_POLICIES
        )
        degradation_lines.append(
            f"  {regime:>8}: worst-case ratio +{worst[0]:.4f} vs instant "
            f"({worst[1]})"
        )
    return (
        table
        + "\n* closed-form bound of repro.core.ratios; it assumes instant "
        "clearing, so rows beneath the 'instant' block show how far real "
        "liquidity pushes the empirical worst case past the theory.\n"
        "Degradation vs instant baseline:\n"
        + "\n".join(degradation_lines)
    )
