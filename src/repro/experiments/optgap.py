"""Optimality gap: how far do the online algorithms sit from OPT?

Two distinct questions, often conflated:

1. **Practical headroom** — against the *unrestricted* fleet optimum
   (sell any instance at any hour, Eq. (1) accounting). This is what a
   user with perfect foresight could do; the online algorithms leave a
   real gap here because OPT may dump an idle reservation within hours
   of buying it, long before any fixed decision spot.
2. **Theory-comparable ratio** — against the *spot-restricted* optimum
   (OPT may not sell an instance before the policy's own decision spot,
   ε ∈ [φ, 1]), mirroring the proofs' benchmark. The proved bounds
   (2 − α − a/4 etc.) live in the single-instance usage-billing model,
   so the fleet-level Eq. (1) ratio is reported *next to* the bound, not
   asserted against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.breakeven import decision_age_hours
from repro.core.offline import run_offline_optimal
from repro.core.ratios import competitive_ratio
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import ExperimentUser, build_experiment_population
from repro.core.policies import ONLINE_POLICIES, POLICY_KEEP, POLICY_OPT
from repro.experiments.runner import run_user


@dataclass(frozen=True)
class GapRow:
    """Gap statistics for one online algorithm."""

    policy: str
    phi: float
    mean_ratio_unrestricted: float
    max_ratio_unrestricted: float
    mean_ratio_restricted: float
    max_ratio_restricted: float
    proved_bound: float  # single-instance usage-model bound, for context


@dataclass(frozen=True)
class OptGapResult:
    config: ExperimentConfig
    users: int
    mean_opt_normalized: float  # OPT cost / keep cost, population mean
    rows: list[GapRow]

    def ordering_holds(self) -> bool:
        """Earlier spots should track OPT more closely on average."""
        means = [row.mean_ratio_unrestricted for row in self.rows]
        return means == sorted(means, reverse=True)


def run(
    config: ExperimentConfig,
    users: "list[ExperimentUser] | None" = None,
) -> OptGapResult:
    """Compute per-policy cost ratios to both OPT benchmarks."""
    if users is None:
        users = build_experiment_population(config)
    if not users:
        raise ExperimentError("no users to evaluate")
    model = config.cost_model()
    plan = config.plan()

    policy_costs: dict[str, list[float]] = {name: [] for name in ONLINE_POLICIES}
    opt_costs: list[float] = []
    keep_costs: list[float] = []
    restricted_costs: dict[str, list[float]] = {name: [] for name in ONLINE_POLICIES}

    for user in users:
        outcome = run_user(user, config, include_opt=True, include_all_selling=False)
        if outcome.costs[POLICY_KEEP] <= 0:
            continue
        keep_costs.append(outcome.costs[POLICY_KEEP])
        opt_costs.append(outcome.costs[POLICY_OPT])
        for name in ONLINE_POLICIES:
            policy_costs[name].append(outcome.costs[name])
        for name, phi in ONLINE_POLICIES.items():
            restricted = run_offline_optimal(
                user.schedule.demands,
                user.schedule.reservations,
                model,
                min_age=max(decision_age_hours(plan, phi), 1),
            )
            restricted_costs[name].append(restricted.total_cost)

    if not opt_costs:
        raise ExperimentError("every user had zero keep cost")

    opt = np.array(opt_costs)
    rows = []
    for name, phi in ONLINE_POLICIES.items():
        costs = np.array(policy_costs[name])
        restricted = np.array(restricted_costs[name])
        unrestricted_ratio = costs / np.where(opt <= 0, np.nan, opt)
        restricted_ratio = costs / np.where(restricted <= 0, np.nan, restricted)
        rows.append(
            GapRow(
                policy=name,
                phi=phi,
                mean_ratio_unrestricted=float(np.nanmean(unrestricted_ratio)),
                max_ratio_unrestricted=float(np.nanmax(unrestricted_ratio)),
                mean_ratio_restricted=float(np.nanmean(restricted_ratio)),
                max_ratio_restricted=float(np.nanmax(restricted_ratio)),
                proved_bound=competitive_ratio(phi, plan.alpha, config.selling_discount),
            )
        )
    return OptGapResult(
        config=config,
        users=len(opt_costs),
        mean_opt_normalized=float((opt / np.array(keep_costs)).mean()),
        rows=rows,
    )


def render(result: OptGapResult) -> str:
    headers = [
        "Policy",
        "mean vs OPT",
        "max vs OPT",
        "mean vs spot-OPT",
        "max vs spot-OPT",
        "proved bound*",
    ]
    rows = [
        [row.policy, row.mean_ratio_unrestricted, row.max_ratio_unrestricted,
         row.mean_ratio_restricted, row.max_ratio_restricted, row.proved_bound]
        for row in result.rows
    ]
    table = format_table(
        headers,
        rows,
        title=(
            f"Optimality gap over {result.users} users "
            f"(OPT achieves {result.mean_opt_normalized:.3f} of Keep-Reserved)"
        ),
    )
    return table + (
        "\n* the proved bound lives in the single-instance usage-billing "
        "model with spot-restricted OPT; shown for context."
    )
