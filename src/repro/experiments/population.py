"""Building the experimental population (Section VI-A).

Combines the workload grouping (100 users per fluctuation group at paper
scale) with the reservation-behaviour imitation: each user's reservations
are produced by one of the four purchasing algorithms, assigned
round-robin so every group contains every behaviour in equal measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.purchasing.runner import ReservationSchedule, imitate, paper_imitators
from repro.workload.groups import FluctuationGroup, UserWorkload, build_population


@dataclass(frozen=True)
class ExperimentUser:
    """One user: demand trace, group, and imitated reservations."""

    workload: UserWorkload
    schedule: ReservationSchedule
    imitator_name: str

    @property
    def user_id(self) -> str:
        return self.workload.user_id

    @property
    def group(self) -> FluctuationGroup:
        return self.workload.group

    @property
    def cv(self) -> float:
        return self.workload.cv


#: Imitator mix per group (indices into :func:`paper_imitators`' list:
#: 0 = All-Reserved, 1 = Random, 2 = Wang break-even, 3 = aggressive
#: break-even). Section VI-A motivates All-Reserved as imitating "the
#: user's reservation behavior when the demands are relatively stable",
#: so it dominates the stable group and is absent from the bursty one —
#: a user with σ/μ > 3 who reserved their entire peak would not exist.
GROUP_IMITATOR_CYCLE: dict[FluctuationGroup, tuple[int, ...]] = {
    FluctuationGroup.STABLE: (0, 0, 0, 2),
    FluctuationGroup.MODERATE: (0, 1, 0, 3),
    FluctuationGroup.BURSTY: (1, 2, 1, 3),
}


def build_experiment_population(config: ExperimentConfig) -> list[ExperimentUser]:
    """Synthesize traces and imitate reservation behaviour for all users."""
    plan = config.plan()
    workloads = build_population(
        users_per_group=config.users_per_group,
        horizon=config.horizon,
        seed=config.seed,
        mean_demand=config.mean_demand,
    )
    imitators = paper_imitators(seed=config.seed)
    group_positions = {group: 0 for group in FluctuationGroup}
    users = []
    for workload in workloads:
        cycle = GROUP_IMITATOR_CYCLE[workload.group]
        position = group_positions[workload.group]
        group_positions[workload.group] += 1
        imitator = imitators[cycle[position % len(cycle)]]
        schedule = imitate(workload.trace, plan, imitator)
        users.append(
            ExperimentUser(
                workload=workload,
                schedule=schedule,
                imitator_name=imitator.name,
            )
        )
    return users
