"""Randomized-selling experiment: §VII's speculation, verified end to end.

Three claims tie the proof-model design of :mod:`repro.core.randomized`
to the production engines:

1. **Engine fidelity.** Running the adversary family through the
   population-tensor engine (one single-reservation user per profile,
   the proofs' ``USAGE`` billing, no marketplace fee) reproduces the
   proof model's per-profile online costs bitwise-closely, so the
   worst-case ratios below are *population-scale empirical* numbers,
   not closed-form re-derivations.
2. **Bounds verification.** For each deterministic spot, the empirical
   worst-case ratio against the proofs' benchmark (OPT restricted to
   sell no earlier than the spot, ε ∈ [φ, 1]) must respect the closed
   forms of :mod:`repro.core.ratios` — and come within a documented
   fraction of them (:data:`BOUND_TOLERANCE`): the proved bounds are
   suprema over θ and continuous ε, so a finite family on an hourly
   grid stresses them from below without attaining them.
3. **The mixture wins.** The LP-optimised spot distribution's worst
   *expected* ratio (oblivious adversary, unrestricted OPT — the
   benchmark :func:`repro.core.randomized.optimize_distribution` plays
   against) must be strictly below every deterministic spot's worst
   ratio on the same family, empirically, through the same tensor
   engine.

Run with ``python -m repro randomized``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.account import CostModel, HourlyFeeMode
from repro.core.breakeven import PAPER_DECISION_FRACTIONS
from repro.core.popsim import run_population
from repro.core.randomized import (
    RandomizedDesign,
    adversary_profiles,
    optimize_distribution,
)
from repro.core.ratios import (
    adversarial_case1_profile,
    adversarial_case2_profile,
    competitive_ratio_for_plan,
)
from repro.core.single import offline_single_cost
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig

#: Documented tolerance of the empirical-vs-closed-form check: the
#: population-scale worst case must stay below the proved bound (up to
#: float slack) and reach at least this fraction of it. The structured
#: two-block family plus the Case-1/Case-2 constructions lands in the
#: 0.82–0.93 range across the paper's three spots at every preset
#: scale; 0.75 leaves headroom without letting the check go vacuous.
BOUND_TOLERANCE = 0.75

#: Float slack on "never exceeds the proved bound".
BOUND_SLACK = 1e-9


@dataclass(frozen=True)
class SpotRow:
    """One deterministic spot's empirical-vs-proved comparison."""

    phi: float
    probability: float  # the LP's weight on this spot
    closed_form: float  # proved ratio (plan's own θ)
    empirical_restricted: float  # worst ratio vs the proofs' ε ∈ [φ, 1] OPT
    empirical_unrestricted: float  # worst ratio vs unrestricted OPT

    @property
    def within_tolerance(self) -> bool:
        return (
            self.empirical_restricted <= self.closed_form + BOUND_SLACK
            and self.empirical_restricted >= BOUND_TOLERANCE * self.closed_form
        )


@dataclass(frozen=True)
class RandomizedExperimentResult:
    """Everything the ``randomized`` report shows."""

    config: ExperimentConfig
    design: RandomizedDesign
    rows: list[SpotRow]
    #: The mixture's empirical worst expected ratio (unrestricted OPT),
    #: computed from the tensor-engine cost columns.
    mixture_ratio: float
    #: Largest |popsim − proof-model| per-profile cost discrepancy.
    engine_discrepancy: float
    n_profiles: int

    @property
    def best_deterministic(self) -> float:
        return min(row.empirical_unrestricted for row in self.rows)

    @property
    def mixture_beats_deterministic(self) -> bool:
        return self.mixture_ratio < self.best_deterministic

    @property
    def bounds_verified(self) -> bool:
        return all(row.within_tolerance for row in self.rows)

    @property
    def improvement(self) -> float:
        """Relative gain of the mixture over the best single spot."""
        return 1.0 - self.mixture_ratio / self.best_deterministic


def run(
    config: ExperimentConfig,
    spots: "tuple[float, ...]" = PAPER_DECISION_FRACTIONS,
) -> RandomizedExperimentResult:
    """Optimise the mixture and verify it at population scale."""
    plan = config.plan()
    a = config.selling_discount
    period = plan.period_hours

    profiles = adversary_profiles(period)
    for phi in spots:
        # The proofs' dedicated worst-case constructions join the grid
        # family so the empirical check genuinely stresses each bound.
        profiles.append(adversarial_case1_profile(plan, a, phi))
        profiles.append(adversarial_case2_profile(plan, a, phi))

    design = optimize_distribution(plan, a, spots=spots, profiles=profiles)

    # One single-reservation user per adversary profile, in the proofs'
    # billing convention — the tensor engine then *is* the proof model.
    model = CostModel(
        plan=plan,
        selling_discount=a,
        marketplace_fee=0.0,
        fee_mode=HourlyFeeMode.USAGE,
    )
    demands = np.stack([profile.astype(np.int64) for profile in profiles])
    reservations = np.zeros_like(demands)
    reservations[:, 0] = 1

    opt_unrestricted = np.array(
        [offline_single_cost(p, plan, a)[0] for p in profiles]
    )
    feasible = opt_unrestricted > 0

    cost_columns: "dict[float, np.ndarray]" = {}
    discrepancy = 0.0
    from repro.core.single import online_single_cost

    rows: "list[SpotRow]" = []
    weights = dict(
        zip(design.distribution.spots, design.distribution.probabilities)
    )
    for phi in spots:
        result = run_population(demands, reservations, model, phi=phi)
        costs = result.total_costs()
        cost_columns[phi] = costs
        reference = np.array(
            [online_single_cost(p, plan, a, phi)[0] for p in profiles]
        )
        discrepancy = max(discrepancy, float(np.abs(costs - reference).max()))

        decision_age = round(phi * period)
        opt_restricted = np.array(
            [
                offline_single_cost(p, plan, a, min_age=decision_age)[0]
                for p in profiles
            ]
        )
        restricted_feasible = opt_restricted > 0
        rows.append(
            SpotRow(
                phi=phi,
                probability=float(weights[phi]),
                closed_form=competitive_ratio_for_plan(
                    plan, a, phi, use_paper_theta=False
                ),
                empirical_restricted=float(
                    (costs[restricted_feasible] / opt_restricted[restricted_feasible]).max()
                ),
                empirical_unrestricted=float(
                    (costs[feasible] / opt_unrestricted[feasible]).max()
                ),
            )
        )

    expected = np.zeros(len(profiles))
    for phi in spots:
        weight = float(weights[phi])
        if weight:
            expected += weight * cost_columns[phi]
    mixture_ratio = float((expected[feasible] / opt_unrestricted[feasible]).max())

    if discrepancy > 1e-9:
        raise ExperimentError(
            f"population engine deviates from the proof model by "
            f"{discrepancy!r} on the adversary family; the empirical "
            "verification would be meaningless"
        )
    return RandomizedExperimentResult(
        config=config,
        design=design,
        rows=rows,
        mixture_ratio=mixture_ratio,
        engine_discrepancy=discrepancy,
        n_profiles=len(profiles),
    )


def render(result: RandomizedExperimentResult) -> str:
    """Human-readable report."""
    lines = [
        "Randomized selling (Section VII): LP-optimised spot mixture",
        f"profiles: {result.n_profiles} two-block adversaries "
        f"(T={result.config.period_hours}h, a={result.config.selling_discount})",
        f"engine check: max |popsim - proof model| = "
        f"{result.engine_discrepancy:.2e}",
        "",
    ]
    header = [
        "spot",
        "P(spot)",
        "proved bound",
        "empirical (eps>=phi)",
        "within tol",
        "empirical (free OPT)",
    ]
    table = []
    for row in result.rows:
        table.append(
            [
                f"phi={row.phi:g}",
                f"{row.probability:.4f}",
                f"{row.closed_form:.4f}",
                f"{row.empirical_restricted:.4f}",
                "yes" if row.within_tolerance else "NO",
                f"{row.empirical_unrestricted:.4f}",
            ]
        )
    lines.append(format_table(header, table))
    lines.append("")
    lines.append(
        f"mixture worst expected ratio : {result.mixture_ratio:.4f}"
    )
    lines.append(
        f"best deterministic spot      : {result.best_deterministic:.4f}"
    )
    verdict = "yes" if result.mixture_beats_deterministic else "NO"
    lines.append(
        f"mixture beats every spot     : {verdict} "
        f"({result.improvement:.1%} better than the best spot)"
    )
    lines.append(
        f"bounds verified within tol   : "
        f"{'yes' if result.bounds_verified else 'NO'} "
        f"(empirical in [{BOUND_TOLERANCE:.2f}, 1.0] x proved bound)"
    )
    return "\n".join(lines)
