"""The policy sweep: every user × every policy, via the fast engine.

This is the computation behind Figs. 3/4 and Tables II/III: for each user
of the population, run the three online selling algorithms, the two
benchmarks (Keep-Reserved, All-Selling at each decision spot), and
optionally the offline optimum, then collect per-user total costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.analysis.normalize import KEEP_RESERVED, normalize_costs
from repro.core.breakeven import PHI_3T4, PHI_T2, PHI_T4
from repro.core.fastsim import FastPolicyKind, run_fast
from repro.core.offline import run_offline_optimal
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import ExperimentUser, build_experiment_population
from repro.workload.groups import FluctuationGroup

#: Canonical policy names used across all experiment outputs.
POLICY_A_3T4 = "A_{3T/4}"
POLICY_A_T2 = "A_{T/2}"
POLICY_A_T4 = "A_{T/4}"
POLICY_KEEP = KEEP_RESERVED
POLICY_ALL_3T4 = "All-Selling@3T/4"
POLICY_ALL_T2 = "All-Selling@T/2"
POLICY_ALL_T4 = "All-Selling@T/4"
POLICY_OPT = "OPT"

#: The three online algorithms with their decision fractions.
ONLINE_POLICIES: dict[str, float] = {
    POLICY_A_3T4: PHI_3T4,
    POLICY_A_T2: PHI_T2,
    POLICY_A_T4: PHI_T4,
}

#: The All-Selling benchmark at each spot.
ALL_SELLING_POLICIES: dict[str, float] = {
    POLICY_ALL_3T4: PHI_3T4,
    POLICY_ALL_T2: PHI_T2,
    POLICY_ALL_T4: PHI_T4,
}


@dataclass(frozen=True)
class UserOutcome:
    """All policies' results for one user."""

    user_id: str
    group: FluctuationGroup
    cv: float
    imitator: str
    instances_reserved: int
    costs: dict[str, float]
    instances_sold: dict[str, int]


@dataclass
class SweepResult:
    """The full population × policy cost matrix plus metadata."""

    config: ExperimentConfig
    outcomes: list[UserOutcome]
    policy_names: list[str] = field(init=False)

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError("a sweep produced no outcomes")
        self.policy_names = list(self.outcomes[0].costs)

    # ------------------------------------------------------------------

    def costs_matrix(self) -> dict[str, np.ndarray]:
        """Per-policy vectors of per-user total costs (user order fixed)."""
        return {
            name: np.array([outcome.costs[name] for outcome in self.outcomes])
            for name in self.policy_names
        }

    def normalized(self) -> dict[str, np.ndarray]:
        """Costs normalised to Keep-Reserved (the paper's presentation)."""
        return normalize_costs(self.costs_matrix(), baseline=POLICY_KEEP)

    def group_labels(self) -> np.ndarray:
        """Each user's fluctuation-group label, in user order."""
        return np.array([outcome.group.value for outcome in self.outcomes])

    def select(self, group: FluctuationGroup) -> "SweepResult":
        """Sub-sweep containing one fluctuation group."""
        subset = [outcome for outcome in self.outcomes if outcome.group is group]
        if not subset:
            raise ExperimentError(f"no users in group {group.value!r}")
        return SweepResult(config=self.config, outcomes=subset)

    def user(self, user_id: str) -> UserOutcome:
        """Look one user's outcome up by id."""
        for outcome in self.outcomes:
            if outcome.user_id == user_id:
                return outcome
        raise ExperimentError(f"no user {user_id!r} in the sweep")

    def to_csv(self, path: "str | Path") -> None:
        """Export the per-user results as CSV (one row per user).

        Columns: user metadata, then each policy's absolute and
        normalized cost — the raw material of Figs. 3/4 and Tables
        II/III, for external plotting tools.
        """
        import csv

        normalized = self.normalized()
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["user_id", "group", "sigma_mu", "imitator", "reserved"]
            for name in self.policy_names:
                header.extend([f"cost:{name}", f"normalized:{name}"])
            writer.writerow(header)
            for index, outcome in enumerate(self.outcomes):
                row = [
                    outcome.user_id,
                    outcome.group.value,
                    f"{outcome.cv:.4f}",
                    outcome.imitator,
                    outcome.instances_reserved,
                ]
                for name in self.policy_names:
                    row.append(f"{outcome.costs[name]:.4f}")
                    row.append(f"{normalized[name][index]:.6f}")
                writer.writerow(row)


def run_user(
    user: ExperimentUser,
    config: ExperimentConfig,
    include_opt: bool = False,
    include_all_selling: bool = True,
) -> UserOutcome:
    """Run every policy for one user."""
    model = config.cost_model()
    demands = user.schedule.demands.values
    reservations = user.schedule.reservations
    costs: dict[str, float] = {}
    sold: dict[str, int] = {}

    keep = run_fast(demands, reservations, model, kind=FastPolicyKind.KEEP_RESERVED)
    costs[POLICY_KEEP] = keep.total_cost
    sold[POLICY_KEEP] = 0

    for name, phi in ONLINE_POLICIES.items():
        result = run_fast(demands, reservations, model, phi=phi)
        costs[name] = result.total_cost
        sold[name] = result.instances_sold

    if include_all_selling:
        for name, phi in ALL_SELLING_POLICIES.items():
            result = run_fast(
                demands, reservations, model, phi=phi, kind=FastPolicyKind.ALL_SELLING
            )
            costs[name] = result.total_cost
            sold[name] = result.instances_sold

    if include_opt:
        result = run_offline_optimal(user.schedule.demands, reservations, model)
        costs[POLICY_OPT] = result.total_cost
        sold[POLICY_OPT] = result.instances_sold

    return UserOutcome(
        user_id=user.user_id,
        group=user.group,
        cv=user.cv,
        imitator=user.imitator_name,
        instances_reserved=user.schedule.total_reserved,
        costs=costs,
        instances_sold=sold,
    )


def run_sweep(
    config: ExperimentConfig,
    users: "Iterable[ExperimentUser] | None" = None,
    include_opt: bool = False,
    include_all_selling: bool = True,
    progress: "Callable[[int, int], None] | None" = None,
) -> SweepResult:
    """Run the full population sweep (building the population if needed)."""
    population = list(users) if users is not None else build_experiment_population(config)
    outcomes = []
    for index, user in enumerate(population):
        outcomes.append(
            run_user(
                user,
                config,
                include_opt=include_opt,
                include_all_selling=include_all_selling,
            )
        )
        if progress is not None:
            progress(index + 1, len(population))
    return SweepResult(config=config, outcomes=outcomes)
