"""The policy sweep: every user × every policy, via the fast engine.

This is the computation behind Figs. 3/4 and Tables II/III: for each user
of the population, run the three online selling algorithms, the two
benchmarks (Keep-Reserved, All-Selling at each decision spot), and
optionally the offline optimum, then collect per-user total costs.

The sweep executes through :mod:`repro.parallel`: work units fan out over
a process pool (``workers=1`` keeps the plain in-process loop, so serial
results are bit-identical to the historical path), and an optional
on-disk cache under ``.repro_cache/`` skips users whose outcome is
already known for this exact ``(config, trace, reservations, policy set,
engine version)``. See ``docs/parallel_execution.md``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro._compat import UNSET, Unset, absorb_positional_tail
from repro.analysis.normalize import normalize_costs
from repro.core.account import CostModel
from repro.core.clearing import ClearingModel
from repro.core.fastsim import ENGINE_VERSION, FastPolicyKind, run_fast
from repro.core.offline import run_offline_optimal
from repro.core.popsim import (
    DEFAULT_BLOCK_USERS,
    prepare_population,
    run_population,
    run_population_randomized,
)
from repro.core import policies as _policies
from repro.core.policyspec import PolicySpec
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.population import ExperimentUser, build_experiment_population
from repro.parallel.cache import ResultCache, as_cache
from repro.parallel.hashing import stable_hash
from repro.parallel.pool import CHUNKS_PER_WORKER, parallel_map, resolve_workers
from repro.parallel.timing import StageTimer, SweepTiming
from repro.workload.groups import FluctuationGroup

#: The sweep execution engines: per-user ``run_fast`` (the oracle) and
#: the population-tensor path of :mod:`repro.core.popsim`. Outcomes are
#: bit-identical either way; only the throughput differs.
SWEEP_ENGINES = ("user", "population")

#: Names historically defined here; they now live in
#: :mod:`repro.core.policies` and importing them from this module warns.
_MOVED_TO_POLICIES = (
    "POLICY_A_3T4",
    "POLICY_A_T2",
    "POLICY_A_T4",
    "POLICY_KEEP",
    "POLICY_ALL_3T4",
    "POLICY_ALL_T2",
    "POLICY_ALL_T4",
    "POLICY_OPT",
    "ONLINE_POLICIES",
    "ALL_SELLING_POLICIES",
)


def __getattr__(name: str) -> object:
    """Deprecation shim: the policy-name constants moved to
    :mod:`repro.core.policies`; old imports keep working for one release."""
    if name in _MOVED_TO_POLICIES:
        warnings.warn(
            f"repro.experiments.runner.{name} moved to repro.core.policies "
            "(import it from repro.core.policies or repro.api); the "
            "runner alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_policies, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Schema version of the cached per-user payload (bump on shape changes).
#: Format 2 adds the optional per-policy ``instances_cleared`` counts of
#: clearing-enabled sweeps.
_CACHE_FORMAT = 2


@dataclass(frozen=True)
class UserOutcome:
    """All policies' results for one user."""

    user_id: str
    group: FluctuationGroup
    cv: float
    imitator: str
    instances_reserved: int
    costs: dict[str, float]
    instances_sold: dict[str, int]
    #: Per-policy sales that actually cleared on the marketplace; only
    #: populated by clearing-enabled sweeps (``None`` otherwise, where
    #: every sale clears instantly).
    instances_cleared: "dict[str, int] | None" = None


@dataclass
class SweepResult:
    """The full population × policy cost matrix plus metadata."""

    config: ExperimentConfig
    outcomes: list[UserOutcome]
    timing: "SweepTiming | None" = field(default=None, compare=False)
    policy_names: list[str] = field(init=False)

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError("a sweep produced no outcomes")
        self.policy_names = list(self.outcomes[0].costs)
        expected = set(self.policy_names)
        for outcome in self.outcomes[1:]:
            if set(outcome.costs) != expected:
                raise ExperimentError(
                    f"user {outcome.user_id!r} was evaluated under policies "
                    f"{sorted(outcome.costs)} but user "
                    f"{self.outcomes[0].user_id!r} under {sorted(expected)}; "
                    "every outcome of one sweep must cover the same policy set"
                )

    # ------------------------------------------------------------------

    def costs_matrix(self) -> dict[str, np.ndarray]:
        """Per-policy vectors of per-user total costs (user order fixed)."""
        return {
            name: np.array([outcome.costs[name] for outcome in self.outcomes])
            for name in self.policy_names
        }

    def normalized(self) -> dict[str, np.ndarray]:
        """Costs normalised to Keep-Reserved (the paper's presentation)."""
        return normalize_costs(self.costs_matrix(), baseline=_policies.POLICY_KEEP)

    def group_labels(self) -> np.ndarray:
        """Each user's fluctuation-group label, in user order."""
        return np.array([outcome.group.value for outcome in self.outcomes])

    def select(self, group: FluctuationGroup) -> "SweepResult":
        """Sub-sweep containing one fluctuation group."""
        subset = [outcome for outcome in self.outcomes if outcome.group is group]
        if not subset:
            raise ExperimentError(f"no users in group {group.value!r}")
        return SweepResult(config=self.config, outcomes=subset)

    def user(self, user_id: str) -> UserOutcome:
        """Look one user's outcome up by id."""
        for outcome in self.outcomes:
            if outcome.user_id == user_id:
                return outcome
        raise ExperimentError(f"no user {user_id!r} in the sweep")

    def to_csv(self, path: "str | Path") -> None:
        """Export the per-user results as CSV (one row per user).

        Columns: user metadata, then each policy's absolute and
        normalized cost — the raw material of Figs. 3/4 and Tables
        II/III, for external plotting tools.
        """
        import csv

        normalized = self.normalized()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            header = ["user_id", "group", "sigma_mu", "imitator", "reserved"]
            for name in self.policy_names:
                header.extend([f"cost:{name}", f"normalized:{name}"])
            writer.writerow(header)
            for index, outcome in enumerate(self.outcomes):
                row = [
                    outcome.user_id,
                    outcome.group.value,
                    f"{outcome.cv:.4f}",
                    outcome.imitator,
                    outcome.instances_reserved,
                ]
                for name in self.policy_names:
                    row.append(f"{outcome.costs[name]:.4f}")
                    row.append(f"{normalized[name][index]:.6f}")
                writer.writerow(row)


def _simulate_spec_policy(
    spec_text: str,
    demands: np.ndarray,
    reservations: np.ndarray,
    model: CostModel,
    user_id: str,
    clearing: "ClearingModel | None",
) -> "tuple[str, float, int, int]":
    """Run one extra spec policy for one user through ``run_fast``.

    The spec-kind dispatch shared by both execution engines: a
    randomized spec draws its φ from the per-user stream (keyed by
    ``user_id``, the same key the population path uses) and then *is*
    the deterministic online run at that φ; a cancellation spec is the
    online run plus the re-buy post-pass. Returns
    ``(name, total_cost, sold, cleared)``.
    """
    policy = PolicySpec(spec_text).build()
    if isinstance(policy, _policies.KeepReservedPolicy):
        result = run_fast(
            demands, reservations, model, kind=FastPolicyKind.KEEP_RESERVED
        )
        return policy.name, result.total_cost, 0, 0
    if isinstance(policy, _policies.RandomizedSellingPolicy):
        result = run_fast(
            demands, reservations, model, phi=policy.draw_spot(user_id),
            clearing=clearing, clearing_key=user_id,
        )
    elif isinstance(policy, _policies.CancellationAwareSellingPolicy):
        result = run_fast(
            demands, reservations, model, phi=policy.phi,
            threshold_scale=policy.threshold_scale,
            clearing=clearing, clearing_key=user_id,
            cancellation=policy.cancellation,
        )
    elif isinstance(policy, _policies.AllSellingPolicy):
        result = run_fast(
            demands, reservations, model, phi=policy.phi,
            kind=FastPolicyKind.ALL_SELLING,
            clearing=clearing, clearing_key=user_id,
        )
    else:
        result = run_fast(
            demands, reservations, model, phi=policy.phi,
            threshold_scale=policy.threshold_scale,
            clearing=clearing, clearing_key=user_id,
        )
    return (
        policy.name,
        result.total_cost,
        result.instances_sold,
        result.instances_cleared,
    )


def _simulate_user(
    user: ExperimentUser,
    model: CostModel,
    include_opt: bool,
    include_all_selling: bool,
    clearing: "ClearingModel | None" = None,
    extra_policies: "tuple[str, ...]" = (),
) -> UserOutcome:
    """Run every policy for one user against a prebuilt cost model.

    With a clearing model the online and all-selling policies run under
    stochastic sale clearing (each user's draw stream is keyed by
    ``user_id``, so outcomes survive any re-batching); the offline
    optimum stays the paper's instant-sale baseline — the clairvoyant
    benchmark the degradation is measured against. ``extra_policies``
    (canonical spec strings, from ``ExperimentConfig.policies``) run
    after the standard set and before OPT.
    """
    demands = user.schedule.demands.values
    reservations = user.schedule.reservations
    costs: dict[str, float] = {}
    sold: dict[str, int] = {}
    cleared: "dict[str, int] | None" = {} if clearing is not None else None

    keep = run_fast(demands, reservations, model, kind=FastPolicyKind.KEEP_RESERVED)
    costs[_policies.POLICY_KEEP] = keep.total_cost
    sold[_policies.POLICY_KEEP] = 0
    if cleared is not None:
        cleared[_policies.POLICY_KEEP] = 0

    for name, phi in _policies.ONLINE_POLICIES.items():
        result = run_fast(
            demands, reservations, model, phi=phi,
            clearing=clearing, clearing_key=user.user_id,
        )
        costs[name] = result.total_cost
        sold[name] = result.instances_sold
        if cleared is not None:
            cleared[name] = result.instances_cleared

    if include_all_selling:
        for name, phi in _policies.ALL_SELLING_POLICIES.items():
            result = run_fast(
                demands, reservations, model, phi=phi,
                kind=FastPolicyKind.ALL_SELLING,
                clearing=clearing, clearing_key=user.user_id,
            )
            costs[name] = result.total_cost
            sold[name] = result.instances_sold
            if cleared is not None:
                cleared[name] = result.instances_cleared

    for spec_text in extra_policies:
        name, total, sold_count, cleared_count = _simulate_spec_policy(
            spec_text, demands, reservations, model, user.user_id, clearing
        )
        costs[name] = total
        sold[name] = sold_count
        if cleared is not None:
            cleared[name] = cleared_count

    if include_opt:
        result = run_offline_optimal(user.schedule.demands, reservations, model)
        costs[_policies.POLICY_OPT] = result.total_cost
        sold[_policies.POLICY_OPT] = result.instances_sold
        if cleared is not None:
            cleared[_policies.POLICY_OPT] = result.instances_sold

    return UserOutcome(
        user_id=user.user_id,
        group=user.group,
        cv=user.cv,
        imitator=user.imitator_name,
        instances_reserved=user.schedule.total_reserved,
        costs=costs,
        instances_sold=sold,
        instances_cleared=cleared,
    )


_absorb_positional_tail = absorb_positional_tail
_Unset = Unset
_UNSET = UNSET


def run_user(
    user: ExperimentUser,
    config: ExperimentConfig,
    *args: object,
    include_opt: "bool | _Unset" = _UNSET,
    include_all_selling: "bool | _Unset" = _UNSET,
    model: "CostModel | _Unset | None" = _UNSET,
    clearing: "ClearingModel | None" = None,
) -> UserOutcome:
    """Run every policy for one user.

    The configuration tail is keyword-only (a positional tail still
    works for one release behind a :class:`DeprecationWarning`).
    ``model`` lets sweep-scale callers build the cost model once and
    reuse it across the population instead of re-deriving it per user.
    """
    given: "dict[str, object]" = {
        "include_opt": include_opt,
        "include_all_selling": include_all_selling,
        "model": model,
    }
    _absorb_positional_tail(
        "run_user", args, ("include_opt", "include_all_selling", "model"), given
    )
    opt = bool(given["include_opt"]) if given["include_opt"] is not _UNSET else False
    all_selling = (
        bool(given["include_all_selling"])
        if given["include_all_selling"] is not _UNSET
        else True
    )
    cost_model = given["model"] if given["model"] is not _UNSET else None
    if cost_model is None:
        cost_model = config.cost_model()
    if not isinstance(cost_model, CostModel):
        raise TypeError(f"model must be a CostModel, got {cost_model!r}")
    _validate_clearing(clearing)
    return _simulate_user(
        user, cost_model, opt, all_selling, clearing, config.policies
    )


def _validate_clearing(clearing: object) -> "ClearingModel | None":
    if clearing is not None and not isinstance(clearing, ClearingModel):
        raise ExperimentError(
            f"clearing must be a ClearingModel or None, got "
            f"{type(clearing).__name__}"
        )
    return clearing


# ----------------------------------------------------------------------
# Parallel work units and result caching
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepTask:
    """One picklable unit of sweep work (one user, every policy)."""

    user: ExperimentUser
    model: CostModel
    include_opt: bool
    include_all_selling: bool
    clearing: "ClearingModel | None" = None
    #: Canonical spec strings (never pickled policy objects).
    extra_policies: "tuple[str, ...]" = ()


def _run_sweep_task(task: _SweepTask) -> UserOutcome:
    """Module-level worker body, picklable for the process pool."""
    return _simulate_user(
        task.user, task.model, task.include_opt, task.include_all_selling,
        task.clearing, task.extra_policies,
    )


@dataclass(frozen=True)
class _PopulationBlockTask:
    """One picklable block of population-engine work (B users × policies)."""

    demands: np.ndarray  # (B, H) int64
    reservations: np.ndarray  # (B, H) int64
    model: CostModel
    include_opt: bool
    include_all_selling: bool
    clearing: "ClearingModel | None" = None
    #: Per-user clearing stream keys (the user ids), block order; keeps
    #: draws independent of how users were packed into blocks.
    clearing_keys: "tuple[str, ...] | None" = None
    #: Canonical spec strings of the extra policies (never pickles).
    extra_policies: "tuple[str, ...]" = ()
    #: Per-user draw keys (the user ids), block order; set whenever
    #: extra policies run so randomized draws survive any re-batching.
    user_ids: "tuple[str, ...] | None" = None


def _run_population_block(
    task: _PopulationBlockTask,
) -> "list[tuple[dict[str, float], dict[str, int], dict[str, int] | None]]":
    """Module-level worker: every policy over one ``(B × H)`` tensor block.

    Returns per-user ``(costs, instances_sold, instances_cleared)`` rows
    in block order, with the policy dicts in the same insertion order as
    :func:`_simulate_user` so the assembled outcomes compare equal to
    the per-user path (``instances_cleared`` is ``None`` without a
    clearing model).
    """
    d, n, model = task.demands, task.reservations, task.model
    clearing, clearing_keys = task.clearing, task.clearing_keys
    block_users = d.shape[0]
    columns: "list[tuple[str, np.ndarray, np.ndarray, np.ndarray | None]]" = []

    # Validation and the policy-independent tensors (active timeline,
    # reservation prefix) are shared by every policy run of the block.
    prepared = prepare_population(d, n, model.period)
    zero_counts = np.zeros(block_users, dtype=np.int64)
    keep = run_population(d, n, model, kind=FastPolicyKind.KEEP_RESERVED,
                          precomputed=prepared)
    columns.append(
        (
            _policies.POLICY_KEEP,
            keep.total_costs(),
            zero_counts,
            zero_counts if clearing is not None else None,
        )
    )
    for name, phi in _policies.ONLINE_POLICIES.items():
        result = run_population(
            d, n, model, phi=phi, precomputed=prepared,
            clearing=clearing, clearing_keys=clearing_keys,
        )
        columns.append(
            (name, result.total_costs(), result.instances_sold,
             result.instances_cleared)
        )
    if task.include_all_selling:
        for name, phi in _policies.ALL_SELLING_POLICIES.items():
            result = run_population(
                d, n, model, phi=phi, kind=FastPolicyKind.ALL_SELLING,
                precomputed=prepared,
                clearing=clearing, clearing_keys=clearing_keys,
            )
            columns.append(
                (name, result.total_costs(), result.instances_sold,
                 result.instances_cleared)
            )
    for spec_text in task.extra_policies:
        policy = PolicySpec(spec_text).build()
        if isinstance(policy, _policies.KeepReservedPolicy):
            result = run_population(
                d, n, model, kind=FastPolicyKind.KEEP_RESERVED,
                precomputed=prepared,
            )
            columns.append(
                (
                    policy.name,
                    result.total_costs(),
                    zero_counts,
                    zero_counts if clearing is not None else None,
                )
            )
            continue
        if isinstance(policy, _policies.RandomizedSellingPolicy):
            result = run_population_randomized(
                d, n, model, policy,
                user_keys=list(task.user_ids or ()) or None,
                clearing=clearing,
                clearing_keys=(
                    list(clearing_keys) if clearing_keys is not None else None
                ),
            )
        elif isinstance(policy, _policies.CancellationAwareSellingPolicy):
            result = run_population(
                d, n, model, phi=policy.phi,
                threshold_scale=policy.threshold_scale, precomputed=prepared,
                clearing=clearing, clearing_keys=clearing_keys,
                cancellation=policy.cancellation,
            )
        elif isinstance(policy, _policies.AllSellingPolicy):
            result = run_population(
                d, n, model, phi=policy.phi, kind=FastPolicyKind.ALL_SELLING,
                precomputed=prepared,
                clearing=clearing, clearing_keys=clearing_keys,
            )
        else:
            result = run_population(
                d, n, model, phi=policy.phi,
                threshold_scale=policy.threshold_scale, precomputed=prepared,
                clearing=clearing, clearing_keys=clearing_keys,
            )
        columns.append(
            (policy.name, result.total_costs(), result.instances_sold,
             result.instances_cleared)
        )
    opt_results = None
    if task.include_opt:
        # OPT has no tensor formulation (its sale schedule is a per-user
        # search); fall back to the per-user oracle inside the block.
        # It also stays the instant-sale clairvoyant baseline under
        # clearing (see _simulate_user).
        opt_results = [
            run_offline_optimal(d[user], n[user], model) for user in range(block_users)
        ]

    rows: "list[tuple[dict[str, float], dict[str, int], dict[str, int] | None]]" = []
    for user in range(block_users):
        costs = {name: float(totals[user]) for name, totals, _, _ in columns}
        sold = {name: int(counts[user]) for name, _, counts, _ in columns}
        cleared: "dict[str, int] | None" = None
        if clearing is not None:
            cleared = {
                name: int(cleared_counts[user])
                for name, _, _, cleared_counts in columns
                if cleared_counts is not None
            }
        if opt_results is not None:
            costs[_policies.POLICY_OPT] = opt_results[user].total_cost
            sold[_policies.POLICY_OPT] = opt_results[user].instances_sold
            if cleared is not None:
                cleared[_policies.POLICY_OPT] = opt_results[user].instances_sold
        rows.append((costs, sold, cleared))
    return rows


def _population_block_size(n_pending: int, workers: int) -> int:
    """User-block size for the population engine's fan-out.

    Sized so each worker sees ~:data:`CHUNKS_PER_WORKER` blocks (load
    balance) while never exceeding :data:`DEFAULT_BLOCK_USERS` (bounded
    per-block tensor memory).
    """
    resolved = resolve_workers(workers)
    if resolved <= 1:
        return min(DEFAULT_BLOCK_USERS, max(1, n_pending))
    target = math.ceil(n_pending / (resolved * CHUNKS_PER_WORKER))
    return max(1, min(DEFAULT_BLOCK_USERS, target))


def _run_population_sweep(
    population: "list[ExperimentUser]",
    pending: "list[int]",
    model: CostModel,
    include_opt: bool,
    include_all_selling: bool,
    workers: int,
    on_progress: "Callable[[int], None] | None",
    clearing: "ClearingModel | None" = None,
    extra_policies: "tuple[str, ...]" = (),
) -> "list[UserOutcome]":
    """Simulate the pending users through the population-tensor engine.

    Users are packed into contiguous user-blocks, each block travels to a
    worker as one ``(B × H)`` tensor task, and the per-user outcomes come
    back bit-identical to :func:`_simulate_user` (the popsim guarantee).
    """
    horizons = {len(population[index].schedule.demands) for index in pending}
    if len(horizons) > 1:
        raise ExperimentError(
            "engine='population' needs one common horizon across users, got "
            f"{sorted(horizons)}; use engine='user' for mixed-horizon "
            "populations"
        )
    block_size = _population_block_size(len(pending), workers)
    blocks = [
        pending[start : start + block_size]
        for start in range(0, len(pending), block_size)
    ]
    tasks = [
        _PopulationBlockTask(
            demands=np.stack(
                [population[index].schedule.demands.values for index in block]
            ),
            reservations=np.stack(
                [population[index].schedule.reservations for index in block]
            ),
            model=model,
            include_opt=include_opt,
            include_all_selling=include_all_selling,
            clearing=clearing,
            clearing_keys=(
                tuple(population[index].user_id for index in block)
                if clearing is not None
                else None
            ),
            extra_policies=extra_policies,
            user_ids=(
                tuple(population[index].user_id for index in block)
                if extra_policies
                else None
            ),
        )
        for block in blocks
    ]
    if on_progress is None:
        block_progress = None
    else:
        reporter = on_progress
        npending = len(pending)

        def block_progress(done_blocks: int) -> None:
            # Blocks are equal-sized except the last; clamp to pending.
            reporter(min(npending, done_blocks * block_size))

    block_rows = parallel_map(
        _run_population_block,
        tasks,
        workers=workers,
        chunk_size=1,
        progress=block_progress,
    )
    rows = [row for block in block_rows for row in block]
    computed: "list[UserOutcome]" = []
    for (costs, sold, cleared), index in zip(rows, pending):
        user = population[index]
        computed.append(
            UserOutcome(
                user_id=user.user_id,
                group=user.group,
                cv=user.cv,
                imitator=user.imitator_name,
                instances_reserved=user.schedule.total_reserved,
                costs=costs,
                instances_sold=sold,
                instances_cleared=cleared,
            )
        )
    return computed


def user_cache_key(
    config: ExperimentConfig,
    user: ExperimentUser,
    include_opt: bool,
    include_all_selling: bool,
    clearing: "ClearingModel | None" = None,
) -> str:
    """Content hash identifying one user's sweep outcome.

    Everything that can change the outcome is part of the key: the
    experiment configuration, the user's demand trace and imitated
    reservations (by value, not by id), the policy set toggles, the
    clearing model (when one is attached — clearing-on and clearing-off
    sweeps must never alias, and neither must two different regimes or
    seeds), and the fast engine's version. Anything else changing —
    process, session, host — must *not* change the key, or the cache
    would never hit.
    """
    key: "dict[str, object]" = {
        "engine": ENGINE_VERSION,
        "config": config.content_hash(),
        "user_id": user.user_id,
        "group": user.group,
        "cv": user.cv,
        "imitator": user.imitator_name,
        "demands": user.schedule.demands.values,
        "reservations": user.schedule.reservations,
        "include_opt": include_opt,
        "include_all_selling": include_all_selling,
    }
    if clearing is not None:
        # Only added when present so pre-clearing cache entries keep
        # their keys (an absent entry and an explicit None must hash
        # identically to the historical key).
        key["clearing"] = clearing.content_digest()
    return stable_hash(key)


def _outcome_payload(outcome: UserOutcome) -> dict:
    """JSON-ready form of one outcome, for the on-disk cache."""
    return {
        "format": _CACHE_FORMAT,
        "user_id": outcome.user_id,
        "group": outcome.group.value,
        "cv": outcome.cv,
        "imitator": outcome.imitator,
        "instances_reserved": outcome.instances_reserved,
        "costs": outcome.costs,
        "instances_sold": outcome.instances_sold,
        "instances_cleared": outcome.instances_cleared,
    }


def _outcome_from_payload(payload: dict) -> "UserOutcome | None":
    """Rebuild an outcome from a cached payload; ``None`` if the payload
    is from an incompatible cache format (treated as a miss)."""
    if payload.get("format") != _CACHE_FORMAT:
        return None
    try:
        cleared_payload = payload.get("instances_cleared")
        return UserOutcome(
            user_id=payload["user_id"],
            group=FluctuationGroup(payload["group"]),
            cv=float(payload["cv"]),
            imitator=payload["imitator"],
            instances_reserved=int(payload["instances_reserved"]),
            costs={name: float(v) for name, v in payload["costs"].items()},
            instances_sold={
                name: int(v) for name, v in payload["instances_sold"].items()
            },
            instances_cleared=(
                {name: int(v) for name, v in cleared_payload.items()}
                if cleared_payload is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError):
        return None


def run_sweep(
    config: ExperimentConfig,
    *args: object,
    users: "Iterable[ExperimentUser] | None | _Unset" = _UNSET,
    include_opt: "bool | _Unset" = _UNSET,
    include_all_selling: "bool | _Unset" = _UNSET,
    progress: "Callable[[int, int], None] | None | _Unset" = _UNSET,
    workers: "int | _Unset" = _UNSET,
    cache: "ResultCache | str | Path | None | _Unset" = _UNSET,
    engine: "str | _Unset" = _UNSET,
    clearing: "ClearingModel | None" = None,
) -> SweepResult:
    """Run the full population sweep (building the population if needed).

    Everything after ``config`` is keyword-only (a positional tail still
    works for one release behind a :class:`DeprecationWarning`).
    ``workers`` fans work out over a process pool (``1`` = the serial
    in-process path, ``0``/``None`` = one worker per core); results are
    identical regardless of the worker count. ``cache`` — a
    :class:`~repro.parallel.cache.ResultCache` or a directory path —
    skips users whose outcome is already stored for this exact
    configuration. ``engine`` selects the execution path: ``"user"``
    (default) simulates one user at a time through ``run_fast``;
    ``"population"`` runs user-blocks through the tensor engine of
    :mod:`repro.core.popsim` — outcomes are bit-identical either way
    (cache entries are shared across engines for the same reason), but
    the population path needs one common horizon. Stage timings land on
    ``SweepResult.timing``. ``clearing`` attaches a
    :class:`~repro.core.clearing.ClearingModel`: online and all-selling
    sales clear stochastically (per-user streams keyed by ``user_id``,
    so both engines and any worker count agree bit for bit) while the
    offline optimum stays the instant-sale baseline; the cache key
    incorporates the clearing configuration, so clearing-on and
    clearing-off results can never alias.
    """
    given: "dict[str, object]" = {
        "users": users,
        "include_opt": include_opt,
        "include_all_selling": include_all_selling,
        "progress": progress,
        "workers": workers,
        "cache": cache,
        "engine": engine,
    }
    _absorb_positional_tail(
        "run_sweep",
        args,
        (
            "users",
            "include_opt",
            "include_all_selling",
            "progress",
            "workers",
            "cache",
            "engine",
        ),
        given,
    )
    users = given["users"] if given["users"] is not _UNSET else None  # type: ignore[assignment]
    include_opt = (
        bool(given["include_opt"]) if given["include_opt"] is not _UNSET else False
    )
    include_all_selling = (
        bool(given["include_all_selling"])
        if given["include_all_selling"] is not _UNSET
        else True
    )
    progress = given["progress"] if given["progress"] is not _UNSET else None  # type: ignore[assignment]
    workers = int(given["workers"]) if given["workers"] is not _UNSET else 1  # type: ignore[call-overload]
    cache = given["cache"] if given["cache"] is not _UNSET else None  # type: ignore[assignment]
    engine = str(given["engine"]) if given["engine"] is not _UNSET else "user"
    if engine not in SWEEP_ENGINES:
        raise ExperimentError(
            f"unknown sweep engine {engine!r}; choose one of {SWEEP_ENGINES}"
        )
    _validate_clearing(clearing)
    timer = StageTimer()
    store = as_cache(cache)
    with timer.stage("population"):
        population = (
            list(users) if users is not None else build_experiment_population(config)
        )
        model = config.cost_model()  # built once per sweep, shared by all users
    total = len(population)

    outcomes: "list[UserOutcome | None]" = [None] * total
    keys: "list[str | None]" = [None] * total
    pending: "list[int]" = []
    if store is not None:
        with timer.stage("cache-lookup"):
            for index, user in enumerate(population):
                key = user_cache_key(
                    config, user, include_opt, include_all_selling, clearing
                )
                keys[index] = key
                payload = store.get(key)
                restored = _outcome_from_payload(payload) if payload is not None else None
                if payload is not None and restored is None:
                    # Readable but incompatible entry: recount as a miss.
                    store.hits -= 1
                    store.misses += 1
                if restored is not None:
                    outcomes[index] = restored
                else:
                    pending.append(index)
    else:
        pending = list(range(total))

    done_offset = total - len(pending)
    if progress is not None and done_offset:
        progress(done_offset, total)

    with timer.stage("simulate"):
        if progress is None:
            on_progress = None
        else:
            reporter = progress

            def on_progress(done: int) -> None:
                reporter(done_offset + done, total)

        if engine == "population":
            computed = _run_population_sweep(
                population,
                pending,
                model,
                include_opt,
                include_all_selling,
                workers,
                on_progress,
                clearing,
                config.policies,
            )
        else:
            tasks = [
                _SweepTask(
                    population[index], model, include_opt, include_all_selling,
                    clearing, config.policies,
                )
                for index in pending
            ]
            computed = parallel_map(
                _run_sweep_task, tasks, workers=workers, progress=on_progress
            )

    if store is not None and pending:
        with timer.stage("cache-store"):
            for position, index in enumerate(pending):
                key = keys[index]
                if key is not None:
                    store.put(key, _outcome_payload(computed[position]))
    for position, index in enumerate(pending):
        outcomes[index] = computed[position]
    if any(outcome is None for outcome in outcomes):
        raise ExperimentError("sweep execution lost outcomes; this is a bug")

    timing = SweepTiming(
        workers=resolve_workers(workers),
        total_users=total,
        simulated_users=len(pending),
        cache_hits=store.hits if store is not None else 0,
        cache_misses=store.misses if store is not None else 0,
        stage_seconds=timer.stages,
        total_seconds=timer.total_seconds,
    )
    return SweepResult(
        config=config,
        outcomes=[outcome for outcome in outcomes if outcome is not None],
        timing=timing,
    )
