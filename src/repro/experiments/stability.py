"""Seed-stability study: are the headline results population-flukes?

The paper reports one population; this experiment re-runs the Table III
computation across several independently-seeded populations and reports
mean ± std of each algorithm's all-users normalized cost, plus whether
the two shape criteria (everything < 1; A_{T/4} ≤ A_{T/2} ≤ A_{3T/4})
held in *every* replication.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.experiments import table3
from repro.experiments.config import ExperimentConfig
from repro.core.policies import ONLINE_POLICIES
from repro.experiments.runner import run_sweep


@dataclass(frozen=True)
class StabilityResult:
    """Across-seed distribution of the Table III all-users means."""

    config: ExperimentConfig
    seeds: tuple[int, ...]
    per_seed: dict[int, dict[str, float]]  # seed -> policy -> all-users mean
    orderings_held: int  # replications where A_{T/4} <= A_{T/2} <= A_{3T/4}
    all_below_one: int  # replications where every mean < 1

    def mean(self, policy: str) -> float:
        return statistics.fmean(row[policy] for row in self.per_seed.values())

    def std(self, policy: str) -> float:
        values = [row[policy] for row in self.per_seed.values()]
        return statistics.stdev(values) if len(values) > 1 else 0.0

    def always_consistent(self) -> bool:
        return (
            self.orderings_held == len(self.seeds)
            and self.all_below_one == len(self.seeds)
        )


def run(config: ExperimentConfig, n_seeds: int = 5) -> StabilityResult:
    """Replicate the Table III computation across ``n_seeds`` seeds."""
    if n_seeds < 2:
        raise ExperimentError(f"n_seeds must be >= 2, got {n_seeds!r}")
    seeds = tuple(config.seed + offset for offset in range(n_seeds))
    per_seed = {}
    orderings = 0
    below_one = 0
    for seed in seeds:
        seeded = config.scaled(seed=seed)
        sweep = run_sweep(seeded)
        result = table3.run(seeded, sweep=sweep)
        per_seed[seed] = {
            policy: result.measured[policy]["All users"]
            for policy in ONLINE_POLICIES
        }
        if result.ordering_holds():
            orderings += 1
        if result.all_below_one():
            below_one += 1
    return StabilityResult(
        config=config,
        seeds=seeds,
        per_seed=per_seed,
        orderings_held=orderings,
        all_below_one=below_one,
    )


def render(result: StabilityResult) -> str:
    headers = ["Policy", "mean of means", "std", "min", "max"]
    rows = []
    for policy in ONLINE_POLICIES:
        values = [row[policy] for row in result.per_seed.values()]
        rows.append([policy, result.mean(policy), result.std(policy),
                     min(values), max(values)])
    table = format_table(
        headers,
        rows,
        title=(
            f"Seed stability — all-users normalized cost across "
            f"{len(result.seeds)} populations"
        ),
    )
    checks = [
        f"ordering held in {result.orderings_held}/{len(result.seeds)} replications",
        f"all means < 1 in {result.all_below_one}/{len(result.seeds)} replications",
    ]
    return table + "\n" + "\n".join(checks)
