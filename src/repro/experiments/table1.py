"""Table I: pricing of the d2.xlarge instance (US East (Ohio), Linux).

Regenerated from the embedded catalog's quotes; the paper's numbers are
embedded exactly, so this doubles as a data-integrity check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.pricing.options import OptionQuote, PaymentOption, table_i_quotes

#: The paper's Table I "Effective Hourly" column, for verification.
PAPER_EFFECTIVE_HOURLY = {
    PaymentOption.NO_UPFRONT: 0.402,
    PaymentOption.PARTIAL_UPFRONT: 0.344,
    PaymentOption.ALL_UPFRONT: 0.337,
    PaymentOption.ON_DEMAND: 0.69,
}


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table I with paper-vs-computed effective rates."""

    quotes: dict[PaymentOption, OptionQuote]

    def rows(self) -> list[list[object]]:
        rows = []
        for option, quote in self.quotes.items():
            rows.append(
                [
                    _option_label(option),
                    f"${quote.upfront:.0f}" if quote.upfront else "$0",
                    f"${quote.monthly:.2f}" if quote.monthly else "$0",
                    quote.effective_hourly,
                    PAPER_EFFECTIVE_HOURLY[option],
                ]
            )
        return rows

    def max_deviation(self) -> float:
        """Largest |computed − paper| effective hourly rate."""
        return max(
            abs(quote.effective_hourly - PAPER_EFFECTIVE_HOURLY[option])
            for option, quote in self.quotes.items()
        )


def _option_label(option: PaymentOption) -> str:
    labels = {
        PaymentOption.NO_UPFRONT: "No Upfront",
        PaymentOption.PARTIAL_UPFRONT: "Partial Upfront",
        PaymentOption.ALL_UPFRONT: "All Upfront",
        PaymentOption.ON_DEMAND: "On-Demand",
    }
    return labels[option]


def run() -> Table1Result:
    return Table1Result(quotes=table_i_quotes())


def render(result: Table1Result) -> str:
    table = format_table(
        ["Payment Option", "Upfront", "Monthly", "Effective Hourly", "Paper"],
        result.rows(),
        float_format="{:.3f}",
        title="Table I — d2.xlarge (US East (Ohio), Linux), Jan 1 2018",
    )
    return (
        table
        + f"\nmax deviation from the paper's effective rates: "
        f"{result.max_deviation():.4f} $/h"
    )
