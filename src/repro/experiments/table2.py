"""Table II: the extreme cases — where the late decision spot is safest.

The paper's Table II exhibits one highly fluctuating user for whom the
usual ordering *reverses*: ``A_{3T/4}`` (9.36e4) beats ``A_{T/2}``
(9.40e4) beats ``A_{T/4}`` (9.45e4), all below Keep-Reserved (9.58e4) —
"when it comes to the extreme cases, A_{3T/4} performs best".

We reproduce both readings of that claim:

* the **exhibit**: the user whose costs most favour the late spot
  (preferring bursty users with a genuine reversal; falling back to the
  widest-spread bursty user when no reversal exists at the configured
  scale), and
* the **robustness ordering**: across the whole population, the *worst*
  normalised cost of ``A_{3T/4}`` is the smallest of the three — the
  late decision spot has the best worst case, which is the substance of
  the paper's extreme-case finding (and of its tighter competitive
  ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.core.policies import (
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
    POLICY_KEEP,
)
from repro.experiments.runner import SweepResult, UserOutcome, run_sweep
from repro.workload.groups import FluctuationGroup

_TABLE_POLICIES = [*ONLINE_POLICIES, POLICY_KEEP]


@dataclass(frozen=True)
class Table2Result:
    """The exhibited extreme user plus population worst cases."""

    config: ExperimentConfig
    user: UserOutcome
    worst_case: dict[str, float]  # policy -> max normalized cost over users

    def costs(self) -> dict[str, float]:
        return {name: self.user.costs[name] for name in _TABLE_POLICIES}

    def a_3t4_safest(self) -> bool:
        """Whether the exhibited user shows the paper's full reversal."""
        online = {name: self.user.costs[name] for name in ONLINE_POLICIES}
        return min(online, key=online.get) == POLICY_A_3T4

    def worst_case_ordering_holds(self) -> bool:
        """The robust reading: A_{3T/4} has the best worst case."""
        return (
            self.worst_case[POLICY_A_3T4]
            <= self.worst_case[POLICY_A_T2] + 1e-12
            and self.worst_case[POLICY_A_3T4] <= self.worst_case[POLICY_A_T4] + 1e-12
        )


def pick_extreme_user(sweep: SweepResult) -> UserOutcome:
    """The user whose costs most favour the late decision spot.

    Prefers bursty users (the paper's Table II is a highly fluctuating
    one); falls back to the widest-spread bursty user when no reversal
    exists at this scale.
    """
    bursty = [
        outcome
        for outcome in sweep.outcomes
        if outcome.group is FluctuationGroup.BURSTY and outcome.instances_reserved > 0
    ]
    if not bursty:
        raise ExperimentError("the sweep contains no bursty users with reservations")

    def late_advantage(outcome: UserOutcome) -> float:
        earlier = min(outcome.costs[POLICY_A_T4], outcome.costs[POLICY_A_T2])
        return earlier - outcome.costs[POLICY_A_3T4]

    candidates = [o for o in sweep.outcomes if o.instances_reserved > 0] or bursty
    best_any = max(candidates, key=late_advantage)
    best_bursty = max(bursty, key=late_advantage)
    if late_advantage(best_bursty) > 0:
        return best_bursty
    if late_advantage(best_any) > 0:
        return best_any

    def spread(outcome: UserOutcome) -> float:
        online = [outcome.costs[name] for name in ONLINE_POLICIES]
        return max(online) - min(online)

    return max(bursty, key=spread)


def run(config: ExperimentConfig, sweep: "SweepResult | None" = None) -> Table2Result:
    if sweep is None:
        sweep = run_sweep(config)
    normalized = sweep.normalized()
    worst_case = {
        name: float(normalized[name].max()) for name in ONLINE_POLICIES
    }
    return Table2Result(
        config=config, user=pick_extreme_user(sweep), worst_case=worst_case
    )


def render(result: Table2Result) -> str:
    costs = result.costs()
    exhibit = format_table(
        ["", *costs.keys()],
        [["Cost", *(f"{value:.3e}" for value in costs.values())]],
        title=(
            "Table II — actual cost for an extreme user "
            f"({result.user.user_id}, sigma/mu = {result.user.cv:.2f}, "
            f"imitator {result.user.imitator})"
        ),
    )
    worst = format_table(
        ["", *result.worst_case.keys()],
        [["Worst normalized cost", *result.worst_case.values()]],
        title="population worst cases (normalized to Keep-Reserved)",
    )
    checks = [
        "exhibited user shows the full reversal (A_{3T/4} cheapest): "
        + ("yes" if result.a_3t4_safest() else "no"),
        "A_{3T/4} has the best worst case (paper's extreme-case claim): "
        + ("yes" if result.worst_case_ordering_holds() else "NO"),
    ]
    return exhibit + "\n\n" + worst + "\n" + "\n".join(checks)
