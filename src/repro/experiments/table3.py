"""Table III: average normalised cost per group and overall.

The paper's Table III (all costs normalised to Keep-Reserved):

====================  =======  =======  =======  =========
policy                Group 1  Group 2  Group 3  All users
====================  =======  =======  =======  =========
``A_{3T/4}``           0.9387   0.9154   0.9300     0.9279
``A_{T/2}``            0.8797   0.8329   0.8966     0.8643
``A_{T/4}``            0.8199   0.7583   0.8620     0.8032
====================  =======  =======  =======  =========

The shape criteria we check: every entry < 1 (selling always helps on
average) and the column-wise ordering A_{T/4} < A_{T/2} < A_{3T/4}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bootstrap import ConfidenceInterval, bootstrap_ci, difference_ci
from repro.analysis.summary import group_means
from repro.analysis.tables import format_table
from repro.experiments.config import ExperimentConfig
from repro.core.policies import (
    ONLINE_POLICIES,
    POLICY_A_3T4,
    POLICY_A_T2,
    POLICY_A_T4,
)
from repro.experiments.runner import SweepResult, run_sweep
from repro.workload.groups import FluctuationGroup

#: The paper's Table III, for side-by-side reporting.
PAPER_TABLE_III = {
    POLICY_A_3T4: {"stable": 0.9387, "moderate": 0.9154, "bursty": 0.9300, "All users": 0.9279},
    POLICY_A_T2: {"stable": 0.8797, "moderate": 0.8329, "bursty": 0.8966, "All users": 0.8643},
    POLICY_A_T4: {"stable": 0.8199, "moderate": 0.7583, "bursty": 0.8620, "All users": 0.8032},
}

_GROUP_ORDER = [group.value for group in FluctuationGroup]
_COLUMNS = [*_GROUP_ORDER, "All users"]


@dataclass(frozen=True)
class Table3Result:
    """Measured means beside the paper's, with bootstrap uncertainty."""

    config: ExperimentConfig
    measured: dict[str, dict[str, float]]
    intervals: dict[str, ConfidenceInterval]  # policy -> CI of all-users mean
    ordering_decisive: bool  # paired bootstrap: T/4 < T/2 < 3T/4 excl. 0

    def all_below_one(self) -> bool:
        """Selling helps on average everywhere (paper's conclusion)."""
        return all(
            value < 1.0 for row in self.measured.values() for value in row.values()
        )

    def ordering_holds(self) -> bool:
        """Column-wise A_{T/4} < A_{T/2} < A_{3T/4} (earlier spot saves
        more on average — Table III's visible ordering)."""
        return all(
            self.measured[POLICY_A_T4][column]
            <= self.measured[POLICY_A_T2][column]
            <= self.measured[POLICY_A_3T4][column]
            for column in _COLUMNS
        )


def run(config: ExperimentConfig, sweep: "SweepResult | None" = None) -> Table3Result:
    if sweep is None:
        sweep = run_sweep(config)
    normalized = sweep.normalized()
    online_only = {name: normalized[name] for name in ONLINE_POLICIES}
    measured = group_means(online_only, sweep.group_labels(), _GROUP_ORDER)
    intervals = {
        name: bootstrap_ci(values, seed=config.seed)
        for name, values in online_only.items()
    }
    ordering_decisive = (
        difference_ci(
            online_only[POLICY_A_T4], online_only[POLICY_A_T2], seed=config.seed
        ).high
        < 0.0
        and difference_ci(
            online_only[POLICY_A_T2], online_only[POLICY_A_3T4], seed=config.seed
        ).high
        < 0.0
    )
    return Table3Result(
        config=config,
        measured=measured,
        intervals=intervals,
        ordering_decisive=ordering_decisive,
    )


def render(result: Table3Result) -> str:
    headers = ["Policy", *_COLUMNS, "paper (all)"]
    rows = []
    for policy, row in result.measured.items():
        rows.append(
            [policy, *(row[column] for column in _COLUMNS),
             PAPER_TABLE_III[policy]["All users"]]
        )
    table = format_table(
        headers,
        rows,
        title="Table III — mean cost normalized to Keep-Reserved",
    )
    checks = [
        "all entries < 1: " + ("yes" if result.all_below_one() else "NO"),
        "ordering A_{T/4} <= A_{T/2} <= A_{3T/4}: "
        + ("yes" if result.ordering_holds() else "NO"),
        "ordering decisive under paired bootstrap: "
        + ("yes" if result.ordering_decisive else "no"),
    ]
    intervals = "\n".join(
        f"  {name}: {interval}" for name, interval in result.intervals.items()
    )
    return (
        table
        + "\nall-users means with 95% bootstrap intervals:\n"
        + intervals
        + "\n"
        + "\n".join(checks)
    )
