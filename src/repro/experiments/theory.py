"""Theory experiment: the §IV-C statistics and Propositions 1–3b bounds.

Regenerates the two statistical claims backing the headline ratios
(θ ∈ (1, 4) and α < 0.36 over the standard catalog), tabulates the
proved bounds per algorithm for the experiment instance, and stress-tests
them empirically: random and adversarial single-instance demand profiles
must never push the online/OPT cost ratio above the proved bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.breakeven import PAPER_DECISION_FRACTIONS
from repro.core.ratios import (
    adversarial_case1_profile,
    adversarial_case2_profile,
    case1_binds,
    case1_bound,
    case2_bound,
    competitive_ratio,
)
from repro.core.single import compare_single_instance
from repro.experiments.config import ExperimentConfig
from repro.pricing.statistics import CatalogStatistics, compute_statistics, format_statistics


@dataclass(frozen=True)
class TheoryRow:
    """One algorithm's proved bound and empirical worst observed ratio."""

    phi: float
    case1: float
    case2: float
    bound: float
    case1_binds: bool
    empirical_max: float

    @property
    def holds(self) -> bool:
        return self.empirical_max <= self.bound + 1e-9


@dataclass(frozen=True)
class TheoryResult:
    config: ExperimentConfig
    catalog_stats: CatalogStatistics
    rows: list[TheoryRow]

    def all_bounds_hold(self) -> bool:
        return all(row.holds for row in self.rows)


def run(config: ExperimentConfig, trials: int = 400) -> TheoryResult:
    plan = config.plan()
    a = config.selling_discount
    rng = np.random.default_rng(config.seed)
    rows = []
    for phi in PAPER_DECISION_FRACTIONS:
        ratios = []
        for profile in (
            adversarial_case1_profile(plan, a, phi),
            adversarial_case2_profile(plan, a, phi),
        ):
            ratios.append(compare_single_instance(profile, plan, a, phi).ratio)
        for _ in range(trials):
            style = rng.integers(0, 3)
            period = plan.period_hours
            if style == 0:
                busy = rng.random(period) < rng.uniform(0.0, 1.0)
            elif style == 1:
                cut = int(rng.integers(0, period + 1))
                busy = np.arange(period) < cut
            else:
                cut = int(rng.integers(0, period + 1))
                busy = np.arange(period) >= cut
            ratios.append(compare_single_instance(busy, plan, a, phi).ratio)
        rows.append(
            TheoryRow(
                phi=phi,
                case1=case1_bound(phi, plan.alpha, a),
                case2=case2_bound(phi, a),
                bound=competitive_ratio(phi, plan.alpha, a),
                case1_binds=case1_binds(phi, plan.alpha, a),
                empirical_max=max(ratios),
            )
        )
    return TheoryResult(
        config=config,
        catalog_stats=compute_statistics(),
        rows=rows,
    )


def render(result: TheoryResult) -> str:
    pieces = [
        "Theory — Section IV-C statistics and Propositions 1-3b",
        "",
        format_statistics(result.catalog_stats),
        "",
    ]
    headers = ["phi", "case-1 bound", "case-2 bound", "proved ratio",
               "case 1 binds", "empirical max", "holds"]
    rows = [
        [f"{row.phi:g}", row.case1, row.case2, row.bound,
         row.case1_binds, row.empirical_max, row.holds]
        for row in result.rows
    ]
    pieces.append(
        format_table(
            headers,
            rows,
            title=(
                f"bounds for {result.config.plan().name} "
                f"(alpha={result.config.alpha}, a={result.config.selling_discount})"
            ),
        )
    )
    return "\n".join(pieces)
