"""`repro.lint` — AST-based domain-invariant linter for this codebase.

The reproduction's correctness rests on numeric invariants that tests
only probe pointwise: break-even arithmetic on float money, seeded
randomness in the Monte-Carlo experiments, hour-denominated time.  This
package enforces those invariants *structurally*, as named rules over
the AST of every module:

========  ==========================================================
REP001    no ``==``/``!=`` between float money expressions
REP002    no unseeded/global RNG in simulation code
REP003    no wall-clock reads in simulation hot paths
REP004    no mutable default arguments
REP005    no arithmetic mixing ``_hours`` with ``_months``/``_years``
REP006    complete annotations on public core/pricing functions
REP007    no bare ``except:`` / silently swallowed exceptions
REP008    no ``assert`` as runtime validation in library code
REP009    no text-mode file I/O without an explicit ``encoding=``
REP010    explicit ``daemon=`` on threads; sockets only under serve/
REP011    no hard-coded policy-name string literals
========  ==========================================================

``--project`` adds the whole-program ``REP1xx`` analyses
(:mod:`repro.lint.project`): every module is parsed once into a
:class:`~repro.lint.project.model.ProjectModel` (module graph, symbol
tables, conservative call graph) and project-scoped rules run on top:

========  ==========================================================
REP101    determinism taint — nondeterministic sources must not reach
          decision code through any cross-module call chain
REP102    concurrency discipline in serve/ — locked shared writes,
          no thread-before-spawn, no leaked non-daemon threads
REP103    API-contract drift — routes/statuses/envelope keys must
          match ``docs/serving.md`` and the versioned envelope
========  ==========================================================

Run ``python -m repro.lint [paths]`` (add ``--project`` for the REP1xx
analyses, ``--baseline lint_baseline.json`` to report only new
findings); suppress a finding inline with
``# repro-lint: disable=REP001`` (line) or
``# repro-lint: disable-file=REP006`` (file).  See
``docs/static_analysis.md`` for the full rule catalogue and rationale.
"""

from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import Diagnostic, format_json, format_text
from repro.lint.engine import (
    LintConfigError,
    LintReport,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.lint.registry import ModuleContext, Rule, all_rules, known_codes, register

__all__ = [
    "BaselineError",
    "Diagnostic",
    "LintConfigError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "apply_baseline",
    "fingerprint",
    "format_json",
    "format_text",
    "known_codes",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "register",
    "write_baseline",
]
