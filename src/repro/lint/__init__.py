"""`repro.lint` — AST-based domain-invariant linter for this codebase.

The reproduction's correctness rests on numeric invariants that tests
only probe pointwise: break-even arithmetic on float money, seeded
randomness in the Monte-Carlo experiments, hour-denominated time.  This
package enforces those invariants *structurally*, as named rules over
the AST of every module:

========  ==========================================================
REP001    no ``==``/``!=`` between float money expressions
REP002    no unseeded/global RNG in simulation code
REP003    no wall-clock reads in simulation hot paths
REP004    no mutable default arguments
REP005    no arithmetic mixing ``_hours`` with ``_months``/``_years``
REP006    complete annotations on public core/pricing functions
REP007    no bare ``except:`` / silently swallowed exceptions
REP008    no ``assert`` as runtime validation in library code
========  ==========================================================

Run ``python -m repro.lint [paths]``; suppress a finding inline with
``# repro-lint: disable=REP001`` (line) or
``# repro-lint: disable-file=REP006`` (file).  See
``docs/static_analysis.md`` for the full rule catalogue and rationale.
"""

from repro.lint.diagnostics import Diagnostic, format_json, format_text
from repro.lint.engine import LintConfigError, LintReport, lint_paths, lint_source
from repro.lint.registry import ModuleContext, Rule, all_rules, known_codes, register

__all__ = [
    "Diagnostic",
    "LintConfigError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "format_json",
    "format_text",
    "known_codes",
    "lint_paths",
    "lint_source",
    "register",
]
