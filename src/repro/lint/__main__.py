"""Entry point for ``python -m repro.lint``."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. head);
        # mirror the convention of exiting quietly without a traceback.
        sys.stderr.close()
        sys.exit(1)
