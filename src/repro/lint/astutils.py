"""Small AST helpers shared by the stock rules."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """The last identifier of an expression: ``x`` for ``x``, ``attr``
    for ``obj.attr``, the callee's terminal for ``f(...)``."""
    if isinstance(node, ast.Call):
        return terminal_identifier(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def identifier_tokens(identifier: str) -> FrozenSet[str]:
    """Lower-cased underscore-separated tokens of an identifier."""
    return frozenset(t for t in identifier.lower().split("_") if t)


def walk_functions(tree: ast.Module) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function definition in a module, at any nesting level."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
