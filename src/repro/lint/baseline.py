"""Committed-baseline support for incremental lint adoption.

A baseline is a JSON file listing findings that are *known and accepted*
for now; ``--baseline FILE`` subtracts them from a run so only **new**
findings fail CI, and ``--baseline-update`` rewrites the file to the
current findings.  Entries are matched on a line-insensitive
fingerprint — ``(code, normalized path, message)`` — so reformatting a
file or adding imports above a baselined finding does not resurrect it,
while moving the finding to another file or changing what it says does.

The shipped tree's baseline (``lint_baseline.json``) is empty: the
project analyses were introduced together with fixes for everything
they found, and the file exists so the workflow (and CI wiring) is
exercised from day one.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic

BASELINE_FORMAT = 1

Fingerprint = Tuple[str, str, str]


class BaselineError(ReproError):
    """Unreadable or malformed baseline file."""


def normalize_path(path: str) -> str:
    """Path as stored in baselines: parts from the last ``repro``
    component on (so absolute and relative invocations agree), with
    forward slashes."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts[-2:] if len(parts) >= 2 else parts)


def fingerprint(diagnostic: Diagnostic) -> Fingerprint:
    return (diagnostic.code, normalize_path(diagnostic.path), diagnostic.message)


def load_baseline(path: "Path | str") -> "Counter[Fingerprint]":
    """Load a baseline file into a fingerprint multiset."""
    file_path = Path(path)
    if not file_path.is_file():
        raise BaselineError(f"baseline file not found: {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"could not read baseline {file_path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise BaselineError(
            f"baseline {file_path} has unsupported format "
            f"{payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {file_path} has no entries list")
    counts: "Counter[Fingerprint]" = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {file_path} has a non-object entry")
        try:
            key = (str(entry["code"]), str(entry["path"]), str(entry["message"]))
        except KeyError as error:
            raise BaselineError(
                f"baseline {file_path} entry missing key {error}"
            ) from error
        counts[key] += 1
    return counts


def write_baseline(path: "Path | str", diagnostics: "Sequence[Diagnostic]") -> None:
    """Write the current findings as the new accepted baseline."""
    entries: "List[Dict[str, str]]" = [
        {"code": code, "path": norm, "message": message}
        for code, norm, message in sorted(fingerprint(d) for d in diagnostics)
    ]
    payload = {"format": BASELINE_FORMAT, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    diagnostics: "Sequence[Diagnostic]", baseline: "Counter[Fingerprint]"
) -> "Tuple[List[Diagnostic], int, int]":
    """Split findings against a baseline.

    Returns ``(new, matched, stale)``: the findings *not* covered by the
    baseline, how many were covered, and how many baseline entries
    matched nothing (fixed findings the file still carries — prune them
    with ``--baseline-update``)."""
    remaining = Counter(baseline)
    new: "List[Diagnostic]" = []
    matched = 0
    for diagnostic in diagnostics:
        key = fingerprint(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(diagnostic)
    stale = sum(remaining.values())
    return new, matched, stale
