"""Command-line interface: ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings reported, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.diagnostics import format_json, format_text
from repro.lint.engine import LintConfigError, lint_paths
from repro.lint.registry import all_rules


def _parse_codes(raw: "Optional[str]") -> "Optional[List[str]]":
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    if not codes:
        raise LintConfigError("--select/--ignore given but no rule codes parsed")
    return codes


def _default_paths() -> "List[str]":
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    raise LintConfigError("no paths given and ./src/repro does not exist")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based domain-invariant linter for the repro codebase: "
            "enforces the paper's numeric and determinism invariants as "
            "named REPxxx rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src/repro)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def _render_rule_list() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.subpackages) if rule.subpackages else "all subpackages"
        lines.append(f"{rule.code} {rule.name} [{scope}]")
        lines.append(f"    {rule.summary}")
        lines.append(f"    rationale: {rule.rationale}")
    return "\n".join(lines)


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_render_rule_list())
        return 0
    try:
        paths = list(options.paths) or _default_paths()
        report = lint_paths(
            paths,
            select=_parse_codes(options.select),
            ignore=_parse_codes(options.ignore),
        )
    except LintConfigError as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(format_json(report.diagnostics, report.files_checked))
    else:
        print(format_text(report.diagnostics, report.files_checked))
    return 0 if report.clean else 1
