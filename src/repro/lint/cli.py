"""Command-line interface: ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings reported, 2 bad invocation.

``--project`` adds the whole-program ``REP1xx`` analyses (determinism
taint, concurrency discipline, API-contract drift) on top of the file
rules, still in one process and one parse per module.  ``--baseline
FILE`` subtracts accepted findings so only new ones fail;
``--baseline-update`` rewrites the file to the current findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import format_json, format_text
from repro.lint.engine import LintConfigError, lint_paths, lint_project
from repro.lint.registry import all_rules


def _parse_codes(raw: "Optional[str]") -> "Optional[List[str]]":
    if raw is None:
        return None
    codes = [code.strip().upper() for code in raw.split(",") if code.strip()]
    if not codes:
        raise LintConfigError("--select/--ignore given but no rule codes parsed")
    return codes


def _default_paths() -> "List[str]":
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [str(candidate)]
    raise LintConfigError("no paths given and ./src/repro does not exist")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based domain-invariant linter for the repro codebase: "
            "enforces the paper's numeric and determinism invariants as "
            "named REPxxx rules."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src/repro)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--project", action="store_true",
        help=(
            "run the whole-program REP1xx analyses (determinism taint, "
            "concurrency discipline, API-contract drift) in addition to "
            "the file rules"
        ),
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=(
            "subtract the accepted findings in FILE; only findings not "
            "in the baseline are reported (and set the exit code)"
        ),
    )
    parser.add_argument(
        "--baseline-update", action="store_true",
        help="rewrite --baseline FILE to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def _render_rule_list() -> str:
    from repro.lint.project.registry import all_project_rules

    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.subpackages) if rule.subpackages else "all subpackages"
        lines.append(f"{rule.code} {rule.name} [{scope}]")
        lines.append(f"    {rule.summary}")
        lines.append(f"    rationale: {rule.rationale}")
    for project_rule in all_project_rules():
        lines.append(
            f"{project_rule.code} {project_rule.name} [project-wide, --project]"
        )
        lines.append(f"    {project_rule.summary}")
        lines.append(f"    rationale: {project_rule.rationale}")
    return "\n".join(lines)


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_render_rule_list())
        return 0
    try:
        if options.baseline_update and not options.baseline:
            raise LintConfigError("--baseline-update requires --baseline FILE")
        paths = list(options.paths) or _default_paths()
        runner = lint_project if options.project else lint_paths
        report = runner(
            paths,
            select=_parse_codes(options.select),
            ignore=_parse_codes(options.ignore),
        )
        if options.baseline_update:
            write_baseline(options.baseline, report.diagnostics)
            print(
                f"repro.lint: baseline {options.baseline} updated with "
                f"{len(report.diagnostics)} findings"
            )
            return 0
        baseline_note = ""
        if options.baseline:
            accepted = load_baseline(options.baseline)
            new, matched, stale = apply_baseline(report.diagnostics, accepted)
            report.diagnostics = new
            baseline_note = (
                f"baseline: {matched} accepted, {stale} stale, "
                f"{len(new)} new"
            )
    except (LintConfigError, BaselineError) as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(format_json(report.diagnostics, report.files_checked))
    else:
        print(format_text(report.diagnostics, report.files_checked))
        if baseline_note:
            print(f"repro.lint: {baseline_note}")
    return 0 if report.clean else 1
