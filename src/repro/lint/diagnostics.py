"""Diagnostic records and output formatting for :mod:`repro.lint`."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

#: Pseudo-code attached to files the engine could not parse.  It is not
#: a registered rule: it cannot be suppressed or ``--ignore``-d away,
#: because an unparsable module can satisfy no invariant at all.
PARSE_ERROR_CODE = "REP000"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a location.

    ``code`` is the rule identifier (``REP001``...), ``path`` the file as
    given to the engine, and ``line``/``column`` are 1-based/0-based as
    in :mod:`ast`.
    """

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"


def sort_key(diagnostic: Diagnostic) -> "tuple[str, int, int, str]":
    return (diagnostic.path, diagnostic.line, diagnostic.column, diagnostic.code)


def format_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Human-readable report, one line per finding plus a summary line."""
    lines = [d.render() for d in diagnostics]
    count = len(diagnostics)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"repro.lint: {count} {noun} in {files_checked} files")
    return "\n".join(lines)


def format_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Machine-readable report: findings plus per-code counts."""
    payload = {
        "diagnostics": [asdict(d) for d in diagnostics],
        "summary": {
            "files_checked": files_checked,
            "count": len(diagnostics),
            "by_code": dict(sorted(count_by_code(diagnostics).items())),
        },
    }
    return json.dumps(payload, indent=2)


def count_by_code(diagnostics: Iterable[Diagnostic]) -> "Counter[str]":
    return Counter(d.code for d in diagnostics)
