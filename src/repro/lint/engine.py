"""The lint engine: file discovery, rule execution, filtering.

The engine parses each module once, hands the shared
:class:`~repro.lint.registry.ModuleContext` to every applicable rule,
drops findings hit by an inline suppression comment, applies
``--select``/``--ignore`` filtering, and returns a :class:`LintReport`.

:func:`lint_project` is the whole-program entry point: the same single
parse per module, the per-file rules, **plus** the ``REP1xx`` project
analyses (:mod:`repro.lint.project`) run over a
:class:`~repro.lint.project.model.ProjectModel` built from the already
parsed contexts — one process, one pass over the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ReproError
from repro.lint.diagnostics import PARSE_ERROR_CODE, Diagnostic, sort_key
from repro.lint.registry import ModuleContext, Rule, all_rules, known_codes
from repro.lint.suppressions import collect_suppressions


class LintConfigError(ReproError):
    """Invalid linter invocation (unknown rule code, missing path)."""


@dataclass
class LintReport:
    """All diagnostics of one run plus basic bookkeeping."""

    diagnostics: "List[Diagnostic]" = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.diagnostics


def _relative_parts(path: Path) -> "Tuple[str, ...]":
    """Path parts below the ``repro`` package root, so rules can scope
    themselves to subpackages. For out-of-tree files (test fixtures,
    scratch dirs) the parent directory name stands in for the
    subpackage, so ``<tmp>/core/x.py`` scopes like ``repro/core/x.py``."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts[-2:] if len(parts) >= 2 else parts


def _resolve_rules(
    select: "Optional[Iterable[str]]",
    ignore: "Optional[Iterable[str]]",
    project: bool = False,
) -> "Tuple[List[Rule], List[object]]":
    """Instantiate the wanted file rules (and project rules when
    ``project``); unknown codes are an invocation error."""
    known = set(known_codes())
    project_rules: "List[object]" = []
    if project:
        from repro.lint.project.registry import known_project_codes

        known |= set(known_project_codes())
    selected: "Set[str]" = set(select) if select is not None else set(known)
    ignored: "Set[str]" = set(ignore) if ignore is not None else set()
    unknown = (selected | ignored) - known
    if unknown:
        raise LintConfigError(
            f"unknown rule codes: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    wanted = selected - ignored
    file_rules = [rule for rule in all_rules() if rule.code in wanted]
    if project:
        from repro.lint.project.registry import all_project_rules

        project_rules = [
            rule for rule in all_project_rules() if rule.code in wanted
        ]
    return file_rules, project_rules


def _build_context(
    source: str, filename: str
) -> "Union[ModuleContext, Diagnostic]":
    """Parse one module; a :class:`Diagnostic` stands in on syntax errors."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as error:
        return Diagnostic(
            code=PARSE_ERROR_CODE,
            message=f"could not parse module: {error.msg}",
            path=filename,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
        )
    return ModuleContext(
        path=filename,
        relative_parts=_relative_parts(Path(filename)),
        source=source,
        tree=tree,
        suppressions=collect_suppressions(source),
    )


def _run_file_rules(
    context: ModuleContext, rules: "Sequence[Rule]"
) -> "List[Diagnostic]":
    findings: "List[Diagnostic]" = []
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for diagnostic in rule.check(context):
            if not context.suppressions.is_suppressed(
                diagnostic.code, diagnostic.line
            ):
                findings.append(diagnostic)
    return findings


def lint_source(
    source: str,
    filename: str = "<string>",
    select: "Optional[Iterable[str]]" = None,
    ignore: "Optional[Iterable[str]]" = None,
) -> "List[Diagnostic]":
    """Lint one module given as a string. ``filename`` drives both the
    diagnostics' path field and subpackage scoping (``"core/x.py"``
    makes core-scoped rules apply)."""
    rules, _ = _resolve_rules(select, ignore)
    context = _build_context(source, filename)
    if isinstance(context, Diagnostic):
        return [context]
    findings = _run_file_rules(context, rules)
    findings.sort(key=sort_key)
    return findings


def iter_python_files(paths: "Sequence[str | Path]") -> "List[Path]":
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: "Set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintConfigError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: "Sequence[str | Path]",
    select: "Optional[Iterable[str]]" = None,
    ignore: "Optional[Iterable[str]]" = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and aggregate a report."""
    rules, _ = _resolve_rules(select, ignore)
    report = LintReport()
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        context = _build_context(source, str(path))
        if isinstance(context, Diagnostic):
            report.diagnostics.append(context)
        else:
            report.diagnostics.extend(_run_file_rules(context, rules))
        report.files_checked += 1
    report.diagnostics.sort(key=sort_key)
    return report


def _project_root(paths: "Sequence[str | Path]") -> Path:
    """The package root the :class:`ProjectModel` is built against: the
    first directory argument, or the first file's parent."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            return path
    return Path(paths[0]).parent


def lint_project(
    paths: "Sequence[str | Path]",
    select: "Optional[Iterable[str]]" = None,
    ignore: "Optional[Iterable[str]]" = None,
) -> LintReport:
    """Whole-program lint: per-file rules plus the ``REP1xx`` project
    analyses, every module parsed exactly once."""
    from repro.lint.project.model import ProjectModel

    file_rules, project_rules = _resolve_rules(select, ignore, project=True)
    if not paths:
        raise LintConfigError("project lint needs at least one path")
    report = LintReport()
    contexts: "List[ModuleContext]" = []
    by_path: "Dict[str, ModuleContext]" = {}
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        context = _build_context(source, str(path))
        if isinstance(context, Diagnostic):
            report.diagnostics.append(context)
        else:
            contexts.append(context)
            by_path[context.path] = context
            report.diagnostics.extend(_run_file_rules(context, file_rules))
        report.files_checked += 1
    model = ProjectModel.build(contexts, _project_root(paths))
    for rule in project_rules:
        for diagnostic in rule.check(model):
            context = by_path.get(diagnostic.path)
            if context is not None and context.suppressions.is_suppressed(
                diagnostic.code, diagnostic.line
            ):
                continue
            report.diagnostics.append(diagnostic)
    report.diagnostics.sort(key=sort_key)
    return report
