"""Whole-program analysis layer of :mod:`repro.lint`.

The per-file rules (REP001–REP011) judge one module at a time; the
invariants behind the reproduction's *exactness* guarantees — serve's
60-seed differential, the shard cluster's kill ``-9`` bit-identical
differential, the sweep cache keyed on ``ENGINE_VERSION`` — are
project-wide properties: nondeterminism can *flow* into decision code
through calls, lock discipline spans classes, and the HTTP contract
spans code and docs. This package parses the package once into a
:class:`~repro.lint.project.model.ProjectModel` (module graph, per-module
symbol tables, a conservative call graph) and runs project-scoped
``REP1xx`` analyses on top of it:

========  ==========================================================
REP101    determinism taint: nondeterministic sources must not reach
          decision code (``core/``, ``analysis/``, ``serve/state.py``)
          through any call chain
REP102    concurrency discipline in ``serve/``: shared state written
          from handler/worker-reachable code only under a lock;
          threads never started before a process spawn; no non-daemon
          thread leaks
REP103    API-contract drift: routes, status codes, and envelope keys
          in ``serve/`` must match ``docs/serving.md`` and responses
          must go through the versioned envelope
========  ==========================================================

Run them with ``python -m repro.lint --project`` (reported through the
same :class:`~repro.lint.diagnostics.Diagnostic` / suppression /
``--format json`` machinery as the file rules, plus an optional
committed baseline for incremental adoption).
"""

from repro.lint.project.model import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.lint.project.registry import (
    ProjectRule,
    all_project_rules,
    known_project_codes,
    register_project_rule,
)

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "ProjectRule",
    "all_project_rules",
    "known_project_codes",
    "register_project_rule",
]
