"""The project model: one parse of the package, shared by all analyses.

A :class:`ProjectModel` is built from the same :class:`ModuleContext`
objects the per-file rules consume (so ``--project`` still parses each
module exactly once) and adds the cross-module structure the ``REP1xx``
analyses need:

* a **module graph** — every module keyed by dotted name and by path;
* a **per-module symbol table** — functions (with qualified names,
  including methods), classes (with base names and lock attributes),
  and an import map from local name to fully-qualified target;
* a **conservative call graph** — each call site resolved through the
  import map, same-module definitions, ``self.`` method lookup, and
  package re-exports; attribute calls that cannot be resolved keep
  their bare method name so analyses may fall back to
  name-matching (over-approximate, never under-approximate).

The model is deliberately syntactic: no imports are executed, so it is
safe on any tree the linter can parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.registry import ModuleContext

#: Callee names too generic for bare-name fallback edges in precise
#: analyses (REP101): ``.get()`` on a dict must not alias ``Cache.get``.
GENERIC_METHOD_NAMES = frozenset(
    {
        "get", "items", "keys", "values", "append", "add", "extend",
        "pop", "update", "join", "split", "strip", "format", "encode",
        "decode", "read", "write", "close", "copy", "sort", "index",
        "count", "setdefault", "result", "render", "register",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    dotted: "Optional[str]"  # the callee as written (``a.b.c``), if nameable
    bare: "Optional[str]"  # terminal identifier (method-name fallback key)
    node: ast.Call
    resolved: "Tuple[str, ...]"  # candidate fully-qualified callee qualnames
    under_lock: bool  # lexically inside ``with <lock>:``
    is_attribute: bool  # spelled ``obj.m(...)`` rather than ``m(...)``


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # ``repro.serve.server.AdvisoryApp.ingest``
    module: str  # dotted module name
    name: str  # bare name
    class_name: "Optional[str]"  # owning class, if a method
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    calls: "List[CallSite]" = field(default_factory=list)


@dataclass
class ClassInfo:
    """One module-level class definition."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    base_names: "Tuple[str, ...]"  # base expressions as written (dotted)
    lock_attrs: "Tuple[str, ...]"  # self attrs assigned a *Lock() value
    methods: "Tuple[str, ...]"  # method qualnames


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol table."""

    name: str  # dotted module name (``repro.serve.shard``)
    context: ModuleContext
    imports: "Dict[str, str]" = field(default_factory=dict)
    functions: "Dict[str, FunctionInfo]" = field(default_factory=dict)
    classes: "Dict[str, ClassInfo]" = field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.context.path

    @property
    def subpackage(self) -> str:
        return self.context.subpackage

    @property
    def relative_parts(self) -> "Tuple[str, ...]":
        return self.context.relative_parts


def _module_name(root: Path, path: Path) -> str:
    """Dotted module name of ``path`` below package root ``root``."""
    relative = path.relative_to(root)
    parts = [root.name, *relative.parts[:-1]]
    stem = relative.parts[-1][: -len(".py")] if relative.parts else ""
    if stem and stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _dotted(node: ast.AST) -> "Optional[str]":
    parts: "List[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _expr_mentions_lock(node: ast.AST) -> bool:
    """Heuristic: does an expression name something lock-like?

    Covers ``self._fleet_lock``, ``self._shard_locks[i]``, a bare
    ``lock`` variable, and ``threading.Lock()`` — any identifier in the
    expression containing the token ``lock``."""
    for child in ast.walk(node):
        identifier: "Optional[str]" = None
        if isinstance(child, ast.Name):
            identifier = child.id
        elif isinstance(child, ast.Attribute):
            identifier = child.attr
        if identifier is not None and "lock" in identifier.lower():
            return True
    return False


def _is_lock_constructor(node: ast.AST) -> bool:
    """True when the expression constructs (or contains) a ``*Lock()``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            dotted = _dotted(child.func)
            if dotted is not None and dotted.split(".")[-1].endswith("Lock"):
                return True
    return False


class _FunctionCollector(ast.NodeVisitor):
    """Collects call sites within one function body, tracking whether
    each site sits lexically inside a ``with <lock>:`` block. Nested
    function/class definitions are not descended into (they are
    collected as functions of their own)."""

    def __init__(self) -> None:
        self.calls: "List[CallSite]" = []
        self._lock_depth = 0
        self._top = True

    def _visit_body(self, statements: "Sequence[ast.stmt]") -> None:
        for statement in statements:
            self.visit(statement)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        if self._top:
            self._top = False
            self._visit_body(node.body)
        # nested defs: skip (their bodies belong to their own FunctionInfo)

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        pass  # nested classes collected separately

    def visit_Lambda(self, node: ast.Lambda) -> None:  # noqa: N802
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:  # noqa: N802
        holds = any(_expr_mentions_lock(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if holds:
            self._lock_depth += 1
        self._visit_body(node.body)
        if holds:
            self._lock_depth -= 1

    visit_AsyncWith = visit_With  # noqa: N815

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        dotted = _dotted(node.func)
        bare: "Optional[str]" = None
        if isinstance(node.func, ast.Attribute):
            bare = node.func.attr
        elif isinstance(node.func, ast.Name):
            bare = node.func.id
        self.calls.append(
            CallSite(
                dotted=dotted,
                bare=bare,
                node=node,
                resolved=(),  # filled in by the linker pass
                under_lock=self._lock_depth > 0,
                is_attribute=isinstance(node.func, ast.Attribute),
            )
        )
        self.generic_visit(node)


def _collect_imports(tree: ast.Module, module_name: str) -> "Dict[str, str]":
    """Map of local name -> fully-qualified target for a module."""
    package_parts = module_name.split(".")[:-1] or [module_name]
    imports: "Dict[str, str]" = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module_name.split(".")
                # ``from . import x`` in a module drops the module's own
                # name plus (level - 1) further packages.
                base = base_parts[: len(base_parts) - node.level]
                prefix = ".".join(base)
            else:
                prefix = node.module or ""
            if node.level and node.module:
                prefix = f"{prefix}.{node.module}" if prefix else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    del package_parts
    return imports


class ProjectModel:
    """The whole package, parsed once, with symbols and a call graph."""

    def __init__(self, root: Path, modules: "Dict[str, ModuleInfo]") -> None:
        self.root = root
        self.modules = modules
        self.modules_by_path: "Dict[str, ModuleInfo]" = {
            info.path: info for info in modules.values()
        }
        self.functions: "Dict[str, FunctionInfo]" = {}
        self.classes: "Dict[str, ClassInfo]" = {}
        for info in modules.values():
            self.functions.update(info.functions)
            self.classes.update(info.classes)
        self.by_bare_name: "Dict[str, List[FunctionInfo]]" = {}
        for function in self.functions.values():
            self.by_bare_name.setdefault(function.name, []).append(function)
        self._link_calls()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, contexts: "Sequence[ModuleContext]", root: "Path | str"
    ) -> "ProjectModel":
        """Build the model from already-parsed module contexts."""
        root_path = Path(root)
        modules: "Dict[str, ModuleInfo]" = {}
        for context in contexts:
            path = Path(context.path)
            try:
                name = _module_name(root_path, path)
            except ValueError:
                # Out-of-tree file (explicit file arguments): fall back
                # to the scoping parts the per-file rules already use.
                name = ".".join(
                    (root_path.name, *context.relative_parts)
                ).removesuffix(".py")
            info = ModuleInfo(name=name, context=context)
            info.imports = _collect_imports(context.tree, name)
            cls._collect_symbols(info)
            modules[name] = info
        return cls(root_path, modules)

    @staticmethod
    def _collect_symbols(info: ModuleInfo) -> None:
        """Fill ``info.functions`` / ``info.classes`` from the tree."""
        module = info.name

        def add_function(
            node: "ast.FunctionDef | ast.AsyncFunctionDef",
            class_name: "Optional[str]",
        ) -> str:
            qualname = (
                f"{module}.{class_name}.{node.name}"
                if class_name
                else f"{module}.{node.name}"
            )
            collector = _FunctionCollector()
            collector.visit(node)
            info.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=module,
                name=node.name,
                class_name=class_name,
                node=node,
                calls=collector.calls,
            )
            return qualname

        for node in info.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(node, None)
            elif isinstance(node, ast.ClassDef):
                methods: "List[str]" = []
                lock_attrs: "List[str]" = []
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.append(add_function(child, node.name))
                for child in ast.walk(node):
                    if isinstance(child, ast.Assign) and _is_lock_constructor(
                        child.value
                    ):
                        for target in child.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                lock_attrs.append(target.attr)
                base_names = tuple(
                    name
                    for name in (_dotted(base) for base in node.bases)
                    if name is not None
                )
                info.classes[f"{module}.{node.name}"] = ClassInfo(
                    qualname=f"{module}.{node.name}",
                    module=module,
                    name=node.name,
                    node=node,
                    base_names=base_names,
                    lock_attrs=tuple(lock_attrs),
                    methods=tuple(methods),
                )
        # Module-level statements form a pseudo-function so taint in
        # top-level code (constants built from RNG calls) is visible.
        top_level = [
            statement
            for statement in info.context.tree.body
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        if top_level:
            collector = _FunctionCollector()
            collector._top = False
            collector._visit_body(top_level)
            qualname = f"{module}.<module>"
            info.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=module,
                name="<module>",
                class_name=None,
                node=ast.FunctionDef(
                    name="<module>",
                    args=ast.arguments(
                        posonlyargs=[], args=[], kwonlyargs=[],
                        kw_defaults=[], defaults=[],
                    ),
                    body=top_level,
                    decorator_list=[],
                    lineno=1,
                    col_offset=0,
                ),
                calls=collector.calls,
            )

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _chase_reexport(
        self, target: str, depth: int = 0
    ) -> "Optional[str]":
        """Resolve ``target`` through package ``__init__`` re-exports."""
        if depth > 4:
            return None
        if target in self.functions:
            return target
        module_part, _, symbol = target.rpartition(".")
        owner = self.modules.get(module_part)
        if owner is None:
            return None
        onward = owner.imports.get(symbol)
        if onward is None:
            return None
        return self._chase_reexport(onward, depth + 1)

    def _resolve_call(
        self, info: ModuleInfo, function: FunctionInfo, site: CallSite
    ) -> "Tuple[str, ...]":
        dotted = site.dotted
        if dotted is None:
            return ()
        parts = dotted.split(".")
        head, tail = parts[0], parts[1:]
        candidates: "List[str]" = []

        if head == "self" and function.class_name is not None and tail:
            method = f"{info.name}.{function.class_name}.{tail[0]}"
            if method in self.functions:
                candidates.append(method)
        elif head in info.imports:
            target = ".".join([info.imports[head], *tail])
            resolved = self._chase_reexport(target)
            if resolved is not None:
                candidates.append(resolved)
            elif not tail and info.imports[head] in self.functions:
                candidates.append(info.imports[head])
        else:
            local = f"{info.name}.{dotted}"
            if local in self.functions:
                candidates.append(local)
            elif not tail:
                # calling a class constructor defined here: map to __init__
                init = f"{info.name}.{head}.__init__"
                if init in self.functions:
                    candidates.append(init)
        return tuple(candidates)

    def _link_calls(self) -> None:
        for info in self.modules.values():
            for function in info.functions.values():
                linked: "List[CallSite]" = []
                for site in function.calls:
                    resolved = self._resolve_call(info, function, site)
                    linked.append(
                        CallSite(
                            dotted=site.dotted,
                            bare=site.bare,
                            node=site.node,
                            resolved=resolved,
                            under_lock=site.under_lock,
                            is_attribute=site.is_attribute,
                        )
                    )
                function.calls = linked

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def callees(
        self,
        function: FunctionInfo,
        bare_fallback: bool = False,
        fallback_modules: "Optional[frozenset[str]]" = None,
    ) -> "Iterator[Tuple[CallSite, FunctionInfo]]":
        """Resolved call edges out of ``function``.

        With ``bare_fallback`` an *attribute* call that did not resolve
        precisely conservatively edges to every same-named function
        (optionally restricted to subpackages in ``fallback_modules``);
        generic container-method names never produce fallback edges."""
        for site in function.calls:
            if site.resolved:
                for qualname in site.resolved:
                    yield site, self.functions[qualname]
                continue
            if not bare_fallback or not site.is_attribute:
                continue
            if site.bare is None or site.bare in GENERIC_METHOD_NAMES:
                continue
            for candidate in self.by_bare_name.get(site.bare, ()):  # conservative
                if (
                    fallback_modules is not None
                    and self.modules[candidate.module].subpackage
                    not in fallback_modules
                ):
                    continue
                yield site, candidate

    def class_of(self, function: FunctionInfo) -> "Optional[ClassInfo]":
        if function.class_name is None:
            return None
        return self.classes.get(f"{function.module}.{function.class_name}")

    def base_chain_matches(self, cls: ClassInfo, token: str) -> bool:
        """True when any (transitive) base class name contains ``token``."""
        seen: "set[str]" = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base in current.base_names:
                terminal = base.split(".")[-1]
                if token in terminal:
                    return True
                # chase project-local bases (resolve through imports)
                owner = self.modules[current.module]
                head = base.split(".")[0]
                target: "Optional[str]" = None
                if head in owner.imports:
                    target = ".".join(
                        [owner.imports[head], *base.split(".")[1:]]
                    )
                elif f"{current.module}.{base}" in self.classes:
                    target = f"{current.module}.{base}"
                if target is not None and target in self.classes:
                    stack.append(self.classes[target])
        return False

    def docs_file(self, name: str) -> "Optional[Path]":
        """Locate ``docs/<name>`` for the tree being linted (the docs
        directory sits next to the package root or one level further
        up, as in ``src/repro`` -> ``docs/``)."""
        for base in (self.root.parent, self.root.parent.parent):
            candidate = base / "docs" / name
            if candidate.is_file():
                return candidate
        return None
