"""Project-rule base class and registry.

Mirrors :mod:`repro.lint.registry`, but a project rule's ``check``
receives the whole :class:`~repro.lint.project.model.ProjectModel`
instead of one module — its findings may depend on any number of files
at once (a taint path is only a finding because of both its endpoints).
Project codes live in the ``REP1xx`` range so ``--select``/``--ignore``
and suppression comments treat them uniformly with the file rules.
"""

from __future__ import annotations

import abc
import ast
import re
from typing import Dict, Iterator, List, Optional, Type

from repro.lint.diagnostics import Diagnostic
from repro.lint.project.model import ModuleInfo, ProjectModel

_CODE_PATTERN = re.compile(r"^REP1\d{2}$")


class ProjectRule(abc.ABC):
    """Base class for whole-program analyses."""

    #: Unique identifier, ``REP1`` + two digits.
    code: str = ""
    #: Short kebab-case name, shown by ``--list-rules``.
    name: str = ""
    #: One-line description of what the analysis forbids.
    summary: str = ""
    #: Why the invariant matters for the reproduction (paper-level).
    rationale: str = ""

    @abc.abstractmethod
    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        """Yield one :class:`Diagnostic` per violation in the project."""

    def diagnostic(
        self, module: ModuleInfo, node: "Optional[ast.AST]", message: str
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            column=getattr(node, "col_offset", 0) if node is not None else 0,
        )


_PROJECT_REGISTRY: "Dict[str, Type[ProjectRule]]" = {}


def register_project_rule(rule_class: "Type[ProjectRule]") -> "Type[ProjectRule]":
    """Class decorator adding a project rule to the registry."""
    code = rule_class.code
    if not _CODE_PATTERN.match(code):
        raise ValueError(f"project rule code must match REP1xx, got {code!r}")
    if code in _PROJECT_REGISTRY and _PROJECT_REGISTRY[code] is not rule_class:
        raise ValueError(f"duplicate project rule code {code!r}")
    _PROJECT_REGISTRY[code] = rule_class
    return rule_class


def _load_stock_rules() -> None:
    # Importing registers; kept lazy so ``repro.lint`` stays cheap to
    # import for the file-rule path.
    from repro.lint.project import (  # noqa: F401
        rep101_determinism,
        rep102_concurrency,
        rep103_contract,
    )


def all_project_rules() -> "List[ProjectRule]":
    """Fresh instances of every registered project rule, by code."""
    _load_stock_rules()
    return [_PROJECT_REGISTRY[code]() for code in sorted(_PROJECT_REGISTRY)]


def known_project_codes() -> "List[str]":
    _load_stock_rules()
    return sorted(_PROJECT_REGISTRY)
