"""REP101 — determinism taint: nondeterminism must not reach decision code.

The reproduction's exactness guarantees (bit-identical differentials,
the ``ENGINE_VERSION``-keyed sweep cache) hold only if *decision code* —
the simulation core, the analysis layer, and the serving fleet state —
computes from its inputs alone.  REP002/REP003 police direct calls one
file at a time; this analysis traces nondeterministic **sources**
through the call graph so a helper in ``workload/`` calling
``time.time()`` is flagged the moment anything in ``core/`` starts
calling it, across any number of modules.

Sources
    * process-global RNG state: ``random.random()`` and friends,
      ``np.random.rand()`` and the rest of the legacy global API;
    * RNG construction without a caller-supplied seed:
      ``np.random.default_rng()`` / ``random.Random()`` with no
      arguments;
    * wall-clock reads: ``time.time``, ``datetime.now`` et al.
      (``perf_counter``/``monotonic`` are timing instrumentation, not
      decision inputs, and are exempt);
    * entropy: ``os.urandom``, ``uuid.uuid4``, ``secrets.*``;
    * iteration order of an unordered set (``for x in {…}`` or
      ``for x in set(…)`` without a ``sorted`` wrapper).

Sinks
    Functions defined in ``core/`` (including ``core/fastsim.py``,
    ``core/clearing.py``, and ``core/policyspec.py``), ``analysis/``,
    ``marketplace/``, ``serve/state.py``, or ``serve/checkpoint.py``.
    The marketplace joined the sink set when the clearing engine wired
    its sellers and buyers into the decision engines; the checkpoint
    module joined when format 4 made restore re-draw randomized spots —
    a nondeterministic read there would break the kill-and-restore
    bit-identity the serve differential proves.

A finding is a sink function from which some call chain reaches a
source; the message spells out one witness chain end to end.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project.model import FunctionInfo, ProjectModel
from repro.lint.project.registry import ProjectRule, register_project_rule
from repro.lint.rules.rep002_unseeded_rng import (
    _NUMPY_GLOBAL_FNS,
    _STDLIB_GLOBAL_FNS,
)

#: ``(penultimate, last)`` dotted-name suffixes that read the wall clock.
_CLOCK_SUFFIXES = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Other entropy sources, matched on full dotted name.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)


def _call_source(node: ast.Call, dotted: "Optional[str]") -> "Optional[str]":
    """Describe the nondeterministic source a call is, if it is one."""
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[-1] == "default_rng" and not node.args and not node.keywords:
        return "np.random.default_rng() without a seed"
    if dotted == "random.Random" and not node.args:
        return "random.Random() without a seed"
    if (
        len(parts) >= 2
        and parts[-2] == "random"
        and parts[0] in ("np", "numpy")
        and parts[-1] in _NUMPY_GLOBAL_FNS
    ):
        return f"process-global np.random.{parts[-1]}()"
    if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_GLOBAL_FNS:
        return f"process-global random.{parts[1]}()"
    if len(parts) >= 2 and (parts[-2], parts[-1]) in _CLOCK_SUFFIXES:
        return f"wall-clock read {dotted}()"
    if dotted in _ENTROPY_CALLS:
        return f"entropy source {dotted}()"
    return None


def _set_iteration_sources(
    function: FunctionInfo,
) -> "Iterator[Tuple[ast.AST, str]]":
    """``for``/comprehension iteration directly over an unordered set."""
    iters: "List[ast.expr]" = []
    for node in ast.walk(function.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(generator.iter for generator in node.generators)
    for expression in iters:
        if isinstance(expression, ast.Set):
            yield expression, "iteration over a set literal (unordered)"
        elif (
            isinstance(expression, ast.Call)
            and isinstance(expression.func, ast.Name)
            and expression.func.id in ("set", "frozenset")
        ):
            yield expression, f"iteration over {expression.func.id}() (unordered)"


def _is_sink_module(subpackage: str, relative_parts: "Tuple[str, ...]") -> bool:
    if subpackage in ("core", "analysis", "marketplace"):
        return True
    # serve/state.py decides; serve/checkpoint.py rebuilds the decider
    # (including randomized re-draws at restore) — both must be pure
    # functions of their inputs.
    return relative_parts in (("serve", "state.py"), ("serve", "checkpoint.py"))


@register_project_rule
class DeterminismTaintRule(ProjectRule):
    code = "REP101"
    name = "determinism-taint"
    summary = (
        "call chain by which a nondeterministic source (global RNG, "
        "unseeded generator, wall clock, entropy, set-order iteration) "
        "reaches decision code in core/, analysis/, or serve/state.py"
    )
    rationale = (
        "The 60-seed serve differential and the shard cluster's kill -9 "
        "bit-identical check assume decision code is a pure function of "
        "its inputs; one helper three calls away reading time.time() "
        "breaks both without failing any per-file rule. Tracing taint "
        "over the call graph keeps the exactness guarantee structural "
        "rather than hoped-for."
    )

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        # 1. Direct sources per function.
        direct: "Dict[str, Tuple[str, ast.AST]]" = {}
        for function in model.functions.values():
            for site in function.calls:
                description = _call_source(site.node, site.dotted)
                if description is not None:
                    direct.setdefault(function.qualname, (description, site.node))
            for node, description in _set_iteration_sources(function):
                direct.setdefault(function.qualname, (description, node))

        # 2. Reverse call edges (callee -> callers), conservative
        #    bare-name fallback for unresolved attribute calls.
        callers: "Dict[str, List[Tuple[str, ast.AST]]]" = {}
        for function in model.functions.values():
            for site, callee in model.callees(function, bare_fallback=True):
                callers.setdefault(callee.qualname, []).append(
                    (function.qualname, site.node)
                )

        # 3. Fixpoint: propagate taint from source functions to callers,
        #    recording one witness step per function for chain replay.
        #    ``witness[f] = (next function toward the source, call node)``.
        witness: "Dict[str, Tuple[Optional[str], ast.AST]]" = {
            qualname: (None, node) for qualname, (_, node) in direct.items()
        }
        queue = deque(direct)
        while queue:
            tainted = queue.popleft()
            for caller, call_node in callers.get(tainted, ()):  # BFS: shortest chains
                if caller in witness:
                    continue
                witness[caller] = (tainted, call_node)
                queue.append(caller)

        # 4. Flag tainted functions defined in decision modules.
        for function in sorted(model.functions.values(), key=lambda f: f.qualname):
            if function.qualname not in witness:
                continue
            info = model.modules[function.module]
            if not _is_sink_module(info.subpackage, info.relative_parts):
                continue
            chain: "List[str]" = [function.qualname]
            step: "Optional[str]" = function.qualname
            anchor = witness[function.qualname][1]
            while step is not None:
                step = witness[step][0]
                if step is not None:
                    chain.append(step)
            root = chain[-1]
            description = direct[root][0]

            def _short(qualname: str) -> str:
                owner = model.functions[qualname]
                prefix = owner.module.split(".")[-1]
                if owner.class_name is not None:
                    return f"{prefix}.{owner.class_name}.{owner.name}"
                return f"{prefix}.{owner.name}"

            rendered = " -> ".join(_short(part) for part in chain)
            yield self.diagnostic(
                info,
                anchor,
                f"{description} reaches decision code via {rendered}; "
                "thread an explicit seed/clock through the call chain",
            )
