"""REP102 — concurrency discipline in the serving layer.

The shard differential proves *dynamically* that the threaded router and
the worker fleet stay consistent under kill ``-9``; this analysis makes
the underlying discipline *static*:

1. **Locked shared writes** — any instance or module-level attribute
   written by code reachable from a request handler or worker thread
   must be written while a lock is held.  Reachability is a BFS over
   ``(function, lock_held)`` states rooted at the methods of
   ``*RequestHandler`` subclasses and at thread/executor targets; a
   call made inside ``with <lock>:`` enters the callee with the lock
   held.  Conventions honoured: ``*_locked``-suffixed functions assert
   "caller holds the lock" and are exempt; handler classes themselves
   are per-request instances, so their own attributes are private;
   ``__init__``/``__post_init__`` run before the object is shared.
2. **Thread-before-spawn ordering** — starting a thread and *then*
   spawning a subprocess (``subprocess.Popen``, ``os.fork``,
   ``multiprocessing.Process``) inherits lock and buffer state into the
   child mid-flight; the spawn is flagged, including when the thread
   start or the spawn is reached through a callee.
3. **Non-daemon thread leaks** — a ``Thread(daemon=False)`` that is
   never ``join``-ed in its creating function outlives the server's
   shutdown path.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project.model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    _expr_mentions_lock,
)
from repro.lint.project.registry import ProjectRule, register_project_rule

_SPAWN_CALLS = frozenset(
    {
        "subprocess.Popen",
        "subprocess.run",
        "subprocess.check_output",
        "subprocess.check_call",
        "subprocess.call",
        "os.fork",
        "multiprocessing.Process",
        "os.posix_spawn",
    }
)

_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "Thread"})


def _attr_written(target: ast.expr) -> "Optional[str]":
    """Name of the ``self`` attribute a target writes, unwrapping
    subscripts (``self._seqs[i] = …`` writes ``_seqs``)."""
    while isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


class _WriteCollector(ast.NodeVisitor):
    """Collects ``self.attr`` writes and ``global`` writes in one
    function body with their lexical with-lock context."""

    def __init__(self) -> None:
        self.writes: "List[Tuple[ast.AST, str, bool, bool]]" = []
        #: (node, name, under_lock, is_global)
        self._globals: "Set[str]" = set()
        self._lock_depth = 0
        self._top = True

    def _visit_body(self, statements: "List[ast.stmt]") -> None:
        for statement in statements:
            self.visit(statement)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        if self._top:
            self._top = False
            self._visit_body(node.body)

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        pass

    def visit_Global(self, node: ast.Global) -> None:  # noqa: N802
        self._globals.update(node.names)

    def visit_With(self, node: ast.With) -> None:  # noqa: N802
        holds = any(_expr_mentions_lock(item.context_expr) for item in node.items)
        if holds:
            self._lock_depth += 1
        self._visit_body(node.body)
        if holds:
            self._lock_depth -= 1

    visit_AsyncWith = visit_With  # noqa: N815

    def _record(self, node: ast.AST, targets: "List[ast.expr]") -> None:
        under = self._lock_depth > 0
        for target in targets:
            attr = _attr_written(target)
            if attr is not None:
                self.writes.append((node, attr, under, False))
            elif isinstance(target, ast.Name) and target.id in self._globals:
                self.writes.append((node, target.id, under, True))

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        self._record(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:  # noqa: N802
        self._record(node, [node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        if node.value is not None:
            self._record(node, [node.target])
        self.generic_visit(node)


def _unlocked_writes(
    function: FunctionInfo,
) -> "List[Tuple[ast.AST, str, bool]]":
    collector = _WriteCollector()
    collector.visit(function.node)
    return [
        (node, name, is_global)
        for node, name, under, is_global in collector.writes
        if not under
    ]


def _thread_target_names(site_node: ast.Call) -> "List[str]":
    """Bare names passed as ``target=`` to a Thread/executor call."""
    names: "List[str]" = []
    for keyword in site_node.keywords:
        if keyword.arg == "target":
            value = keyword.value
            if isinstance(value, ast.Attribute):
                names.append(value.attr)
            elif isinstance(value, ast.Name):
                names.append(value.id)
    return names


def _submitted_names(site_node: ast.Call) -> "List[str]":
    """First argument of ``pool.submit(fn, …)`` as a bare name."""
    if not site_node.args:
        return []
    head = site_node.args[0]
    if isinstance(head, ast.Attribute):
        return [head.attr]
    if isinstance(head, ast.Name):
        return [head.id]
    return []


def _in_serve(info: ModuleInfo) -> bool:
    return info.subpackage == "serve"


@register_project_rule
class ConcurrencyDisciplineRule(ProjectRule):
    code = "REP102"
    name = "concurrency-discipline"
    summary = (
        "in serve/: shared attribute written from handler/worker-"
        "reachable code without a lock, thread started before a process "
        "spawn, or a non-daemon thread never joined"
    )
    rationale = (
        "Every request to the advisory service runs on its own thread "
        "(ThreadingHTTPServer), and the shard router restarts worker "
        "processes from request threads; a single unlocked write is a "
        "lost-update race the kill -9 differential can only catch if "
        "the interleaving happens to occur in CI. Lock discipline must "
        "hold by construction."
    )

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        serve_modules = [info for info in model.modules.values() if _in_serve(info)]
        if not serve_modules:
            return
        yield from self._check_locked_writes(model, serve_modules)
        yield from self._check_spawn_ordering(model, serve_modules)
        yield from self._check_thread_leaks(serve_modules)

    # ------------------------------------------------------------------
    # 1. Locked shared writes
    # ------------------------------------------------------------------

    def _handler_roots(self, model: ProjectModel) -> "List[FunctionInfo]":
        roots: "List[FunctionInfo]" = []
        handler_classes: "Set[str]" = set()
        for cls in model.classes.values():
            if _in_serve(model.modules[cls.module]) and model.base_chain_matches(
                cls, "RequestHandler"
            ):
                handler_classes.add(cls.qualname)
                for method in cls.methods:
                    roots.append(model.functions[method])
        # thread / executor targets anywhere in serve are worker roots
        for info in (m for m in model.modules.values() if _in_serve(m)):
            for function in info.functions.values():
                for site in function.calls:
                    names = _thread_target_names(site.node)
                    if site.bare == "submit" and site.is_attribute:
                        names.extend(_submitted_names(site.node))
                    for name in names:
                        for candidate in model.by_bare_name.get(name, ()):
                            if _in_serve(model.modules[candidate.module]):
                                roots.append(candidate)
        self._handler_class_names = handler_classes
        return roots

    def _check_locked_writes(
        self, model: ProjectModel, serve_modules: "List[ModuleInfo]"
    ) -> Iterator[Diagnostic]:
        serve_names = frozenset({"serve"})
        roots = self._handler_roots(model)
        # BFS over (function, lock_held) states.
        seen: "Set[Tuple[str, bool]]" = set()
        queue: "deque[Tuple[FunctionInfo, bool]]" = deque(
            (root, False) for root in roots
        )
        reached_unlocked: "Set[str]" = set()
        while queue:
            function, held = queue.popleft()
            state = (function.qualname, held)
            if state in seen:
                continue
            seen.add(state)
            if not held:
                reached_unlocked.add(function.qualname)
            for site, callee in model.callees(
                function, bare_fallback=True, fallback_modules=serve_names
            ):
                if not _in_serve(model.modules[callee.module]):
                    continue
                queue.append((callee, held or site.under_lock))

        flagged: "Set[Tuple[str, int]]" = set()
        for info in serve_modules:
            for function in info.functions.values():
                if function.qualname not in reached_unlocked:
                    continue
                if function.name in ("__init__", "__post_init__", "<module>"):
                    continue
                if function.name.endswith("_locked"):
                    continue  # convention: caller holds the lock
                cls = model.class_of(function)
                if cls is not None and cls.qualname in getattr(
                    self, "_handler_class_names", set()
                ):
                    continue  # handler instances are per-request
                for node, name, is_global in _unlocked_writes(function):
                    key = (info.path, getattr(node, "lineno", 1))
                    if key in flagged:
                        continue
                    flagged.add(key)
                    kind = "module-level name" if is_global else "shared attribute"
                    yield self.diagnostic(
                        info,
                        node,
                        f"{kind} {name!r} written in {function.name}() "
                        "without holding a lock, but the function is "
                        "reachable from request-handler/worker threads; "
                        "wrap the write in a lock (or rename the helper "
                        "*_locked and lock at the caller)",
                    )

    # ------------------------------------------------------------------
    # 2. Thread started before a process spawn
    # ------------------------------------------------------------------

    @staticmethod
    def _direct_thread_start_lines(function: FunctionInfo) -> "List[int]":
        """Lines where this body starts a thread it constructed:
        ``Thread(...).start()`` chained, or ``t = Thread(...); t.start()``."""
        thread_vars: "Set[str]" = set()
        lines: "List[int]" = []
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _dotted_of(node.value.func) in _THREAD_CONSTRUCTORS:
                    thread_vars.update(
                        target.id
                        for target in node.targets
                        if isinstance(target, ast.Name)
                    )
        for node in ast.walk(function.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id in thread_vars:
                lines.append(node.lineno)
            elif (
                isinstance(receiver, ast.Call)
                and _dotted_of(receiver.func) in _THREAD_CONSTRUCTORS
            ):
                lines.append(node.lineno)
        return lines

    def _effects(self, model: ProjectModel) -> "Tuple[Set[str], Set[str]]":
        """Functions that (transitively) start threads / spawn processes."""
        starts: "Set[str]" = set()
        spawns: "Set[str]" = set()
        for function in model.functions.values():
            if self._direct_thread_start_lines(function):
                starts.add(function.qualname)
            if any(site.dotted in _SPAWN_CALLS for site in function.calls):
                spawns.add(function.qualname)
        for effect in (starts, spawns):  # propagate to callers, fixpoint
            changed = True
            while changed:
                changed = False
                for function in model.functions.values():
                    if function.qualname in effect:
                        continue
                    if any(
                        callee.qualname in effect
                        for _, callee in model.callees(function)
                    ):
                        effect.add(function.qualname)
                        changed = True
        return starts, spawns

    def _check_spawn_ordering(
        self, model: ProjectModel, serve_modules: "List[ModuleInfo]"
    ) -> Iterator[Diagnostic]:
        starts, spawns = self._effects(model)
        for info in serve_modules:
            for function in info.functions.values():
                start_line: "Optional[int]" = None
                for line in self._direct_thread_start_lines(function):
                    start_line = _min_line(start_line, line)
                site_callees: "Dict[int, List[str]]" = {}
                for site, callee in model.callees(function):
                    site_callees.setdefault(id(site.node), []).append(
                        callee.qualname
                    )
                    if callee.qualname in starts:
                        start_line = _min_line(start_line, site.node.lineno)
                if start_line is None:
                    continue
                for site in function.calls:
                    if site.node.lineno <= start_line:
                        continue
                    via_callee = any(
                        qualname in spawns
                        for qualname in site_callees.get(id(site.node), ())
                    )
                    if site.dotted in _SPAWN_CALLS or via_callee:
                        yield self.diagnostic(
                            info,
                            site.node,
                            "process spawned after a thread was started in "
                            f"{function.name}(); the child inherits locks "
                            "and buffers mid-flight — spawn all workers "
                            "before starting threads",
                        )

    # ------------------------------------------------------------------
    # 3. Non-daemon thread leaks
    # ------------------------------------------------------------------

    def _check_thread_leaks(
        self, serve_modules: "List[ModuleInfo]"
    ) -> Iterator[Diagnostic]:
        for info in serve_modules:
            for function in info.functions.values():
                joined: "Set[str]" = set()
                non_daemon: "Dict[str, ast.Call]" = {}
                for node in ast.walk(function.node):
                    if isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Call
                    ):
                        call = node.value
                        if _dotted_of(call.func) in _THREAD_CONSTRUCTORS and any(
                            keyword.arg == "daemon"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False
                            for keyword in call.keywords
                        ):
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    non_daemon[target.id] = call
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and isinstance(node.func.value, ast.Name)
                    ):
                        joined.add(node.func.value.id)
                for name, call in non_daemon.items():
                    if name not in joined:
                        yield self.diagnostic(
                            info,
                            call,
                            f"non-daemon thread {name!r} is never joined in "
                            f"{function.name}(); it outlives shutdown — "
                            "join it or make it a daemon",
                        )


def _min_line(current: "Optional[int]", line: int) -> int:
    return line if current is None else min(current, line)


def _dotted_of(node: ast.AST) -> "Optional[str]":
    parts: "List[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
