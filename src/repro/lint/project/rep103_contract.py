"""REP103 — API-contract drift between serve code and ``docs/serving.md``.

The serving layer's wire contract lives in three places: the dispatch
tables in ``serve/server.py``/``serve/shard.py``, the envelope shapes in
``serve/envelope.py``, and the prose contract in ``docs/serving.md``
that clients are told to code against.  Nothing ties them together at
runtime — a handler can grow a route, a status code, or an envelope key
and the docs silently lie.  This analysis extracts the contract from the
AST and cross-checks it both ways:

* every ``(METHOD, "/path")`` route tuple in serve code must appear in
  the route table of ``docs/serving.md`` — and every documented route
  must exist in code;
* every status code a handler can send (``_send_json(4xx, …)`` literals,
  ``status = 4xx`` assignments, ``status`` class attributes on the typed
  errors) must be documented;
* every envelope key (``schema``, ``error``, ``kind``, ``message`` — the
  dict keys of :func:`envelope`/:func:`error_envelope`) must be
  documented, and the documented ``{"schema": N}`` version must equal
  ``SCHEMA_VERSION``;
* every response must go through the versioned envelope:
  ``_send_json(status, body)`` where ``body`` is not an
  ``envelope(…)``/``error_envelope(…)`` call is a bypass.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project.model import ModuleInfo, ProjectModel
from repro.lint.project.registry import ProjectRule, register_project_rule

_HTTP_METHODS = frozenset({"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"})

#: ``| `/v1/events` | POST | …`` rows of the docs' route table.
_DOC_ROUTE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*(GET|POST|PUT|DELETE|PATCH)\s*\|", re.M)

#: Any HTTP-status-shaped number in the docs counts as documented.
_DOC_STATUS = re.compile(r"\b([1-5]\d{2})\b")

_DOC_SCHEMA = re.compile(r"\{\"schema\":\s*(\d+)")


def _route_tuple(node: ast.Tuple) -> "Optional[Tuple[str, str]]":
    if len(node.elts) != 2:
        return None
    first, second = node.elts
    if (
        isinstance(first, ast.Constant)
        and isinstance(first.value, str)
        and first.value in _HTTP_METHODS
        and isinstance(second, ast.Constant)
        and isinstance(second.value, str)
        and second.value.startswith("/")
    ):
        return first.value, second.value
    return None


def _is_envelope_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return "envelope" in name


@register_project_rule
class ContractDriftRule(ProjectRule):
    code = "REP103"
    name = "api-contract-drift"
    summary = (
        "serve route/status/envelope-key not documented in "
        "docs/serving.md (or documented but unimplemented), schema "
        "version skew, or a response bypassing the versioned envelope"
    )
    rationale = (
        "Clients code against docs/serving.md and branch on the "
        "envelope's schema/error.kind fields; a route or status the "
        "docs don't know about is a breaking change that no test "
        "notices until a client does. Extracting the contract from the "
        "AST pins code and docs to each other in both directions."
    )

    def check(self, model: ProjectModel) -> Iterator[Diagnostic]:
        serve_modules = [
            info for info in model.modules.values() if info.subpackage == "serve"
        ]
        if not serve_modules:
            return
        docs_path = model.docs_file("serving.md")
        anchor = min(serve_modules, key=lambda info: info.path)
        if docs_path is None:
            yield self.diagnostic(
                anchor,
                None,
                "serve/ defines an HTTP API but docs/serving.md was not "
                "found; the wire contract must be documented",
            )
            return
        docs = docs_path.read_text(encoding="utf-8")
        doc_routes = {
            (method, path) for path, method in _DOC_ROUTE.findall(docs)
        }
        doc_statuses = {int(status) for status in _DOC_STATUS.findall(docs)}
        doc_schema = _DOC_SCHEMA.search(docs)

        code_routes: "Dict[Tuple[str, str], Tuple[ModuleInfo, ast.AST]]" = {}
        for info in serve_modules:
            for node in info.context.nodes(ast.Tuple):
                route = _route_tuple(node)
                if route is not None:
                    code_routes.setdefault(route, (info, node))

        # --- routes, both directions -----------------------------------
        for route, (info, node) in sorted(code_routes.items()):
            if route not in doc_routes:
                yield self.diagnostic(
                    info,
                    node,
                    f"route {route[0]} {route[1]} is handled here but "
                    "missing from the route table in docs/serving.md",
                )
        for route in sorted(doc_routes - set(code_routes)):
            yield self.diagnostic(
                anchor,
                None,
                f"docs/serving.md documents {route[0]} {route[1]} but no "
                "serve handler implements it",
            )

        # --- status codes ----------------------------------------------
        for info, node, status in self._code_statuses(serve_modules):
            if status not in doc_statuses:
                yield self.diagnostic(
                    info,
                    node,
                    f"status code {status} can be sent by serve/ but is "
                    "not documented in docs/serving.md",
                )

        # --- envelope keys and schema version --------------------------
        envelope_info = next(
            (
                info
                for info in serve_modules
                if info.relative_parts[-1:] == ("envelope.py",)
            ),
            None,
        )
        if envelope_info is not None:
            for key, node in sorted(self._envelope_keys(envelope_info).items()):
                if f'"{key}"' not in docs and f"`{key}`" not in docs:
                    yield self.diagnostic(
                        envelope_info,
                        node,
                        f"envelope key {key!r} is not documented in "
                        "docs/serving.md",
                    )
            version = self._schema_version(envelope_info)
            if version is not None and (
                doc_schema is None or int(doc_schema.group(1)) != version
            ):
                documented = doc_schema.group(1) if doc_schema else "nothing"
                yield self.diagnostic(
                    envelope_info,
                    None,
                    f"SCHEMA_VERSION is {version} but docs/serving.md "
                    f'shows {{"schema": {documented}}}; the documented '
                    "envelope must match the wire format",
                )

        # --- envelope bypass -------------------------------------------
        for info in serve_modules:
            for node in info.context.nodes(ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("_send_json", "send_json")
                ):
                    continue
                if len(node.args) < 2:
                    continue
                body = node.args[1]
                if not _is_envelope_call(body):
                    yield self.diagnostic(
                        info,
                        node,
                        "response body sent without the versioned envelope; "
                        "wrap payloads in envelope()/error_envelope()",
                    )

    @staticmethod
    def _code_statuses(
        serve_modules: "List[ModuleInfo]",
    ) -> "Iterator[Tuple[ModuleInfo, ast.AST, int]]":
        seen: "Set[Tuple[str, int]]" = set()

        def emit(
            info: ModuleInfo, node: ast.AST, value: object
        ) -> "Iterator[Tuple[ModuleInfo, ast.AST, int]]":
            if isinstance(value, int) and not isinstance(value, bool) and 100 <= value < 600:
                key = (info.path, int(value))
                if key not in seen:
                    seen.add(key)
                    yield info, node, int(value)

        for info in serve_modules:
            for node in info.context.nodes(ast.Call):
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if "send" in name and "json" in name and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant):
                        yield from emit(info, node, first.value)
            for node in info.context.nodes(ast.Assign, ast.AnnAssign):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or not isinstance(value, ast.Constant):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "status":
                        yield from emit(info, node, value.value)

    @staticmethod
    def _envelope_keys(info: ModuleInfo) -> "Dict[str, ast.AST]":
        keys: "Dict[str, ast.AST]" = {}
        for function in info.functions.values():
            if "envelope" not in function.name:
                continue
            for node in ast.walk(function.node):
                if isinstance(node, ast.Dict):
                    for key in node.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.setdefault(key.value, key)
        return keys

    @staticmethod
    def _schema_version(info: ModuleInfo) -> "Optional[int]":
        for node in info.context.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "SCHEMA_VERSION"
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)
                    ):
                        return node.value.value
        return None
