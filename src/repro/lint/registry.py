"""Rule base class and registry for :mod:`repro.lint`.

A rule is a small class: a ``REPxxx`` code, a one-line summary, a
paper-level rationale, an optional subpackage scope, and a ``check``
generator over a parsed module.  Registering is one decorator; a typical
rule is ~30 lines (see :mod:`repro.lint.rules` for the stock set).
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass
from functools import cached_property
from itertools import chain
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.diagnostics import Diagnostic
from repro.lint.suppressions import SuppressionIndex

_CODE_PATTERN = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module, as handed to every rule."""

    path: str  # path as reported in diagnostics
    relative_parts: Tuple[str, ...]  # parts below the ``repro`` package root
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex

    @property
    def subpackage(self) -> str:
        """First-level subpackage (``core``, ``pricing``...), or ``""``
        for top-level modules such as ``errors.py``."""
        if len(self.relative_parts) > 1:
            return self.relative_parts[0]
        return ""

    def in_subpackage(self, *names: str) -> bool:
        return self.subpackage in names

    @cached_property
    def _nodes_by_type(self) -> "Dict[type, List[ast.AST]]":
        """Every AST node of the module, grouped by exact node type.

        Built lazily in ONE ``ast.walk`` pass and shared by every rule;
        before this index each of the stock rules re-walked the whole
        tree independently (11 full traversals per file)."""
        index: "Dict[type, List[ast.AST]]" = {}
        for node in ast.walk(self.tree):
            index.setdefault(type(node), []).append(node)
        return index

    def nodes(self, *node_types: "type") -> "Iterator[ast.AST]":
        """All nodes whose exact type is one of ``node_types``, in the
        module's ``ast.walk`` order per type.

        Exact-type lookup: pass every concrete class you care about
        (e.g. both ``ast.FunctionDef`` and ``ast.AsyncFunctionDef``) —
        subclass relationships are not consulted."""
        index = self._nodes_by_type
        return chain.from_iterable(index.get(t, ()) for t in node_types)


class Rule(abc.ABC):
    """Base class for all lint rules."""

    #: Unique identifier, ``REP`` + three digits.
    code: str = ""
    #: Short kebab-case name, shown by ``--list-rules``.
    name: str = ""
    #: One-line description of what the rule forbids.
    summary: str = ""
    #: Why the invariant matters for the reproduction (paper-level).
    rationale: str = ""
    #: Subpackages of ``repro`` the rule applies to; ``None`` = all.
    subpackages: "Optional[Tuple[str, ...]]" = None

    def applies_to(self, ctx: ModuleContext) -> bool:
        if self.subpackages is None:
            return True
        return ctx.in_subpackage(*self.subpackages)

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield one :class:`Diagnostic` per violation in ``ctx``."""

    def diagnostic(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


_REGISTRY: "Dict[str, Type[Rule]]" = {}


def register(rule_class: "Type[Rule]") -> "Type[Rule]":
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    if not _CODE_PATTERN.match(code):
        raise ValueError(f"rule code must match REPxxx, got {code!r}")
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> "List[Rule]":
    """Fresh instances of every registered rule, ordered by code."""
    import repro.lint.rules  # noqa: F401  (importing populates the registry)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def known_codes() -> "List[str]":
    import repro.lint.rules  # noqa: F401

    return sorted(_REGISTRY)
