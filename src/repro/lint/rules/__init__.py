"""Stock rule set of :mod:`repro.lint`.

Importing this package registers every rule module below (the
``register`` decorator adds each rule class to the global registry).
Adding a rule = adding one ~30-line module here and importing it.
"""

from repro.lint.rules import (  # noqa: F401
    rep001_money_equality,
    rep002_unseeded_rng,
    rep003_wall_clock,
    rep004_mutable_defaults,
    rep005_unit_mixing,
    rep006_public_annotations,
    rep007_exception_hygiene,
    rep008_assert_invariants,
    rep009_text_encoding,
    rep010_thread_discipline,
    rep011_policy_literals,
)
