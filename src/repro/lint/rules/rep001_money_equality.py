"""REP001 — no ``==``/``!=`` between float money expressions."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutils import identifier_tokens, terminal_identifier
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: Identifier tokens that mark an expression as dollar-valued.
MONEY_TOKENS = frozenset(
    {
        "cost", "costs", "price", "prices", "upfront", "fee", "fees",
        "revenue", "income", "saving", "savings", "budget", "payment",
        "payments", "bill", "billed", "spend", "dollars", "money",
        "monthly", "hourly",
    }
)


def is_money_expression(node: ast.AST) -> bool:
    identifier = terminal_identifier(node)
    if identifier is None:
        return False
    return bool(identifier_tokens(identifier) & MONEY_TOKENS)


@register
class MoneyEqualityRule(Rule):
    code = "REP001"
    name = "float-money-equality"
    summary = (
        "== / != between money-valued expressions; use math.isclose or "
        "repro._tolerances (money_eq, money_is_zero)"
    )
    rationale = (
        "Break-even points beta(phi) = phi*a*R/(p*(1-alpha)) and prorated "
        "upfronts are floats computed along different arithmetic paths; an "
        "exact comparison differs in the last ulp and silently flips a "
        "sell/keep decision, invalidating the competitive-ratio tables."
    )
    subpackages = None  # money flows through every layer

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.Compare):
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            # A comparison against a string or None is identity/bookkeeping,
            # not float arithmetic.
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, (str, bytes, type(None)))
                for o in operands
            ):
                continue
            if any(is_money_expression(o) for o in operands):
                yield self.diagnostic(
                    ctx,
                    node,
                    "equality comparison between money-valued floats; use "
                    "math.isclose or repro._tolerances.money_eq/money_is_zero",
                )
