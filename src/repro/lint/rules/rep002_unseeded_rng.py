"""REP002 — no RNG construction or use without an explicit seed."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutils import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: Functions on numpy's *legacy global* RandomState — stateful across the
#: whole process, so never reproducible regardless of np.random.seed.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "normal", "uniform", "choice", "shuffle", "permutation",
        "poisson", "exponential", "binomial", "geometric",
    }
)

#: Module-level functions of stdlib :mod:`random` (shared global state).
_STDLIB_GLOBAL_FNS = frozenset(
    {
        "seed", "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "expovariate",
        "betavariate", "normalvariate",
    }
)


@register
class UnseededRngRule(Rule):
    code = "REP002"
    name = "unseeded-rng"
    summary = (
        "RNG constructed without an explicit seed, or use of process-global "
        "RNG state, in simulation code"
    )
    rationale = (
        "Tables 1-3 and Figs 1-4 are Monte-Carlo estimates; an unseeded "
        "generator makes every competitive-ratio experiment unrepeatable. "
        "Pass a seeded np.random.Generator (or the seed itself) explicitly."
    )
    subpackages = ("core", "workload", "purchasing", "marketplace")

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.diagnostic(
                    ctx, node, "default_rng() without a seed; pass an explicit seed"
                )
            elif dotted == "random.Random" and not node.args:
                yield self.diagnostic(
                    ctx, node, "random.Random() without a seed; pass an explicit seed"
                )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and parts[-1] in _NUMPY_GLOBAL_FNS
                and parts[0] in ("np", "numpy")
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"legacy global numpy RNG call np.random.{parts[-1]}(); "
                    "use a seeded np.random.Generator instead",
                )
            elif len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_GLOBAL_FNS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"stdlib global RNG call random.{parts[1]}(); "
                    "use a seeded random.Random or np.random.Generator",
                )
