"""REP003 — no wall-clock reads in simulation code."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutils import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: (penultimate, last) dotted-name suffixes that read the wall clock.
_CLOCK_SUFFIXES = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)


@register
class WallClockRule(Rule):
    code = "REP003"
    name = "wall-clock-in-simulation"
    summary = "datetime.now()/time.time() in simulation hot paths"
    rationale = (
        "Simulated time is the hour index t of the demand trace; reading "
        "the host clock couples results to the machine and the moment of "
        "the run. Drivers under experiments/ may time themselves; the "
        "model under core/, pricing/, marketplace/, workload/ and "
        "purchasing/ must not, and infrastructure under parallel/ and "
        "serve/ times itself with perf_counter, never the wall clock."
    )
    subpackages = (
        "core",
        "pricing",
        "marketplace",
        "workload",
        "purchasing",
        "parallel",
        "serve",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and (parts[-2], parts[-1]) in _CLOCK_SUFFIXES:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() in simulation code; "
                    "simulated time is the trace hour index",
                )
