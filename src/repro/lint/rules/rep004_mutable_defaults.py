"""REP004 — no mutable default arguments."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class MutableDefaultsRule(Rule):
    code = "REP004"
    name = "mutable-default-argument"
    summary = "mutable default argument ([], {}, set(), ...) on a function"
    rationale = (
        "A mutable default is shared across calls: a schedule or listing "
        "accumulator that leaks state between simulated users corrupts "
        "every aggregate in the population experiments. Default to None "
        "and construct inside the function."
    )
    subpackages = None

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for function in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            defaults = list(function.args.defaults)
            defaults.extend(d for d in function.args.kw_defaults if d is not None)
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        ctx,
                        default,
                        f"mutable default argument in {function.name}(); "
                        "use None and construct inside the body",
                    )
