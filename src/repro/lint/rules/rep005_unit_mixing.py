"""REP005 — hour-unit hygiene: no mixing of time units in arithmetic."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutils import identifier_tokens, terminal_identifier
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: Identifier suffix token -> canonical unit.
_UNIT_SUFFIXES = {
    "hour": "hours", "hours": "hours", "hrs": "hours",
    "day": "days", "days": "days",
    "week": "weeks", "weeks": "weeks",
    "month": "months", "months": "months",
    "year": "years", "years": "years", "yrs": "years",
}


def unit_of(node: ast.AST) -> Optional[str]:
    """The time unit an expression carries, judged from its identifier
    suffix; ``None`` when unknown or when the name is a conversion
    factor (contains a ``per`` token, e.g. ``HOURS_PER_YEAR``)."""
    identifier = terminal_identifier(node)
    if identifier is None:
        return None
    tokens = identifier.lower().split("_")
    if "per" in identifier_tokens(identifier):
        return None
    return _UNIT_SUFFIXES.get(tokens[-1])


@register
class UnitMixingRule(Rule):
    code = "REP005"
    name = "time-unit-mixing"
    summary = (
        "additive arithmetic or comparison between differently-suffixed "
        "time variables (_hours vs _months/_years) without conversion"
    )
    rationale = (
        "The paper bills hourly (T = 8760 hours/year) while catalog data "
        "quotes monthly rates; adding elapsed_hours to period_months is "
        "off by ~720x and shifts every break-even point. Convert "
        "explicitly (multiply by a *_PER_* constant) before combining."
    )
    subpackages = None

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.BinOp, ast.Compare):
            if isinstance(node, ast.BinOp):
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                operands = [node.left, node.right]
            else:
                operands = [node.left, *node.comparators]
            units = {u for u in (unit_of(o) for o in operands) if u is not None}
            if len(units) > 1:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"arithmetic mixes time units {sorted(units)}; convert "
                    "explicitly via a *_PER_* constant first",
                )
