"""REP006 — complete type annotations on public functions in core/pricing."""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register


def _missing_annotations(function: "ast.FunctionDef | ast.AsyncFunctionDef") -> "List[str]":
    args = function.args
    missing = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.annotation is None and a.arg not in ("self", "cls")
    ]
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if function.returns is None:
        missing.append("return")
    return missing


@register
class PublicAnnotationsRule(Rule):
    code = "REP006"
    name = "untyped-public-function"
    summary = (
        "public function in core/ or pricing/ with missing parameter or "
        "return annotations"
    )
    rationale = (
        "The cost model's units (dollars, hours, fractions of T) live in "
        "the types; an untyped public entry point lets an hours value flow "
        "where a fraction is expected with no tool able to object. Matches "
        "the mypy-strict gate on these two packages."
    )
    subpackages = ("core", "pricing")

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        # Public API: module-level functions and methods of module-level
        # classes. Anything nested inside a function is a local helper.
        scopes: "List[ast.AST]" = [ctx.tree]
        scopes.extend(n for n in ctx.tree.body if isinstance(n, ast.ClassDef))
        for scope in scopes:
            for node in ast.iter_child_nodes(scope):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_") and node.name != "__init__":
                    continue
                missing = _missing_annotations(node)
                if missing:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"public function {node.name}() missing annotations "
                        f"for: {', '.join(missing)}",
                    )
