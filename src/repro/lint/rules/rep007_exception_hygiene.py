"""REP007 — no bare ``except:`` and no silently-swallowed exceptions."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring or ``...``
        return False
    return True


@register
class ExceptionHygieneRule(Rule):
    code = "REP007"
    name = "swallowed-exception"
    summary = "bare except:, or an except block whose body is only pass"
    rationale = (
        "Experiment drivers that swallow errors turn a crashed run into a "
        "silently-truncated table; the paper's comparisons are only valid "
        "over complete sweeps. Catch concrete ReproError subclasses and "
        "at least record the failure."
    )
    subpackages = None

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.ExceptHandler):
            if node.type is None:
                yield self.diagnostic(
                    ctx, node, "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exception class"
                )
            elif _swallows(node):
                yield self.diagnostic(
                    ctx, node, "exception caught and silently discarded; handle it "
                    "or record the failure"
                )
