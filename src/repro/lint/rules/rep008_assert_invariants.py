"""REP008 — no ``assert`` for runtime validation in library code."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register


@register
class AssertInvariantsRule(Rule):
    code = "REP008"
    name = "assert-as-validation"
    summary = "assert statement in library code (stripped under python -O)"
    rationale = (
        "Domain invariants (alpha in [0,1), non-negative money, prorated "
        "caps) must hold in every deployment; assert disappears under "
        "python -O, so raise a ReproError subclass from repro.errors "
        "instead. Tests are free to assert."
    )
    subpackages = None  # the engine only ever lints library sources

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.Assert):
            yield self.diagnostic(
                ctx,
                node,
                "assert used for validation in library code; raise a "
                "ReproError subclass (repro.errors) instead",
            )
