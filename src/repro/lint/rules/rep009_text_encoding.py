"""REP009 — no text-mode file I/O without an explicit ``encoding=``."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutils import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: Path convenience methods whose encoding hides one positional further in.
_TEXT_HELPERS = {"write_text": 1, "read_text": 0}


def _mode_literal(node: ast.Call, position: int) -> "Optional[str]":
    """The call's ``mode`` as a string literal, ``""`` if defaulted, or
    ``None`` when it is a dynamic expression we cannot judge."""
    mode: "Optional[ast.expr]" = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return ""  # defaulted: text mode
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _has_encoding(node: ast.Call) -> bool:
    return any(keyword.arg == "encoding" for keyword in node.keywords)


def _has_double_star(node: ast.Call) -> bool:
    return any(keyword.arg is None for keyword in node.keywords)


@register
class TextEncodingRule(Rule):
    code = "REP009"
    name = "text-io-encoding"
    summary = (
        "text-mode open()/Path.open()/write_text()/read_text() without an "
        "explicit encoding="
    )
    rationale = (
        "Without encoding= the platform locale decides how exported CSVs, "
        "reports, and figures are encoded, so the same sweep writes "
        "different bytes on different hosts — reproduction artefacts must "
        "be byte-stable. Pass encoding='utf-8'."
    )
    subpackages = None  # files are written from every layer

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.nodes(ast.Call):
            if _has_double_star(node):
                continue
            if _has_encoding(node):
                continue
            dotted = dotted_name(node.func)
            is_builtin_open = dotted == "open"
            is_method_open = (
                isinstance(node.func, ast.Attribute) and node.func.attr == "open"
            )
            if is_builtin_open or is_method_open:
                # builtin open(file, mode=...) vs path.open(mode=...)
                mode = _mode_literal(node, 1 if is_builtin_open else 0)
                if mode is None or "b" in mode:
                    continue
                label = "open()" if is_builtin_open else ".open()"
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{label} in text mode without encoding=; the platform "
                    "locale then picks the codec — pass encoding='utf-8'",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in _TEXT_HELPERS:
                if len(node.args) > _TEXT_HELPERS[node.func.attr]:
                    continue  # encoding passed positionally
                yield self.diagnostic(
                    ctx,
                    node,
                    f".{node.func.attr}() without encoding=; the platform "
                    "locale then picks the codec — pass encoding='utf-8'",
                )
