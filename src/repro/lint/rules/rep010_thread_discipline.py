"""REP010 — thread and server construction discipline."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutils import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: Constructors that open sockets or bind servers; the serving layer is
#: the one place allowed to own them.
_NETWORK_CONSTRUCTORS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "HTTPServer",
        "ThreadingHTTPServer",
        "http.server.HTTPServer",
        "http.server.ThreadingHTTPServer",
        "socketserver.TCPServer",
        "socketserver.UDPServer",
        "socketserver.ThreadingTCPServer",
        "socketserver.ThreadingUDPServer",
    }
)

_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "Thread"})


@register
class ThreadDisciplineRule(Rule):
    code = "REP010"
    name = "thread-discipline"
    summary = "Thread() without daemon=, or sockets outside repro/serve"
    rationale = (
        "A Thread() whose daemon flag is left to the default keeps the "
        "interpreter alive on exit paths the author never tested; every "
        "spawn must state its lifetime explicitly. Sockets and HTTP "
        "servers are the serving layer's job — simulation and analysis "
        "code binding network resources is a layering bug."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        in_serve = ctx.in_subpackage("serve")
        for node in ctx.nodes(ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _THREAD_CONSTRUCTORS:
                keywords = {kw.arg for kw in node.keywords}
                if "daemon" not in keywords and None not in keywords:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"{dotted}(...) without an explicit daemon= flag; "
                        "state the thread's lifetime",
                    )
            elif dotted in _NETWORK_CONSTRUCTORS and not in_serve:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{dotted}(...) outside repro/serve; only the serving "
                    "layer may bind sockets or servers",
                )
