"""REP011 — no hard-coded policy-name string literals."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.core import policies as _policies
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ModuleContext, Rule, register

#: The canonical policy names; the single source is
#: :mod:`repro.core.policies`, so the rule can never drift from it.
_POLICY_NAMES = frozenset(
    {
        _policies.POLICY_KEEP,
        _policies.POLICY_OPT,
        _policies.POLICY_RANDOMIZED,
        *_policies.ONLINE_POLICIES,
        *_policies.ALL_SELLING_POLICIES,
        *_policies.CANCELLATION_POLICIES,
    }
)

#: Modules allowed to spell the names out: the defining module and the
#: public facade re-exporting it.
_EXEMPT = frozenset({("api.py",), ("core", "policies.py")})


def _docstring_values(ctx: ModuleContext) -> "Set[int]":
    """ids of the Constant nodes that are module/class/def docstrings."""
    docstrings: "Set[int]" = set()
    for node in ctx.nodes(
        ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef
    ):
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            docstrings.add(id(body[0].value))
    return docstrings


@register
class PolicyLiteralRule(Rule):
    code = "REP011"
    name = "hard-coded-policy-name"
    summary = (
        'policy-name string literal (e.g. "A_{T/2}") outside '
        "repro/core/policies.py; use the POLICY_* constants"
    )
    rationale = (
        "The paper's policy names key every cost table, figure legend, "
        "and cache entry; a typo in one spelled-out literal silently "
        "drops a policy from a comparison instead of failing. One "
        "defining module (repro.core.policies) keeps the keys "
        "consistent across engines, experiments, and the API facade."
    )
    subpackages = None

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.relative_parts in _EXEMPT:
            return
        docstrings = _docstring_values(ctx)
        for node in ctx.nodes(ast.Constant):
            if not isinstance(node.value, str) or id(node) in docstrings:
                continue
            if node.value in _POLICY_NAMES:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"hard-coded policy name {node.value!r}; import the "
                    "constant from repro.core.policies instead",
                )
