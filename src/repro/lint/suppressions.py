"""Inline suppression comments for :mod:`repro.lint`.

Two forms, mirroring the classic linter convention:

* ``# repro-lint: disable=REP001`` (or ``disable=REP001,REP004`` or
  ``disable=all``) on a line suppresses those codes **on that line**;
* ``# repro-lint: disable-file=REP006`` anywhere in a module (by
  convention near the top) suppresses the codes for the whole file.

Comments are found with :mod:`tokenize`, so a suppression spelled inside
a string literal is inert, exactly as it should be.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

#: Sentinel meaning "every code" (``disable=all``).
ALL_CODES = "all"

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


@dataclass
class SuppressionIndex:
    """Suppressed codes per line, plus file-wide suppressions."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if code in pool or ALL_CODES in pool:
                return True
        return False


def _parse_codes(raw: str) -> FrozenSet[str]:
    codes = {c.strip() for c in raw.split(",") if c.strip()}
    return frozenset(c.lower() if c.lower() == ALL_CODES else c.upper() for c in codes)


def collect_suppressions(source: str) -> SuppressionIndex:
    """Scan ``source`` for suppression comments."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        codes = _parse_codes(match.group("codes"))
        if match.group("scope") == "disable-file":
            index.file_wide.update(codes)
        else:
            index.by_line.setdefault(token.start[0], set()).update(codes)
    return index
