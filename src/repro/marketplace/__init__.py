"""Reserved Instance Marketplace substrate (Section III-B rules)."""

from repro.marketplace.ecosystem import (
    DealHunter,
    EcosystemOutcome,
    SellerOutcome,
    clear_market,
    endogenous_buy_requests,
)
from repro.marketplace.listing import SERVICE_FEE_RATE, Listing
from repro.marketplace.market import (
    BuyerArrivalProcess,
    BuyRequest,
    FulfilmentReport,
    MarketOutcome,
    Marketplace,
    Trade,
    simulate_market,
)
from repro.marketplace.repricing import (
    ManagedListing,
    RepricingOutcome,
    simulate_repricing_market,
)
from repro.marketplace.valuation import (
    ListingValuation,
    optimal_discount,
    value_listing,
)
from repro.marketplace.seller import (
    AdaptiveDiscountSeller,
    FixedDiscountSeller,
    LadderDiscountSeller,
    SaleLatencyModel,
    SellerStrategy,
)

__all__ = [
    "Listing",
    "SERVICE_FEE_RATE",
    "Marketplace",
    "BuyRequest",
    "BuyerArrivalProcess",
    "FulfilmentReport",
    "MarketOutcome",
    "Trade",
    "simulate_market",
    "ManagedListing",
    "RepricingOutcome",
    "simulate_repricing_market",
    "SellerStrategy",
    "FixedDiscountSeller",
    "AdaptiveDiscountSeller",
    "LadderDiscountSeller",
    "SaleLatencyModel",
    "ListingValuation",
    "value_listing",
    "optimal_discount",
    "EcosystemOutcome",
    "SellerOutcome",
    "DealHunter",
    "clear_market",
    "endogenous_buy_requests",
]
