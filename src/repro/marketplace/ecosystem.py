"""Marketplace ecosystem: sellers' listings cleared by real buyer demand.

Eq. (1) books the income of a sale the hour the algorithm decides to
sell — the implicit assumption that a listing at discount ``a`` clears
instantly. This module removes the assumption and measures what it was
worth: the population's selling decisions become *listings*, the
population's own reservation demand becomes *buy requests* (a user whose
purchasing algorithm wants ``n_t`` new reservations at hour ``t``
rationally shops the marketplace first — a used reservation at a
discount beats a new one from Amazon), and the standard
lowest-upfront-first book clears them hour by hour.

Outputs, per seller cohort: the income Eq. (1) *assumed* (gross,
instant), the income the market *realized* (after Amazon's 12% fee;
unsold listings earn nothing), sell-through, waiting times, and Amazon's
fee take — quantifying how optimistic the paper's instant-sale
accounting is at any given market depth. Listings keep their posted
price while waiting (the fixed-``a`` seller of Eq. (1));
:mod:`repro.marketplace.repricing` models price-cutting sellers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._tolerances import money_is_zero
from repro.core.account import CostModel
from repro.core.fastsim import FastPolicyKind, run_fast
from repro.errors import MarketplaceError
from repro.marketplace.listing import SERVICE_FEE_RATE, Listing
from repro.marketplace.market import BuyRequest, Marketplace
from repro.purchasing.runner import ReservationSchedule


@dataclass(frozen=True)
class SellerOutcome:
    """One seller's marketplace performance."""

    seller_id: str
    listings: int
    sold: int
    assumed_income: float  # what Eq. (1) booked at the decision hours
    realized_income: float  # what the market actually paid (fee deducted)

    @property
    def realization_ratio(self) -> float:
        """Realized / assumed income (1.0 = the instant-sale assumption
        was harmless; < 1 = optimistic)."""
        if money_is_zero(self.assumed_income):
            return 1.0
        return self.realized_income / self.assumed_income


@dataclass(frozen=True)
class EcosystemOutcome:
    """Market-level result of one clearing simulation."""

    horizon: int
    sellers: list[SellerOutcome]
    total_listings: int
    total_sold: int
    total_fees: float
    mean_wait_hours: float

    @property
    def sell_through(self) -> float:
        if self.total_listings == 0:
            return 0.0
        return self.total_sold / self.total_listings

    @property
    def mean_realization_ratio(self) -> float:
        ratios = [
            outcome.realization_ratio
            for outcome in self.sellers
            if outcome.listings > 0
        ]
        return float(np.mean(ratios)) if ratios else 1.0


def _decision_listings(
    schedule: ReservationSchedule,
    model: CostModel,
    phi: float,
    seller_id: str,
) -> "list[tuple[int, float, Listing]]":
    """One seller's A_{φT} sales as (decision hour, assumed income, listing)."""
    result = run_fast(
        schedule.demands.values,
        schedule.reservations,
        model,
        phi=phi,
        kind=FastPolicyKind.ONLINE,
    )
    plan = model.plan
    entries = []
    for sale in result.sales:
        age = sale.hour - sale.reserved_at
        assumed = model.sale_income(1.0 - age / plan.period_hours)
        listing = Listing.from_plan(
            plan,
            elapsed_hours=age,
            selling_discount=model.selling_discount,
            seller_id=seller_id,
            listed_at=sale.hour,
        )
        entries.append((sale.hour, assumed, listing))
    return entries


def endogenous_buy_requests(
    schedules: "list[ReservationSchedule]",
    model: CostModel,
    participation: float = 1.0,
    rng: "np.random.Generator | None" = None,
) -> "list[BuyRequest]":
    """Buy requests derived from the population's own reservation demand.

    Every new reservation a user's imitated purchasing makes is a
    potential marketplace purchase instead: the buyer accepts any listing
    priced at or below its prorated share of the full upfront
    (``value_per_period = R``). ``participation`` is the fraction of that
    demand that actually shops the marketplace.
    """
    if not 0.0 <= participation <= 1.0:
        raise MarketplaceError(
            f"participation must lie in [0, 1], got {participation!r}"
        )
    rng = rng or np.random.default_rng(0)
    requests = []
    for index, schedule in enumerate(schedules):
        for hour in np.flatnonzero(schedule.reservations):
            count = int(schedule.reservations[hour])
            if participation < 1.0:
                count = int(rng.binomial(count, participation))
            if count == 0:
                continue
            requests.append(
                BuyRequest(
                    buyer_id=f"user-{index}",
                    instance_type=model.plan.name,
                    count=count,
                    max_unit_price=model.plan.upfront,
                    hour=int(hour),
                    value_per_period=model.plan.upfront,
                )
            )
    return requests


@dataclass(frozen=True)
class DealHunter:
    """A bargain-seeking buyer riding the population's own demand.

    :func:`endogenous_buy_requests` models rational buyers who pay up to
    the fair prorated value. A deal hunter is pickier: it only takes
    listings priced at or below ``bargain_fraction`` of that value —
    exactly the under-priced inventory a price-cutting seller
    (:class:`~repro.marketplace.seller.AdaptiveDiscountSeller`, the
    re-list ladder) eventually produces. Pointing a hunter cohort at a
    market measures how much of the sell-side's discounting is captured
    by opportunistic demand rather than by genuine reservation need.
    """

    bargain_fraction: float = 0.8
    participation: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bargain_fraction <= 1.0:
            raise MarketplaceError(
                f"bargain_fraction must lie in (0, 1], got {self.bargain_fraction!r}"
            )
        if not 0.0 <= self.participation <= 1.0:
            raise MarketplaceError(
                f"participation must lie in [0, 1], got {self.participation!r}"
            )

    def requests(
        self,
        schedules: "list[ReservationSchedule]",
        model: CostModel,
        rng: "np.random.Generator | None" = None,
    ) -> "list[BuyRequest]":
        """The population's demand, re-priced to only chase bargains."""
        return [
            BuyRequest(
                buyer_id=f"hunter-{request.buyer_id}",
                instance_type=request.instance_type,
                count=request.count,
                max_unit_price=self.bargain_fraction * request.max_unit_price,
                hour=request.hour,
                value_per_period=self.bargain_fraction * model.plan.upfront,
            )
            for request in endogenous_buy_requests(
                schedules, model, self.participation, rng
            )
        ]


def clear_market(
    seller_schedules: "list[ReservationSchedule]",
    buy_requests: "list[BuyRequest]",
    model: CostModel,
    phi: float = 0.75,
    service_fee_rate: float = SERVICE_FEE_RATE,
) -> EcosystemOutcome:
    """Run the two-phase ecosystem simulation.

    Phase 1: every seller's ``A_{φT}`` decisions become listings at their
    decision hours. Phase 2: buy requests arrive in hour order and clear
    against the book (lowest upfront first; value-aware buyers).
    """
    listings_by_hour: dict[int, list[Listing]] = {}
    assumed: dict[str, float] = {}
    listing_meta: dict[int, tuple[str, int]] = {}  # id -> (seller, listed hour)
    counts: dict[str, int] = {}
    for index, schedule in enumerate(seller_schedules):
        seller_id = f"seller-{index}"
        assumed[seller_id] = 0.0
        counts[seller_id] = 0
        for hour, assumed_income, listing in _decision_listings(
            schedule, model, phi, seller_id
        ):
            listings_by_hour.setdefault(hour, []).append(listing)
            assumed[seller_id] += assumed_income
            listing_meta[listing.listing_id] = (seller_id, hour)
            counts[seller_id] += 1

    horizon = max(
        [schedule.horizon for schedule in seller_schedules]
        + [request.hour + 1 for request in buy_requests]
        or [1]
    )
    market = Marketplace(service_fee_rate=service_fee_rate)
    requests_by_hour: dict[int, list[BuyRequest]] = {}
    for request in buy_requests:
        requests_by_hour.setdefault(request.hour, []).append(request)

    realized: dict[str, float] = {seller_id: 0.0 for seller_id in assumed}
    sold: dict[str, int] = {seller_id: 0 for seller_id in assumed}
    waits: list[int] = []
    for hour in range(horizon):
        for listing in listings_by_hour.get(hour, ()):  # new supply
            market.list_reservation(listing)
        for request in requests_by_hour.get(hour, ()):  # demand
            report = market.fulfil(request)
            for trade in report.trades:
                seller_id, listed_at = listing_meta[trade.listing_id]
                realized[seller_id] += trade.seller_proceeds
                sold[seller_id] += 1
                waits.append(hour - listed_at)

    sellers = [
        SellerOutcome(
            seller_id=seller_id,
            listings=counts[seller_id],
            sold=sold[seller_id],
            assumed_income=assumed[seller_id],
            realized_income=realized[seller_id],
        )
        for seller_id in assumed
    ]
    return EcosystemOutcome(
        horizon=horizon,
        sellers=sellers,
        total_listings=sum(counts.values()),
        total_sold=sum(sold.values()),
        total_fees=market.total_fees_collected(),
        mean_wait_hours=float(np.mean(waits)) if waits else float("inf"),
    )
