"""Marketplace listings and the selling rules of Section III-B.

Amazon's Reserved Instance Marketplace rules, as the paper states them:

* a seller lists the *remaining period* of a reservation for an upfront
  fee of at most the prorated original upfront (the t2.nano with half a
  cycle left may ask at most $9 of its $18);
* sellers typically discount below that cap to sell faster (the paper's
  ``a``: asking = a × prorated cap);
* Amazon keeps a 12% service fee of the sale price; the seller receives
  the remaining 88% ($7.2 × 0.88 = $6.336 in the paper's example);
* among competing listings, the lowest upfront sells first.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import ListingError
from repro.pricing.plan import PricingPlan

#: Amazon's marketplace service fee (Section III-B).
SERVICE_FEE_RATE = 0.12

_listing_ids = itertools.count()


@dataclass
class Listing:
    """One reservation offered for sale.

    ``asking_upfront`` must not exceed the prorated cap
    ``original_upfront × remaining_hours / period_hours``.
    """

    seller_id: str
    instance_type: str
    original_upfront: float
    period_hours: int
    remaining_hours: int
    asking_upfront: float
    listed_at: int = 0
    listing_id: int = field(default_factory=lambda: next(_listing_ids))
    sold_at: "int | None" = None

    def __post_init__(self) -> None:
        if self.original_upfront <= 0:
            raise ListingError(
                f"original_upfront must be positive, got {self.original_upfront!r}"
            )
        if self.period_hours <= 0:
            raise ListingError(f"period_hours must be positive, got {self.period_hours!r}")
        if not 0 < self.remaining_hours <= self.period_hours:
            raise ListingError(
                f"remaining_hours must lie in (0, {self.period_hours}], "
                f"got {self.remaining_hours!r}"
            )
        if self.asking_upfront < 0:
            raise ListingError(
                f"asking_upfront must be >= 0, got {self.asking_upfront!r}"
            )
        if self.asking_upfront > self.prorated_cap * (1.0 + 1e-9):
            raise ListingError(
                f"asking_upfront {self.asking_upfront!r} exceeds the prorated "
                f"cap {self.prorated_cap!r} (marketplace rule: at most the "
                f"remaining fraction of the original upfront)"
            )
        if self.listed_at < 0:
            raise ListingError(f"listed_at must be >= 0, got {self.listed_at!r}")

    # ------------------------------------------------------------------

    @property
    def prorated_cap(self) -> float:
        """Maximum allowed asking price: remaining fraction × original R."""
        return self.original_upfront * self.remaining_hours / self.period_hours

    @property
    def effective_discount(self) -> float:
        """The implied selling discount ``a`` = asking / cap."""
        return self.asking_upfront / self.prorated_cap

    @property
    def is_sold(self) -> bool:
        return self.sold_at is not None

    def service_fee(self, rate: float = SERVICE_FEE_RATE) -> float:
        """The marketplace's cut of the sale price."""
        return self.asking_upfront * rate

    def seller_proceeds(self, rate: float = SERVICE_FEE_RATE) -> float:
        """What the seller receives: asking × (1 − fee rate)."""
        return self.asking_upfront * (1.0 - rate)

    def mark_sold(self, hour: int) -> None:
        """Record the sale (once; not before the listing hour)."""
        if self.is_sold:
            raise ListingError(f"listing {self.listing_id} already sold")
        if hour < self.listed_at:
            raise ListingError(
                f"sale hour {hour} precedes listing hour {self.listed_at}"
            )
        self.sold_at = hour

    # ------------------------------------------------------------------

    @classmethod
    def from_plan(
        cls,
        plan: PricingPlan,
        elapsed_hours: int,
        selling_discount: float,
        seller_id: str = "seller",
        listed_at: int = 0,
    ) -> "Listing":
        """Build a rule-conforming listing from a plan and elapsed time.

        ``selling_discount`` is the paper's ``a``: the asking price is
        ``a`` × prorated cap.
        """
        if not 0.0 <= selling_discount <= 1.0:
            raise ListingError(
                f"selling_discount must lie in [0, 1], got {selling_discount!r}"
            )
        if not 0 <= elapsed_hours < plan.period_hours:
            raise ListingError(
                f"elapsed_hours must lie in [0, {plan.period_hours}), "
                f"got {elapsed_hours!r}"
            )
        remaining = plan.period_hours - elapsed_hours
        cap = plan.upfront * remaining / plan.period_hours
        asking = selling_discount * cap
        if not math.isfinite(asking):
            raise ListingError("non-finite asking price")
        return cls(
            seller_id=seller_id,
            instance_type=plan.name or "unknown",
            original_upfront=plan.upfront,
            period_hours=plan.period_hours,
            remaining_hours=remaining,
            asking_upfront=asking,
            listed_at=listed_at,
        )
