"""The marketplace order book: price-priority matching and buyers.

Section III-B: "the marketplace sells the reserved instance with the
lowest upfront fee at first to the buyer. If the buyer's request is not
fulfilled, the marketplace will sell the reserved instance with the next
lowest upfront fee." Ties are broken by listing time (first listed sells
first). The marketplace keeps :data:`~repro.marketplace.listing.SERVICE_FEE_RATE`
of every sale.

:class:`BuyerArrivalProcess` models demand for second-hand reservations:
buyers arrive Poisson per hour, each wanting some instances of one type
with a reservation price per unit (they accept any listing at or below
it). :class:`MarketSimulation` wires listings and buyers together to
measure time-to-sale — the mechanism behind the paper's advice that a
deeper discount ``a`` "makes the instance more attractive to buyers".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MarketplaceError, SimulationError
from repro.marketplace.listing import SERVICE_FEE_RATE, Listing


def _require_finite(name: str, value: float) -> float:
    """Non-finite inputs pass ordering checks silently (``nan <= 0`` is
    false), so every numeric field is gated here before the range tests."""
    try:
        value = float(value)
    except (TypeError, ValueError) as error:
        raise SimulationError(f"{name} must be a number, got {value!r}") from error
    if not math.isfinite(value):
        raise SimulationError(f"{name} must be finite, got {value!r}")
    return value


def _require_int(name: str, value: object) -> int:
    """An integral count; fractional floats are rejected, not truncated."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise SimulationError(f"{name} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class BuyRequest:
    """One buyer's request for second-hand reservations.

    ``max_unit_price`` caps the absolute price per listing. A *rational*
    buyer also values a listing by how much reservation is left in it:
    setting ``value_per_period`` makes the buyer accept a listing only if
    its asking price is at most ``value_per_period × remaining fraction``
    — a half-burned reservation is worth at most half the full-period
    value (the price logic behind the marketplace's proration cap).
    """

    buyer_id: str
    instance_type: str
    count: int
    max_unit_price: float
    hour: int = 0
    value_per_period: "float | None" = None

    def __post_init__(self) -> None:
        _require_int("count", self.count)
        _require_int("hour", self.hour)
        _require_finite("max_unit_price", self.max_unit_price)
        if self.value_per_period is not None:
            _require_finite("value_per_period", self.value_per_period)
        if self.count <= 0:
            raise MarketplaceError(f"count must be positive, got {self.count!r}")
        if self.max_unit_price < 0:
            raise MarketplaceError(
                f"max_unit_price must be >= 0, got {self.max_unit_price!r}"
            )
        if self.hour < 0:
            raise MarketplaceError(f"hour must be >= 0, got {self.hour!r}")
        if self.value_per_period is not None and self.value_per_period < 0:
            raise MarketplaceError(
                f"value_per_period must be >= 0, got {self.value_per_period!r}"
            )

    def accepts(self, listing: "Listing") -> bool:
        """Whether this buyer would take ``listing`` at its asking price."""
        if listing.asking_upfront > self.max_unit_price:
            return False
        if self.value_per_period is not None:
            fraction = listing.remaining_hours / listing.period_hours
            if listing.asking_upfront > self.value_per_period * fraction + 1e-12:
                return False
        return True


@dataclass(frozen=True)
class Trade:
    """A completed sale."""

    listing_id: int
    seller_id: str
    buyer_id: str
    instance_type: str
    hour: int
    price: float
    service_fee: float
    seller_proceeds: float


@dataclass
class FulfilmentReport:
    """Outcome of one buy request."""

    request: BuyRequest
    trades: list[Trade] = field(default_factory=list)

    @property
    def filled(self) -> int:
        return len(self.trades)

    @property
    def fully_filled(self) -> bool:
        return self.filled == self.request.count

    @property
    def total_paid(self) -> float:
        return sum(trade.price for trade in self.trades)


class Marketplace:
    """Order book for second-hand reservations of many instance types."""

    def __init__(self, service_fee_rate: float = SERVICE_FEE_RATE) -> None:
        if not 0.0 <= service_fee_rate < 1.0:
            raise MarketplaceError(
                f"service_fee_rate must lie in [0, 1), got {service_fee_rate!r}"
            )
        self.service_fee_rate = service_fee_rate
        self._books: dict[str, list[Listing]] = {}
        self._by_id: dict[int, Listing] = {}
        self.trades: list[Trade] = []

    # ------------------------------------------------------------------
    # Listings
    # ------------------------------------------------------------------

    def list_reservation(self, listing: Listing) -> None:
        """Add a listing to the order book."""
        if listing.listing_id in self._by_id:
            raise MarketplaceError(
                f"listing {listing.listing_id} is already in the marketplace"
            )
        if listing.is_sold:
            raise MarketplaceError(f"listing {listing.listing_id} is already sold")
        self._by_id[listing.listing_id] = listing
        self._books.setdefault(listing.instance_type, []).append(listing)

    def cancel(self, listing_id: int) -> Listing:
        """Withdraw an unsold listing."""
        listing = self._by_id.pop(listing_id, None)
        if listing is None:
            raise MarketplaceError(f"no open listing with id {listing_id}")
        self._books[listing.instance_type].remove(listing)
        return listing

    def open_listings(self, instance_type: str) -> list[Listing]:
        """Open listings of one type in selling-priority order:
        lowest asking first, earliest listed first among ties."""
        book = self._books.get(instance_type, [])
        return sorted(book, key=lambda item: (item.asking_upfront, item.listed_at))

    def depth(self, instance_type: str) -> int:
        """Number of open listings of one type."""
        return len(self._books.get(instance_type, []))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def fulfil(self, request: BuyRequest) -> FulfilmentReport:
        """Match a buy request against the book (lowest upfront first).

        A value-aware request (``value_per_period`` set) may skip a cheap
        listing with little remaining period yet take a dearer one with
        more, so the scan cannot stop at the first unaffordable listing
        — only once the absolute price cap is exceeded.
        """
        report = FulfilmentReport(request=request)
        for listing in self.open_listings(request.instance_type):
            if report.filled >= request.count:
                break
            if listing.asking_upfront > request.max_unit_price:
                break  # book is sorted: every further listing costs more
            if not request.accepts(listing):
                continue  # failed the value-per-remaining test only
            listing.mark_sold(request.hour)
            self._by_id.pop(listing.listing_id)
            self._books[listing.instance_type].remove(listing)
            trade = Trade(
                listing_id=listing.listing_id,
                seller_id=listing.seller_id,
                buyer_id=request.buyer_id,
                instance_type=listing.instance_type,
                hour=request.hour,
                price=listing.asking_upfront,
                service_fee=listing.service_fee(self.service_fee_rate),
                seller_proceeds=listing.seller_proceeds(self.service_fee_rate),
            )
            self.trades.append(trade)
            report.trades.append(trade)
        return report

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_fees_collected(self) -> float:
        """Marketplace revenue: the fee cut of every completed trade."""
        return sum(trade.service_fee for trade in self.trades)

    def seller_revenue(self, seller_id: str) -> float:
        """One seller's total proceeds across completed trades."""
        return sum(
            trade.seller_proceeds
            for trade in self.trades
            if trade.seller_id == seller_id
        )


@dataclass(frozen=True)
class BuyerArrivalProcess:
    """Poisson buyer arrivals for one instance type.

    Each arriving buyer wants ``Geometric(1/mean_count)`` instances and
    accepts unit prices up to a uniform fraction of the fair prorated
    value ``reference_price`` (buyers hunt for discounts: most will not
    pay full proration).
    """

    instance_type: str
    rate_per_hour: float = 0.5
    mean_count: float = 1.5
    reference_price: float = 1000.0
    min_price_fraction: float = 0.5
    max_price_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "rate_per_hour",
            "mean_count",
            "reference_price",
            "min_price_fraction",
            "max_price_fraction",
        ):
            _require_finite(name, getattr(self, name))
        if self.rate_per_hour <= 0:
            raise MarketplaceError(
                f"rate_per_hour must be positive, got {self.rate_per_hour!r}"
            )
        if self.mean_count < 1:
            raise MarketplaceError(f"mean_count must be >= 1, got {self.mean_count!r}")
        if self.reference_price <= 0:
            raise MarketplaceError(
                f"reference_price must be positive, got {self.reference_price!r}"
            )
        if not 0 <= self.min_price_fraction <= self.max_price_fraction:
            raise MarketplaceError("price fractions must satisfy 0 <= min <= max")

    def requests_at(self, hour: int, rng: np.random.Generator) -> list[BuyRequest]:
        """Draw the buy requests arriving during ``hour``."""
        arrivals = int(rng.poisson(self.rate_per_hour))
        requests = []
        for index in range(arrivals):
            count = int(rng.geometric(1.0 / self.mean_count))
            fraction = float(
                rng.uniform(self.min_price_fraction, self.max_price_fraction)
            )
            requests.append(
                BuyRequest(
                    buyer_id=f"buyer-{hour}-{index}",
                    instance_type=self.instance_type,
                    count=count,
                    max_unit_price=fraction * self.reference_price,
                    hour=hour,
                )
            )
        return requests


@dataclass(frozen=True)
class MarketOutcome:
    """Result of a market simulation for one listing cohort."""

    hours_simulated: int
    listings: int
    sold: int
    trades: list[Trade]
    time_to_sale: dict[int, int]  # listing id -> hours from listing to sale

    @property
    def sell_through(self) -> float:
        return self.sold / self.listings if self.listings else 0.0

    def mean_time_to_sale(self) -> float:
        """Average hours from listing to sale (inf when nothing sold)."""
        if not self.time_to_sale:
            return float("inf")
        return float(np.mean(list(self.time_to_sale.values())))


def simulate_market(
    listings: list[Listing],
    buyers: BuyerArrivalProcess,
    hours: int,
    rng: np.random.Generator,
    service_fee_rate: float = SERVICE_FEE_RATE,
) -> MarketOutcome:
    """Run ``hours`` of buyer arrivals against a cohort of listings."""
    _require_int("hours", hours)
    if hours <= 0:
        raise MarketplaceError(f"hours must be positive, got {hours!r}")
    market = Marketplace(service_fee_rate=service_fee_rate)
    for listing in listings:
        market.list_reservation(listing)
    for hour in range(hours):
        for request in buyers.requests_at(hour, rng):
            market.fulfil(request)
    time_to_sale = {
        trade.listing_id: trade.hour - next(
            listing.listed_at
            for listing in listings
            if listing.listing_id == trade.listing_id
        )
        for trade in market.trades
    }
    return MarketOutcome(
        hours_simulated=hours,
        listings=len(listings),
        sold=len(market.trades),
        trades=market.trades,
        time_to_sale=time_to_sale,
    )
