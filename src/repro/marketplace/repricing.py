"""Market simulation with live repricing sellers.

:func:`simulate_market` (the base model) lists every reservation once at
a fixed price. Real sellers cut prices while unsold — the behaviour
:class:`~repro.marketplace.seller.AdaptiveDiscountSeller` encodes. This
module closes the loop: each hour, every unsold listing is repriced by
its seller's strategy (subject to the prorated cap, which *shrinks* as
the remaining period burns down), then the arriving buyers are matched.

The headline question it answers: how much proceeds does a patient
(start-high, decay) seller give up or gain versus the paper's fixed
``a`` — and how much faster does either sell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MarketplaceError
from repro.marketplace.listing import SERVICE_FEE_RATE, Listing
from repro.marketplace.market import BuyerArrivalProcess, Marketplace, _require_int
from repro.marketplace.seller import SellerStrategy


@dataclass
class ManagedListing:
    """A listing whose price is managed over time by a strategy."""

    original_upfront: float
    period_hours: int
    listed_at: int
    remaining_at_listing: int
    strategy: SellerStrategy
    seller_id: str = "seller"
    instance_type: str = "d2.xlarge"
    sold_at: "int | None" = field(default=None)
    sale_price: float = 0.0

    def remaining_hours(self, hour: int) -> int:
        """Remaining reservation hours at ``hour`` (burns down live)."""
        return self.remaining_at_listing - (hour - self.listed_at)

    def cap(self, hour: int) -> float:
        """The live prorated price cap at ``hour``."""
        return self.original_upfront * self.remaining_hours(hour) / self.period_hours

    def price(self, hour: int) -> float:
        """Strategy price, clipped to the live prorated cap."""
        asked = self.strategy.asking_price(self.cap(hour), hour - self.listed_at)
        return min(asked, self.cap(hour))


@dataclass(frozen=True)
class RepricingOutcome:
    """Result of one repricing-market simulation."""

    hours: int
    listings: int
    sold: int
    total_proceeds: float
    mean_time_to_sale: float

    @property
    def sell_through(self) -> float:
        return self.sold / self.listings if self.listings else 0.0


def simulate_repricing_market(
    listings: list[ManagedListing],
    buyers: BuyerArrivalProcess,
    hours: int,
    rng: np.random.Generator,
    service_fee_rate: float = SERVICE_FEE_RATE,
) -> RepricingOutcome:
    """Run ``hours`` of buyer arrivals with per-hour repricing.

    A listing leaves the market when its remaining period burns out.
    """
    _require_int("hours", hours)
    if hours <= 0:
        raise MarketplaceError(f"hours must be positive, got {hours!r}")
    proceeds = 0.0
    waits: list[int] = []
    sold = 0
    for hour in range(hours):
        open_now = [
            item
            for item in listings
            if item.sold_at is None
            and item.listed_at <= hour
            and item.remaining_hours(hour) > 0
        ]
        if not open_now:
            continue
        # Rebuild the book at this hour's prices (lowest first).
        market = Marketplace(service_fee_rate=service_fee_rate)
        book: dict[int, ManagedListing] = {}
        for item in open_now:
            listing = Listing(
                seller_id=item.seller_id,
                instance_type=item.instance_type,
                original_upfront=item.original_upfront,
                period_hours=item.period_hours,
                remaining_hours=item.remaining_hours(hour),
                asking_upfront=item.price(hour),
                listed_at=item.listed_at,
            )
            market.list_reservation(listing)
            book[listing.listing_id] = item
        for request in buyers.requests_at(hour, rng):
            report = market.fulfil(request)
            for trade in report.trades:
                managed = book[trade.listing_id]
                managed.sold_at = hour
                managed.sale_price = trade.price
                proceeds += trade.seller_proceeds
                waits.append(hour - managed.listed_at)
                sold += 1
    return RepricingOutcome(
        hours=hours,
        listings=len(listings),
        sold=sold,
        total_proceeds=proceeds,
        mean_time_to_sale=float(np.mean(waits)) if waits else float("inf"),
    )
