"""Seller-side pricing strategies and the discount/latency trade-off.

The paper motivates the selling discount ``a`` with speed: "to attract
users and sell faster, the seller can set a discount of its required
upfront fee" (Section III-B). This module provides:

* :class:`FixedDiscountSeller` — list at ``a ×`` the prorated cap and
  wait (the behaviour Eq. (1) assumes);
* :class:`AdaptiveDiscountSeller` — start near the cap and cut the price
  while unsold (a common real-marketplace tactic);
* :class:`SaleLatencyModel` — a reduced-form hazard model of how long a
  listing waits before selling as a function of its discount, fitted to
  whatever :func:`~repro.marketplace.market.simulate_market` produces.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import MarketplaceError


class SellerStrategy(abc.ABC):
    """Chooses the asking price for a listing over time."""

    @abc.abstractmethod
    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        """Price to ask given the cap and how long the listing has waited."""


@dataclass(frozen=True)
class FixedDiscountSeller(SellerStrategy):
    """Always ask ``discount × cap`` — the paper's constant ``a``."""

    discount: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount <= 1.0:
            raise MarketplaceError(f"discount must lie in [0, 1], got {self.discount!r}")

    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        if prorated_cap < 0:
            raise MarketplaceError(f"prorated_cap must be >= 0, got {prorated_cap!r}")
        return self.discount * prorated_cap


@dataclass(frozen=True)
class AdaptiveDiscountSeller(SellerStrategy):
    """Start at ``start_discount`` and decay toward ``floor_discount``.

    The price is cut by ``decay_per_day`` (relative) for every 24 hours
    the listing stays open, never below the floor.
    """

    start_discount: float = 1.0
    floor_discount: float = 0.5
    decay_per_day: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor_discount <= self.start_discount <= 1.0:
            raise MarketplaceError(
                "need 0 <= floor_discount <= start_discount <= 1, got "
                f"floor={self.floor_discount!r} start={self.start_discount!r}"
            )
        if not 0.0 <= self.decay_per_day < 1.0:
            raise MarketplaceError(
                f"decay_per_day must lie in [0, 1), got {self.decay_per_day!r}"
            )

    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        if hours_listed < 0:
            raise MarketplaceError(f"hours_listed must be >= 0, got {hours_listed!r}")
        days = hours_listed / 24.0
        discount = self.start_discount * (1.0 - self.decay_per_day) ** days
        return max(discount, self.floor_discount) * prorated_cap


@dataclass(frozen=True)
class SaleLatencyModel:
    """Reduced-form time-to-sale: exponential with discount-driven hazard.

    The per-hour sale hazard is ``base_hazard × exp(sensitivity × (1 − a))``
    where ``a`` is the listing's effective discount — cheaper listings
    (smaller ``a``) jump the price-priority queue and sell faster.
    """

    base_hazard: float = 0.02
    sensitivity: float = 4.0

    def __post_init__(self) -> None:
        if self.base_hazard <= 0:
            raise MarketplaceError(
                f"base_hazard must be positive, got {self.base_hazard!r}"
            )
        if self.sensitivity < 0:
            raise MarketplaceError(
                f"sensitivity must be >= 0, got {self.sensitivity!r}"
            )

    def hazard(self, discount: float) -> float:
        """Per-hour sale probability for effective discount ``a``."""
        if not 0.0 <= discount <= 1.0:
            raise MarketplaceError(f"discount must lie in [0, 1], got {discount!r}")
        return min(self.base_hazard * math.exp(self.sensitivity * (1.0 - discount)), 1.0)

    def expected_hours_to_sale(self, discount: float) -> float:
        """Mean waiting time at a constant discount."""
        return 1.0 / self.hazard(discount)

    def sample_hours_to_sale(self, discount: float, rng: np.random.Generator) -> int:
        """Draw a geometric waiting time (hours) at a constant discount."""
        return int(rng.geometric(self.hazard(discount)))
