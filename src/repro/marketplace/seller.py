"""Seller-side pricing strategies and the discount/latency trade-off.

The paper motivates the selling discount ``a`` with speed: "to attract
users and sell faster, the seller can set a discount of its required
upfront fee" (Section III-B). This module provides:

* :class:`FixedDiscountSeller` — list at ``a ×`` the prorated cap and
  wait (the behaviour Eq. (1) assumes);
* :class:`AdaptiveDiscountSeller` — start near the cap and cut the price
  while unsold (a common real-marketplace tactic);
* :class:`LadderDiscountSeller` — re-list at stepped-down rungs on a
  fixed cadence (the "cancel and re-list cheaper" tactic arXiv
  2005.12249 observes in listing histories);
* :class:`SaleLatencyModel` — a reduced-form hazard model of how long a
  listing waits before selling as a function of its discount, fitted to
  whatever :func:`~repro.marketplace.market.simulate_market` produces.

The price-cutting sellers are promoted into the decision engines via
:meth:`~AdaptiveDiscountSeller.as_discount_schedule`: the returned
:class:`~repro.core.clearing.DiscountSchedule` drops into a
:class:`~repro.core.clearing.ClearingModel` and from there into
``run_fast``/``run_population``/``repro.serve`` unchanged.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.core.clearing import (
    SCHEDULE_ADAPTIVE,
    SCHEDULE_LADDER,
    DiscountSchedule,
)
from repro.errors import MarketplaceError, SimulationError


def _require_finite(name: str, value: float) -> float:
    """Non-finite rates silently pass ordering checks (``nan <= 0`` is
    false), so every numeric field is gated here first."""
    try:
        value = float(value)
    except (TypeError, ValueError) as error:
        raise SimulationError(f"{name} must be a number, got {value!r}") from error
    if not math.isfinite(value):
        raise SimulationError(f"{name} must be finite, got {value!r}")
    return value


class SellerStrategy(abc.ABC):
    """Chooses the asking price for a listing over time."""

    @abc.abstractmethod
    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        """Price to ask given the cap and how long the listing has waited."""


@dataclass(frozen=True)
class FixedDiscountSeller(SellerStrategy):
    """Always ask ``discount × cap`` — the paper's constant ``a``."""

    discount: float = 0.8

    def __post_init__(self) -> None:
        _require_finite("discount", self.discount)
        if not 0.0 <= self.discount <= 1.0:
            raise MarketplaceError(f"discount must lie in [0, 1], got {self.discount!r}")

    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        if prorated_cap < 0:
            raise MarketplaceError(f"prorated_cap must be >= 0, got {prorated_cap!r}")
        return self.discount * prorated_cap

    def as_discount_schedule(self) -> DiscountSchedule:
        """This seller as a clearing-engine discount schedule."""
        return DiscountSchedule(start_discount=self.discount)


@dataclass(frozen=True)
class AdaptiveDiscountSeller(SellerStrategy):
    """Start at ``start_discount`` and decay toward ``floor_discount``.

    The price is cut by ``decay_per_day`` (relative) for every 24 hours
    the listing stays open, never below the floor.
    """

    start_discount: float = 1.0
    floor_discount: float = 0.5
    decay_per_day: float = 0.05

    def __post_init__(self) -> None:
        for name in ("start_discount", "floor_discount", "decay_per_day"):
            _require_finite(name, getattr(self, name))
        if not 0.0 <= self.floor_discount <= self.start_discount <= 1.0:
            raise MarketplaceError(
                "need 0 <= floor_discount <= start_discount <= 1, got "
                f"floor={self.floor_discount!r} start={self.start_discount!r}"
            )
        if not 0.0 <= self.decay_per_day < 1.0:
            raise MarketplaceError(
                f"decay_per_day must lie in [0, 1), got {self.decay_per_day!r}"
            )

    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        if hours_listed < 0:
            raise MarketplaceError(f"hours_listed must be >= 0, got {hours_listed!r}")
        days = hours_listed / 24.0
        discount = self.start_discount * (1.0 - self.decay_per_day) ** days
        return max(discount, self.floor_discount) * prorated_cap

    def as_discount_schedule(self) -> DiscountSchedule:
        """This seller as a clearing-engine discount schedule."""
        return DiscountSchedule(
            kind=SCHEDULE_ADAPTIVE,
            start_discount=self.start_discount,
            floor_discount=self.floor_discount,
            decay_per_day=self.decay_per_day,
        )

    def as_selling_policy(self, phi: float):
        """Promote to a first-class policy deciding at fraction ``phi``."""
        from repro.core.policies import ListedSellingPolicy

        return ListedSellingPolicy(phi, self.as_discount_schedule())


@dataclass(frozen=True)
class LadderDiscountSeller(SellerStrategy):
    """Re-list down a fixed ladder of discounts every ``step_hours``.

    Real sellers rarely reprice continuously: they cancel an unsold
    listing after a week or two and re-list it cheaper. The ladder holds
    its last rung once exhausted.
    """

    ladder: "tuple[float, ...]" = (1.0, 0.85, 0.7)
    step_hours: int = 168

    def __post_init__(self) -> None:
        if not self.ladder:
            raise MarketplaceError("ladder must be a non-empty tuple of discounts")
        for index, rung in enumerate(self.ladder):
            _require_finite(f"ladder[{index}]", rung)
            if not 0.0 <= rung <= 1.0:
                raise MarketplaceError(
                    f"ladder[{index}] must lie in [0, 1], got {rung!r}"
                )
        if isinstance(self.step_hours, bool) or not isinstance(
            self.step_hours, int
        ):
            raise SimulationError(
                f"step_hours must be an integer hour count, got {self.step_hours!r}"
            )
        if self.step_hours < 1:
            raise MarketplaceError(
                f"step_hours must be >= 1, got {self.step_hours!r}"
            )

    def asking_price(self, prorated_cap: float, hours_listed: int) -> float:
        if hours_listed < 0:
            raise MarketplaceError(f"hours_listed must be >= 0, got {hours_listed!r}")
        rung = min(hours_listed // self.step_hours, len(self.ladder) - 1)
        return self.ladder[rung] * prorated_cap

    def as_discount_schedule(self) -> DiscountSchedule:
        """This seller as a clearing-engine discount schedule."""
        return DiscountSchedule(
            kind=SCHEDULE_LADDER,
            ladder=self.ladder,
            step_hours=self.step_hours,
        )

    def as_selling_policy(self, phi: float):
        """Promote to a first-class policy deciding at fraction ``phi``."""
        from repro.core.policies import ListedSellingPolicy

        return ListedSellingPolicy(phi, self.as_discount_schedule())


@dataclass(frozen=True)
class SaleLatencyModel:
    """Reduced-form time-to-sale: exponential with discount-driven hazard.

    The per-hour sale hazard is ``base_hazard × exp(sensitivity × (1 − a))``
    where ``a`` is the listing's effective discount — cheaper listings
    (smaller ``a``) jump the price-priority queue and sell faster.
    """

    base_hazard: float = 0.02
    sensitivity: float = 4.0

    def __post_init__(self) -> None:
        _require_finite("base_hazard", self.base_hazard)
        _require_finite("sensitivity", self.sensitivity)
        if self.base_hazard <= 0:
            raise MarketplaceError(
                f"base_hazard must be positive, got {self.base_hazard!r}"
            )
        if self.sensitivity < 0:
            raise MarketplaceError(
                f"sensitivity must be >= 0, got {self.sensitivity!r}"
            )

    def hazard(self, discount: float) -> float:
        """Per-hour sale probability for effective discount ``a``."""
        _require_finite("discount", discount)
        if not 0.0 <= discount <= 1.0:
            raise MarketplaceError(f"discount must lie in [0, 1], got {discount!r}")
        return min(self.base_hazard * math.exp(self.sensitivity * (1.0 - discount)), 1.0)

    def expected_hours_to_sale(self, discount: float) -> float:
        """Mean waiting time at a constant discount."""
        return 1.0 / self.hazard(discount)

    def sample_hours_to_sale(self, discount: float, rng: np.random.Generator) -> int:
        """Draw a geometric waiting time (hours) at a constant discount."""
        return int(rng.geometric(self.hazard(discount)))
