"""Listing valuation: what is a reservation actually worth to sell?

Eq. (1) books the income ``a·rp·R`` as if the listing sells the instant
it is posted. In the real marketplace the listing *waits* — and while it
waits, the remaining period (and with it the prorated cap) burns down.
Combining the price rule with the
:class:`~repro.marketplace.seller.SaleLatencyModel` hazard gives the
*expected* proceeds of listing at discount ``a``::

    E[proceeds] = Σ_w  P(sold after w hours) · (1 − fee) · a · rp(t₀ + w) · R

truncated at the reservation's expiry (an unsold listing earns nothing).
Deeper discounts sell sooner (higher hazard) but cheaper — the seller's
actual trade-off, which :func:`optimal_discount` resolves by grid
search. This quantifies how the paper's fixed ``a`` should really be
chosen and an ablation-style test pins the interior optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MarketplaceError
from repro.marketplace.listing import SERVICE_FEE_RATE
from repro.marketplace.seller import SaleLatencyModel
from repro.pricing.plan import PricingPlan


@dataclass(frozen=True)
class ListingValuation:
    """Expected outcome of posting one listing at a fixed discount."""

    discount: float
    expected_proceeds: float
    sale_probability: float  # sells before the reservation expires
    expected_wait_hours: float  # conditional on selling

    @property
    def expected_proceeds_if_sold(self) -> float:
        if self.sale_probability == 0:
            return 0.0
        return self.expected_proceeds / self.sale_probability


def value_listing(
    plan: PricingPlan,
    elapsed_hours: int,
    discount: float,
    latency: SaleLatencyModel,
    marketplace_fee: float = SERVICE_FEE_RATE,
) -> ListingValuation:
    """Expected proceeds of listing now at ``discount`` and waiting.

    The per-hour sale hazard is constant (the discount is held fixed);
    the payout decays linearly with the burning remaining period.
    """
    if not 0 <= elapsed_hours < plan.period_hours:
        raise MarketplaceError(
            f"elapsed_hours must lie in [0, {plan.period_hours}), "
            f"got {elapsed_hours!r}"
        )
    if not 0.0 <= discount <= 1.0:
        raise MarketplaceError(f"discount must lie in [0, 1], got {discount!r}")
    if not 0.0 <= marketplace_fee < 1.0:
        raise MarketplaceError(
            f"marketplace_fee must lie in [0, 1), got {marketplace_fee!r}"
        )
    remaining = plan.period_hours - elapsed_hours
    hazard = latency.hazard(discount)
    waits = np.arange(remaining)  # sold after `w` full hours of waiting
    survival = (1.0 - hazard) ** waits
    sale_probability_by_wait = survival * hazard
    payout = (
        (1.0 - marketplace_fee)
        * discount
        * ((remaining - waits) / plan.period_hours)
        * plan.upfront
    )
    expected = float(np.dot(sale_probability_by_wait, payout))
    total_probability = float(sale_probability_by_wait.sum())
    if total_probability > 0:
        expected_wait = float(
            np.dot(sale_probability_by_wait, waits) / total_probability
        )
    else:
        expected_wait = float("inf")
    return ListingValuation(
        discount=discount,
        expected_proceeds=expected,
        sale_probability=total_probability,
        expected_wait_hours=expected_wait,
    )


def optimal_discount(
    plan: PricingPlan,
    elapsed_hours: int,
    latency: SaleLatencyModel,
    marketplace_fee: float = SERVICE_FEE_RATE,
    grid: "tuple[float, ...] | None" = None,
) -> ListingValuation:
    """The discount maximising expected proceeds (grid search)."""
    if grid is None:
        grid = tuple(round(0.05 * step, 2) for step in range(1, 21))
    if not grid:
        raise MarketplaceError("discount grid must be non-empty")
    valuations = [
        value_listing(plan, elapsed_hours, discount, latency, marketplace_fee)
        for discount in grid
    ]
    return max(valuations, key=lambda v: v.expected_proceeds)
