"""Parallel, cached execution layer for population-scale experiments.

The ROADMAP's north star — sweeps "as fast as the hardware allows" over
arbitrarily large populations — needs three ingredients that this
package provides and :func:`repro.experiments.runner.run_sweep` wires
together:

* :mod:`repro.parallel.pool` — a deterministic process-pool fan-out
  (chunked work units, results reassembled in input order, ``workers=1``
  falling back to the plain in-process loop);
* :mod:`repro.parallel.cache` + :mod:`repro.parallel.hashing` — an
  on-disk, content-addressed result cache under ``.repro_cache/`` so a
  repeated figure/table run never re-simulates an unchanged user;
* :mod:`repro.parallel.timing` — per-stage wall-time and throughput
  instrumentation surfaced by the CLI and ``BENCH_sweep.json``.

See ``docs/parallel_execution.md`` for the worker model and the cache
key/invalidation contract.
"""

from repro.parallel.cache import DEFAULT_CACHE_ROOT, CacheError, ResultCache, as_cache
from repro.parallel.hashing import (
    UnhashableContentError,
    combine_digests,
    stable_hash,
)
from repro.parallel.pool import (
    ParallelExecutionError,
    default_chunk_size,
    parallel_map,
    resolve_workers,
)
from repro.parallel.timing import StageTimer, SweepTiming

__all__ = [
    "DEFAULT_CACHE_ROOT",
    "CacheError",
    "ParallelExecutionError",
    "ResultCache",
    "StageTimer",
    "SweepTiming",
    "UnhashableContentError",
    "as_cache",
    "combine_digests",
    "default_chunk_size",
    "parallel_map",
    "resolve_workers",
    "stable_hash",
]
