"""On-disk result cache for repeated experiment runs.

Population sweeps are pure functions of ``(ExperimentConfig, user trace,
user reservations, policy set, engine version)`` — so once a user has
been simulated, regenerating a figure or table should never pay for that
user again. :class:`ResultCache` stores one small JSON payload per cache
key under ``.repro_cache/<namespace>/``, sharded by digest prefix to
keep directories small.

Invalidation is purely key-based: anything that can change a result must
be part of the key (see :func:`repro.experiments.runner.user_cache_key`),
so a config tweak, a different trace, or an engine bump simply misses.
Stale entries are never consulted; ``clear()`` deletes a namespace when
disk space matters more than warm starts.

Writes go through a temp file + :func:`os.replace` so concurrent readers
(or a crashed run) never observe a half-written entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path

from repro.errors import ReproError

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_ROOT = ".repro_cache"

_DIGEST_SHARD_CHARS = 2


class CacheError(ReproError):
    """The on-disk cache was asked to do something it cannot."""


class ResultCache:
    """A content-addressed JSON store under ``root/namespace/``.

    Parameters
    ----------
    root:
        Cache directory (created lazily). Defaults to ``.repro_cache``
        in the working directory.
    namespace:
        Subdirectory separating unrelated result families (the sweep
        uses ``"sweep"``).
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        namespace: str = "sweep",
    ) -> None:
        if not namespace or any(sep in namespace for sep in ("/", "\\", "..")):
            raise CacheError(f"invalid cache namespace: {namespace!r}")
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_ROOT)
        self.namespace = namespace
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self.root / self.namespace

    def _path(self, key: str) -> Path:
        if len(key) <= _DIGEST_SHARD_CHARS or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise CacheError(f"cache keys must be hex digests, got {key!r}")
        return self.directory / key[:_DIGEST_SHARD_CHARS] / f"{key}.json"

    # ------------------------------------------------------------------

    def get(self, key: str) -> "dict | None":
        """The payload stored under ``key``, or ``None`` (counted as a
        miss). Unreadable/corrupt entries behave like misses."""
        path = self._path(key)
        try:
            with path.open(encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # A torn or corrupted entry must never poison a run.
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: "dict") -> None:
        """Store ``payload`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Insertion order is significant (e.g. the sweep's policy order),
        # so the payload is stored as given, not key-sorted.
        encoded = json.dumps(payload)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(temp_name, path)
        except OSError:
            # Best-effort cleanup of the temp file; the original error is
            # what the caller needs to see.
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of entries currently stored in this namespace."""
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry in this namespace; returns the count."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in self.directory.glob("*/*.json"):
            entry.unlink()
            removed += 1
        for shard in self.directory.iterdir():
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk this session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def as_cache(
    cache: "ResultCache | str | Path | None", namespace: str = "sweep"
) -> "ResultCache | None":
    """Coerce a user-facing cache argument: ``None`` stays ``None``, a
    path becomes a :class:`ResultCache` rooted there."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(root=cache, namespace=namespace)
