"""Stable content hashing for cache keys.

The on-disk sweep cache (:mod:`repro.parallel.cache`) must key results by
*content*, not identity: the same ``(ExperimentConfig, demand trace,
reservations, policy set, engine version)`` must hash to the same digest
in every process and every session. Python's built-in ``hash`` is
randomised per process and therefore useless here; this module walks a
value recursively and feeds a canonical, type-tagged byte encoding into
SHA-256 instead.

Supported value shapes (everything the experiment layer needs):

* ``None``, ``bool``, ``int``, ``str``, ``bytes``;
* ``float`` — encoded via ``repr`` (shortest round-trip form), so two
  floats hash alike iff they are the same double;
* ``enum.Enum`` — class name + member name;
* ``numpy.ndarray`` — dtype, shape, and the raw buffer;
* dataclass instances — class name + every field, recursively;
* ``dict`` (sorted by encoded key), ``list``, ``tuple``, frozen/sets
  (sorted by encoded element);
* any object exposing ``content_digest() -> str``, which takes
  precedence and lets domain types define their own stable identity.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Iterable

import numpy as np

from repro.errors import ReproError


class UnhashableContentError(ReproError):
    """A value reached the content hasher that it cannot encode stably."""


def _encode(value: object, parts: "list[bytes]") -> None:
    """Append a canonical type-tagged encoding of ``value`` to ``parts``."""
    digest_method = getattr(value, "content_digest", None)
    if callable(digest_method) and not isinstance(value, type):
        parts.append(b"custom:" + str(digest_method()).encode("utf-8") + b";")
        return
    if value is None:
        parts.append(b"none;")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        parts.append(b"bool:1;" if value else b"bool:0;")
    elif isinstance(value, int):
        parts.append(b"int:" + str(value).encode("ascii") + b";")
    elif isinstance(value, float):
        parts.append(b"float:" + repr(value).encode("ascii") + b";")
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        parts.append(b"str:" + str(len(encoded)).encode("ascii") + b":" + encoded + b";")
    elif isinstance(value, bytes):
        parts.append(b"bytes:" + str(len(value)).encode("ascii") + b":" + value + b";")
    elif isinstance(value, enum.Enum):
        tag = f"enum:{type(value).__name__}.{value.name};"
        parts.append(tag.encode("utf-8"))
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        header = f"ndarray:{array.dtype.str}:{array.shape};"
        parts.append(header.encode("ascii"))
        parts.append(array.tobytes())
        parts.append(b";")
    elif isinstance(value, np.generic):
        _encode(value.item(), parts)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts.append(b"dataclass:" + type(value).__name__.encode("utf-8") + b"{")
        for field in dataclasses.fields(value):
            _encode(field.name, parts)
            _encode(getattr(value, field.name), parts)
        parts.append(b"};")
    elif isinstance(value, dict):
        entries = [(_encoded(key), key, item) for key, item in value.items()]
        entries.sort(key=lambda entry: entry[0])
        parts.append(b"dict{")
        for encoded_key, _, item in entries:
            parts.append(encoded_key)
            _encode(item, parts)
        parts.append(b"};")
    elif isinstance(value, (list, tuple)):
        tag = b"list[" if isinstance(value, list) else b"tuple["
        parts.append(tag)
        for item in value:
            _encode(item, parts)
        parts.append(b"];")
    elif isinstance(value, (set, frozenset)):
        parts.append(b"set{")
        parts.extend(sorted(_encoded(item) for item in value))
        parts.append(b"};")
    else:
        raise UnhashableContentError(
            f"cannot stably hash {type(value).__name__!r} values; "
            "add a content_digest() method or use a supported type"
        )


def _encoded(value: object) -> bytes:
    parts: "list[bytes]" = []
    _encode(value, parts)
    return b"".join(parts)


def stable_hash(*values: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``values``.

    Deterministic across processes, sessions, and platforms (no use of
    ``PYTHONHASHSEED``-dependent state); raises
    :class:`UnhashableContentError` on types it cannot encode, rather
    than silently falling back to identity.
    """
    digest = hashlib.sha256()
    for value in values:
        digest.update(_encoded(value))
    return digest.hexdigest()


def combine_digests(digests: "Iterable[str]") -> str:
    """Fold an iterable of hex digests into one (order-sensitive)."""
    digest = hashlib.sha256()
    for item in digests:
        digest.update(item.encode("ascii"))
        digest.update(b";")
    return digest.hexdigest()
