"""Deterministic process-pool fan-out.

:func:`parallel_map` is the execution backbone of the population sweep:
it applies a picklable, module-level function to every item of a work
list, fanning chunks of items out to a ``ProcessPoolExecutor`` and
reassembling results **in input order** regardless of which worker
finished first. With ``workers=1`` it degrades to a plain in-process
loop — no pool, no pickling — so the serial path stays byte-identical
to the pre-parallel code and keeps working on hosts where multiprocess
start-up is unavailable (sandboxes without ``/dev/shm``, for instance).

Chunking amortises pickling overhead: items are grouped into
``~4 × workers`` chunks (bounded below by 1 item) so that per-task
dispatch cost is paid per chunk, not per user, while still leaving the
pool enough tasks to balance uneven per-user run times.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Sequence, TypeVar

from repro.errors import ReproError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Target number of chunks per worker; >1 smooths uneven item costs.
CHUNKS_PER_WORKER = 4


class ParallelExecutionError(ReproError):
    """The process-pool fan-out could not be configured or executed."""


def resolve_workers(workers: "int | None") -> int:
    """Normalise a ``workers`` argument to a concrete pool size.

    ``None`` and ``0`` both mean "one worker per CPU core"; any positive
    count is used as-is; negative values are rejected (they are neither a
    valid pool size nor the auto-detect sentinel).
    """
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ParallelExecutionError(
            "workers must be a positive count, or 0/None for one worker "
            f"per core; got {workers!r}"
        )
    return workers


def default_chunk_size(item_count: int, workers: int) -> int:
    """Chunk size giving each worker ~``CHUNKS_PER_WORKER`` tasks."""
    if item_count <= 0:
        return 1
    return max(1, math.ceil(item_count / (workers * CHUNKS_PER_WORKER)))


def _apply_chunk(
    fn: "Callable[[ItemT], ResultT]", chunk: "Sequence[ItemT]"
) -> "List[ResultT]":
    """Worker-side body: apply ``fn`` to one chunk of items."""
    return [fn(item) for item in chunk]


def parallel_map(
    fn: "Callable[[ItemT], ResultT]",
    items: "Sequence[ItemT]",
    workers: "int | None" = 1,
    chunk_size: "int | None" = None,
    progress: "Callable[[int], None] | None" = None,
) -> "List[ResultT]":
    """``[fn(item) for item in items]``, fanned out over processes.

    ``fn`` and every item must be picklable when ``workers > 1`` (``fn``
    must be a module-level callable). ``progress`` receives the running
    count of completed items: once per item in the serial path, once per
    finished chunk in the parallel path. Results always come back in
    input order; a worker exception propagates to the caller unchanged,
    and every not-yet-started chunk is cancelled first so a poisoned
    item aborts the whole map promptly instead of letting the remaining
    work run to completion behind the raised error.
    """
    workers = resolve_workers(workers)
    items = list(items)
    if workers == 1 or len(items) <= 1:
        results: "List[ResultT]" = []
        for index, item in enumerate(items):
            results.append(fn(item))
            if progress is not None:
                progress(index + 1)
        return results

    size = chunk_size if chunk_size is not None else default_chunk_size(len(items), workers)
    if size < 1:
        raise ParallelExecutionError(f"chunk_size must be >= 1, got {size!r}")
    chunks = [items[start:start + size] for start in range(0, len(items), size)]
    chunk_results: "List[List[ResultT] | None]" = [None] * len(chunks)
    completed_items = 0
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        pending = {
            pool.submit(_apply_chunk, fn, chunk): index
            for index, chunk in enumerate(chunks)
        }
        try:
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    chunk_results[index] = future.result()  # re-raises worker errors
                    completed_items += len(chunks[index])
                    if progress is not None:
                        progress(completed_items)
        except BaseException:
            # First failure: drop every not-yet-started chunk so the pool
            # shutdown below only waits for chunks already in flight,
            # instead of running the whole remaining map to completion.
            for future in pending:
                future.cancel()
            raise
    ordered: "List[ResultT]" = []
    for index, result in enumerate(chunk_results):
        if result is None:
            raise ParallelExecutionError(f"chunk {index} never completed")
        ordered.extend(result)
    return ordered
