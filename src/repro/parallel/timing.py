"""Wall-time and throughput instrumentation for the sweep path.

A sweep run decomposes into stages — building the population, cache
lookups, the simulation fan-out, cache write-back — and the experiments
CLI (and ``BENCH_sweep.json``) report each stage's wall time plus the
headline throughput numbers (users/sec, cache hit rate). The primitives
here are deliberately tiny: a :class:`StageTimer` that accumulates named
``perf_counter`` spans, and a :class:`SweepTiming` record attached to
every :class:`~repro.experiments.runner.SweepResult`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


class StageTimer:
    """Accumulate wall time per named stage.

    Usage::

        timer = StageTimer()
        with timer.stage("simulate"):
            ...
        timer.seconds("simulate")  # -> float
    """

    def __init__(self) -> None:
        self._started = time.perf_counter()
        self._stages: "Dict[str, float]" = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        begin = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin
            self._stages[name] = self._stages.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        """Accumulated wall time of one stage (0.0 if it never ran)."""
        return self._stages.get(name, 0.0)

    @property
    def stages(self) -> "Dict[str, float]":
        return dict(self._stages)

    @property
    def total_seconds(self) -> float:
        """Wall time since the timer was constructed."""
        return time.perf_counter() - self._started


@dataclass(frozen=True)
class SweepTiming:
    """Throughput record of one sweep run."""

    workers: int
    total_users: int
    simulated_users: int  # users actually run (total - cache hits)
    cache_hits: int
    cache_misses: int
    stage_seconds: "Dict[str, float]" = field(default_factory=dict)
    total_seconds: float = 0.0

    @property
    def users_per_second(self) -> float:
        """End-to-end population throughput (cache hits included)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.total_users / self.total_seconds

    @property
    def simulated_users_per_second(self) -> float:
        """Throughput of the simulate stage alone (cache hits excluded)."""
        simulate = self.stage_seconds.get("simulate", 0.0)
        if simulate <= 0.0:
            return 0.0
        return self.simulated_users / simulate

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_json(self) -> "dict":
        """JSON-ready form, embedded in ``BENCH_sweep.json`` records."""
        return {
            "workers": self.workers,
            "total_users": self.total_users,
            "simulated_users": self.simulated_users,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stage_seconds.items())
            },
            "total_seconds": round(self.total_seconds, 6),
            "users_per_second": round(self.users_per_second, 3),
            "simulated_users_per_second": round(self.simulated_users_per_second, 3),
        }

    def render(self) -> str:
        """One human-readable line per stage, for the CLI's stderr."""
        lines = [
            f"sweep timing: {self.total_users} users, {self.workers} worker(s), "
            f"{self.total_seconds:.2f}s total ({self.users_per_second:.1f} users/s)"
        ]
        for name, seconds in sorted(self.stage_seconds.items()):
            lines.append(f"  stage {name:<12} {seconds:8.2f}s")
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es) "
                f"({self.cache_hit_rate:.0%} hit rate)"
            )
        return "\n".join(lines)
