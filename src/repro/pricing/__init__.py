"""EC2 pricing substrate: plans, payment options, and the embedded catalog.

Public surface::

    from repro.pricing import (
        PricingPlan, PaymentOption, OptionQuote, Catalog,
        default_catalog, get_plan, paper_experiment_plan,
        compute_statistics, HOURS_PER_YEAR,
    )
"""

from repro.pricing.catalog import (
    PAPER_EXPERIMENT_INSTANCE,
    Catalog,
    default_catalog,
    get_plan,
    paper_experiment_plan,
)
from repro.pricing.options import (
    MONTHS_PER_YEAR,
    OptionQuote,
    PaymentOption,
    table_i_quotes,
)
from repro.pricing.plan import HOURS_PER_3_YEARS, HOURS_PER_YEAR, PricingPlan
from repro.pricing.terms import (
    THREE_YEAR_RECURRING_RATIO,
    THREE_YEAR_UPFRONT_RATIO,
    TermComparison,
    term_bound_comparison,
    three_year_catalog,
)
from repro.pricing.statistics import (
    CatalogStatistics,
    RangeStat,
    compute_statistics,
    format_statistics,
)

__all__ = [
    "PricingPlan",
    "PaymentOption",
    "OptionQuote",
    "Catalog",
    "CatalogStatistics",
    "RangeStat",
    "default_catalog",
    "get_plan",
    "paper_experiment_plan",
    "table_i_quotes",
    "compute_statistics",
    "format_statistics",
    "HOURS_PER_YEAR",
    "HOURS_PER_3_YEARS",
    "three_year_catalog",
    "term_bound_comparison",
    "TermComparison",
    "THREE_YEAR_UPFRONT_RATIO",
    "THREE_YEAR_RECURRING_RATIO",
    "MONTHS_PER_YEAR",
    "PAPER_EXPERIMENT_INSTANCE",
]
