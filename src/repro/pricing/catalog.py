"""Embedded catalog of standard (Linux, US East) EC2 instance pricing.

The paper's statistics (θ ∈ (1, 4), α < 0.36 — Section IV-C) and its
experiments are anchored to "all standard instances (Linux, US East) for
1-year terms in Amazon EC2" as of January 2018. The original price sheet is
not redistributable, so this module embeds a reconstruction:

* ``d2.xlarge`` reproduces the paper's Table I **exactly** (upfront $1506,
  monthly $125.56, on-demand $0.69/h); the other ``d2`` sizes scale it
  linearly, matching Amazon's size-proportional pricing.
* ``t2.nano`` reproduces the paper's Section III-A worked example exactly
  (on-demand $0.0059/h, upfront $18, reserved rate $0.002/h, α ≈ 0.34).
* The remaining 67 entries cover the standard Jan-2018 families (t2, m4,
  m5, c4, c5, r4, x1, x1e, d2, h1, i3, p2, p3, g3, f1) with period-accurate
  on-demand rates and partial-upfront quotes chosen so the catalog-wide
  statistics satisfy the paper's claims. See DESIGN.md §3 for why this
  substitution preserves the evaluated behaviour: the algorithms consume
  only (p, R, α, T) per type.

All quotes are 1-year Partial Upfront, the option the paper reduces to its
(R, αp) model and uses in the evaluation (Section VI-A).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import UnknownInstanceTypeError
from repro.pricing.options import OptionQuote, PaymentOption
from repro.pricing.plan import HOURS_PER_YEAR, PricingPlan

#: (instance type, on-demand $/h, partial-upfront $, monthly $) —
#: standard instances, Linux, US East, 1-year term, circa Jan 2018.
_CATALOG_ROWS: tuple[tuple[str, float, int, float], ...] = (
    ("c4.2xlarge", 0.398, 1429, 90.07),
    ("c4.4xlarge", 0.796, 2859, 180.13),
    ("c4.8xlarge", 1.591, 5714, 360.04),
    ("c4.large", 0.1, 359, 22.63),
    ("c4.xlarge", 0.199, 715, 45.03),
    ("c5.18xlarge", 3.06, 11526, 647.8),
    ("c5.2xlarge", 0.34, 1281, 71.98),
    ("c5.4xlarge", 0.68, 2561, 143.96),
    ("c5.9xlarge", 1.53, 5763, 323.9),
    ("c5.large", 0.085, 320, 17.99),
    ("c5.xlarge", 0.17, 640, 35.99),
    ("d2.2xlarge", 1.38, 3012, 251.12),
    ("d2.4xlarge", 2.76, 6024, 502.24),
    ("d2.8xlarge", 5.52, 12048, 1004.48),
    ("d2.xlarge", 0.69, 1506, 125.56),
    ("f1.16xlarge", 13.2, 57816, 2119.92),
    ("f1.2xlarge", 1.65, 7227, 264.99),
    ("g3.16xlarge", 4.56, 17976, 832.2),
    ("g3.4xlarge", 1.14, 4494, 208.05),
    ("g3.8xlarge", 2.28, 8988, 416.1),
    ("h1.16xlarge", 3.744, 12463, 710.61),
    ("h1.2xlarge", 0.468, 1558, 88.83),
    ("h1.4xlarge", 0.936, 3116, 177.65),
    ("h1.8xlarge", 1.872, 6232, 355.31),
    ("i3.16xlarge", 4.992, 17055, 1020.36),
    ("i3.2xlarge", 0.624, 2132, 127.55),
    ("i3.4xlarge", 1.248, 4264, 255.09),
    ("i3.8xlarge", 2.496, 8527, 510.18),
    ("i3.large", 0.156, 533, 31.89),
    ("i3.xlarge", 0.312, 1066, 63.77),
    ("m4.10xlarge", 2.0, 7358, 438.0),
    ("m4.16xlarge", 3.2, 11773, 700.8),
    ("m4.2xlarge", 0.4, 1472, 87.6),
    ("m4.4xlarge", 0.8, 2943, 175.2),
    ("m4.large", 0.1, 368, 21.9),
    ("m4.xlarge", 0.2, 736, 43.8),
    ("m5.12xlarge", 2.304, 8881, 470.94),
    ("m5.24xlarge", 4.608, 17761, 941.88),
    ("m5.2xlarge", 0.384, 1480, 78.49),
    ("m5.4xlarge", 0.768, 2960, 156.98),
    ("m5.large", 0.096, 370, 19.62),
    ("m5.xlarge", 0.192, 740, 39.24),
    ("p2.16xlarge", 14.4, 60549, 2522.88),
    ("p2.8xlarge", 7.2, 30275, 1261.44),
    ("p2.xlarge", 0.9, 3784, 157.68),
    ("p3.16xlarge", 24.48, 107222, 4110.19),
    ("p3.2xlarge", 3.06, 13403, 513.77),
    ("p3.8xlarge", 12.24, 53611, 2055.1),
    ("r4.16xlarge", 4.256, 14913, 838.86),
    ("r4.2xlarge", 0.532, 1864, 104.86),
    ("r4.4xlarge", 1.064, 3728, 209.71),
    ("r4.8xlarge", 2.128, 7457, 419.43),
    ("r4.large", 0.133, 466, 26.21),
    ("r4.xlarge", 0.266, 932, 52.43),
    ("t2.2xlarge", 0.3712, 1138, 92.13),
    ("t2.large", 0.0928, 285, 23.03),
    ("t2.medium", 0.0464, 142, 11.52),
    ("t2.micro", 0.0116, 36, 2.88),
    ("t2.nano", 0.0059, 18, 1.46),
    ("t2.small", 0.023, 71, 5.71),
    ("t2.xlarge", 0.1856, 569, 46.07),
    ("x1.16xlarge", 6.669, 30379, 1071.04),
    ("x1.32xlarge", 13.338, 60757, 2142.08),
    ("x1e.16xlarge", 13.344, 64291, 2045.64),
    ("x1e.2xlarge", 1.668, 8036, 255.7),
    ("x1e.32xlarge", 26.688, 128583, 4091.27),
    ("x1e.4xlarge", 3.336, 16073, 511.41),
    ("x1e.8xlarge", 6.672, 32146, 1022.82),
    ("x1e.xlarge", 0.834, 4018, 127.85),
)


class Catalog(Mapping[str, PricingPlan]):
    """Read-only mapping of instance-type name to :class:`PricingPlan`.

    Behaves like a dict (``catalog["d2.xlarge"]``, iteration, ``len``) and
    additionally exposes the raw partial-upfront quotes via
    :meth:`quote` and family filtering via :meth:`family`.
    """

    def __init__(
        self,
        rows: tuple[tuple[str, float, int, float], ...] = _CATALOG_ROWS,
        period_hours: int = HOURS_PER_YEAR,
    ) -> None:
        self._period_hours = period_hours
        self._quotes: dict[str, OptionQuote] = {}
        self._plans: dict[str, PricingPlan] = {}
        for name, on_demand, upfront, monthly in rows:
            quote = OptionQuote(
                option=PaymentOption.PARTIAL_UPFRONT,
                upfront=float(upfront),
                monthly=monthly,
                on_demand_hourly=on_demand,
                period_hours=period_hours,
                instance_type=name,
            )
            self._quotes[name] = quote
            self._plans[name] = quote.to_plan(name=name)

    # Mapping interface -------------------------------------------------

    def __getitem__(self, instance_type: str) -> PricingPlan:
        try:
            return self._plans[instance_type]
        except KeyError:
            raise UnknownInstanceTypeError(instance_type) from None

    def __contains__(self, instance_type: object) -> bool:
        # Mapping's default __contains__ relies on KeyError; our typed
        # lookup error is not one, so answer membership directly.
        return instance_type in self._plans

    def __iter__(self) -> Iterator[str]:
        return iter(self._plans)

    def __len__(self) -> int:
        return len(self._plans)

    # Extras -------------------------------------------------------------

    @property
    def period_hours(self) -> int:
        """Reservation term shared by all catalog entries, in hours."""
        return self._period_hours

    def quote(self, instance_type: str) -> OptionQuote:
        """The raw partial-upfront :class:`OptionQuote` for a type."""
        try:
            return self._quotes[instance_type]
        except KeyError:
            raise UnknownInstanceTypeError(instance_type) from None

    def family(self, family: str) -> dict[str, PricingPlan]:
        """All plans of one instance family, e.g. ``catalog.family("d2")``."""
        prefix = family + "."
        return {
            name: plan for name, plan in self._plans.items() if name.startswith(prefix)
        }

    def families(self) -> list[str]:
        """Sorted list of distinct instance families in the catalog."""
        return sorted({name.split(".", 1)[0] for name in self._plans})


_DEFAULT_CATALOG: Catalog | None = None


def default_catalog() -> Catalog:
    """The standard Linux/US-East 1-year catalog (memoised singleton)."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = Catalog()
    return _DEFAULT_CATALOG


def get_plan(instance_type: str) -> PricingPlan:
    """Convenience lookup into :func:`default_catalog`."""
    return default_catalog()[instance_type]


#: The instance type the paper's experiments use (Section VI-A): d2.xlarge,
#: upfront $1506, on-demand $0.69/h, α = 0.25.
PAPER_EXPERIMENT_INSTANCE = "d2.xlarge"


def paper_experiment_plan(alpha: float = 0.25) -> PricingPlan:
    """The exact plan of the paper's evaluation: d2.xlarge with α = 0.25.

    Section VI-A rounds the implied discount (0.2493...) to 0.25; pass
    ``alpha=None``-like behaviour by calling :func:`get_plan` instead if
    the catalog-implied α is preferred.
    """
    base = get_plan(PAPER_EXPERIMENT_INSTANCE)
    return PricingPlan(
        on_demand_hourly=base.on_demand_hourly,
        upfront=base.upfront,
        alpha=alpha,
        period_hours=base.period_hours,
        name=base.name,
    )
