"""Amazon EC2 payment options and their reduction to the paper's model.

Amazon sells 1-year and 3-year reservations under three payment options
(Table I of the paper):

* **No Upfront** — $0 upfront, a monthly fee;
* **Partial Upfront** — an upfront fee plus a (smaller) monthly fee;
* **All Upfront** — a single upfront fee, no recurring charge.

The paper's cost model has a single upfront ``R`` and a discounted hourly
rate ``alpha * p``. A payment option maps onto that model directly:
``R = upfront`` and ``alpha = monthly_as_hourly / p``. This module performs
that reduction and reproduces the "Effective Hourly" column of Table I.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro._tolerances import money_is_zero
from repro.errors import PricingError
from repro.pricing.plan import HOURS_PER_YEAR, PricingPlan

#: Amazon bills monthly fees 12 times over a 1-year term.
MONTHS_PER_YEAR = 12


class PaymentOption(enum.Enum):
    """The three reserved-instance payment options plus pure on-demand."""

    NO_UPFRONT = "no-upfront"
    PARTIAL_UPFRONT = "partial-upfront"
    ALL_UPFRONT = "all-upfront"
    ON_DEMAND = "on-demand"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OptionQuote:
    """One row of an Amazon price sheet for a reserved instance.

    Parameters
    ----------
    option:
        Which payment option this quote is for.
    upfront:
        Dollars paid at purchase time (0 for No Upfront / On-Demand).
    monthly:
        Dollars paid each month (0 for All Upfront / On-Demand).
    on_demand_hourly:
        The instance type's on-demand rate, needed to derive ``alpha``.
    period_hours:
        Reservation term in hours.
    instance_type:
        Optional name for error messages and reports.
    """

    option: PaymentOption
    upfront: float
    monthly: float
    on_demand_hourly: float
    period_hours: int = HOURS_PER_YEAR
    instance_type: str = ""

    def __post_init__(self) -> None:
        if self.upfront < 0 or not math.isfinite(self.upfront):
            raise PricingError(f"upfront must be >= 0, got {self.upfront!r}")
        if self.monthly < 0 or not math.isfinite(self.monthly):
            raise PricingError(f"monthly must be >= 0, got {self.monthly!r}")
        if self.on_demand_hourly <= 0:
            raise PricingError(
                f"on_demand_hourly must be > 0, got {self.on_demand_hourly!r}"
            )
        if self.option is PaymentOption.ALL_UPFRONT and not money_is_zero(self.monthly):
            raise PricingError("an All Upfront quote cannot carry a monthly fee")
        if self.option is PaymentOption.NO_UPFRONT and not money_is_zero(self.upfront):
            raise PricingError("a No Upfront quote cannot carry an upfront fee")
        if self.option is PaymentOption.ON_DEMAND and (self.upfront or self.monthly):
            raise PricingError("an On-Demand quote has neither upfront nor monthly fees")

    @property
    def months(self) -> float:
        """Number of monthly payments over the term."""
        return MONTHS_PER_YEAR * self.period_hours / HOURS_PER_YEAR

    @property
    def recurring_hourly(self) -> float:
        """The monthly fee expressed per hour — the paper's ``alpha * p``."""
        return self.monthly * self.months / self.period_hours

    @property
    def alpha(self) -> float:
        """Reservation discount implied by this quote."""
        if self.option is PaymentOption.ON_DEMAND:
            return 1.0
        return self.recurring_hourly / self.on_demand_hourly

    @property
    def effective_hourly(self) -> float:
        """Total cost of the term amortised per hour (Table I column)."""
        if self.option is PaymentOption.ON_DEMAND:
            return self.on_demand_hourly
        return self.upfront / self.period_hours + self.recurring_hourly

    @property
    def total_cost(self) -> float:
        """Total dollars paid over the full term."""
        return self.effective_hourly * self.period_hours

    def to_plan(self, name: str = "") -> PricingPlan:
        """Reduce this quote to the paper's canonical :class:`PricingPlan`.

        Raises
        ------
        PricingError
            For On-Demand quotes (no reservation to model) and No Upfront
            quotes (``R = 0`` makes the selling problem vacuous).
        """
        if self.option is PaymentOption.ON_DEMAND:
            raise PricingError("an On-Demand quote has no reservation to reduce")
        if money_is_zero(self.upfront):
            raise PricingError(
                "a No Upfront reservation has nothing to recoup by selling; "
                "the paper's model requires R > 0"
            )
        alpha = self.alpha
        if alpha >= 1.0:
            raise PricingError(
                f"quote implies alpha={alpha:.3f} >= 1; the reserved rate "
                f"must undercut the on-demand rate"
            )
        return PricingPlan(
            on_demand_hourly=self.on_demand_hourly,
            upfront=self.upfront,
            alpha=alpha,
            period_hours=self.period_hours,
            name=name or self.instance_type,
        )


def table_i_quotes() -> dict[PaymentOption, OptionQuote]:
    """The exact Table I of the paper: d2.xlarge (US East (Ohio), Linux),
    as of Jan 1, 2018."""
    kwargs = {"on_demand_hourly": 0.69, "instance_type": "d2.xlarge"}
    return {
        PaymentOption.NO_UPFRONT: OptionQuote(
            PaymentOption.NO_UPFRONT, upfront=0.0, monthly=293.46, **kwargs
        ),
        PaymentOption.PARTIAL_UPFRONT: OptionQuote(
            PaymentOption.PARTIAL_UPFRONT, upfront=1506.0, monthly=125.56, **kwargs
        ),
        PaymentOption.ALL_UPFRONT: OptionQuote(
            PaymentOption.ALL_UPFRONT, upfront=2952.0, monthly=0.0, **kwargs
        ),
        PaymentOption.ON_DEMAND: OptionQuote(
            PaymentOption.ON_DEMAND, upfront=0.0, monthly=0.0, **kwargs
        ),
    }
