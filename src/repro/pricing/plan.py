"""Canonical pricing plan used throughout the library.

The paper (Section III-A) reduces every Amazon EC2 pricing option to four
numbers:

* ``p``      — the on-demand hourly rate of the instance type,
* ``R``      — the upfront fee paid when reserving,
* ``alpha``  — the reservation discount: a reserved instance is billed
  ``alpha * p`` per hour while active,
* ``T``      — the reservation period in hours (1 year = 8760 hours).

:class:`PricingPlan` bundles those numbers, validates them, and exposes the
derived quantities used by the analysis: ``theta = p * T / R`` (the paper's
θ, Section IV-C), the break-even utilisation, and total-cost helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import PricingError

#: Hours in a 1-year reservation period (Amazon bills hourly; 365 days).
HOURS_PER_YEAR = 8760

#: Hours in a 3-year reservation period.
HOURS_PER_3_YEARS = 3 * HOURS_PER_YEAR


@dataclass(frozen=True)
class PricingPlan:
    """Pricing of one instance type under the paper's cost model.

    Parameters
    ----------
    on_demand_hourly:
        The on-demand hourly rate ``p`` in dollars per hour. Must be > 0.
    upfront:
        The reservation upfront fee ``R`` in dollars. Must be > 0 (a zero
        upfront would make the selling problem vacuous: there is nothing to
        recoup by selling).
    alpha:
        The reservation discount ``alpha`` in [0, 1): the reserved hourly
        rate is ``alpha * on_demand_hourly``.
    period_hours:
        The reservation period ``T`` in hours. Must be a positive integer.
    name:
        Optional instance-type name, e.g. ``"d2.xlarge"``.
    """

    on_demand_hourly: float
    upfront: float
    alpha: float
    period_hours: int = HOURS_PER_YEAR
    name: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.on_demand_hourly) or self.on_demand_hourly <= 0:
            raise PricingError(
                f"on_demand_hourly must be a positive finite number, "
                f"got {self.on_demand_hourly!r}"
            )
        if not math.isfinite(self.upfront) or self.upfront <= 0:
            raise PricingError(
                f"upfront must be a positive finite number, got {self.upfront!r}"
            )
        if not 0.0 <= self.alpha < 1.0:
            raise PricingError(f"alpha must lie in [0, 1), got {self.alpha!r}")
        if int(self.period_hours) != self.period_hours or self.period_hours <= 0:
            raise PricingError(
                f"period_hours must be a positive integer, got {self.period_hours!r}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def p(self) -> float:
        """Alias for :attr:`on_demand_hourly`, matching the paper's ``p``."""
        return self.on_demand_hourly

    @property
    def big_r(self) -> float:
        """Alias for :attr:`upfront`, matching the paper's ``R``."""
        return self.upfront

    @property
    def reserved_hourly(self) -> float:
        """Hourly rate of an active reserved instance: ``alpha * p``."""
        return self.alpha * self.on_demand_hourly

    @property
    def theta(self) -> float:
        """The paper's θ = C / R, where C = p·T is the largest on-demand
        cost incurable over one reservation period (demand present every
        hour). Section IV-C states θ ∈ (1, 4) for all standard Linux
        US-East 1-year instances."""
        return self.on_demand_hourly * self.period_hours / self.upfront

    @property
    def break_even_hours(self) -> float:
        """Usage hours at which reserving equals buying on demand.

        Solves ``R + alpha·p·h = p·h`` for ``h``: below this many busy
        hours within one period, pure on-demand would have been cheaper.
        """
        return self.upfront / (self.on_demand_hourly * (1.0 - self.alpha))

    @property
    def break_even_utilisation(self) -> float:
        """:attr:`break_even_hours` as a fraction of the period."""
        return self.break_even_hours / self.period_hours

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def on_demand_cost(self, hours: float) -> float:
        """Cost of serving ``hours`` busy hours purely on demand."""
        if hours < 0:
            raise PricingError(f"hours must be non-negative, got {hours!r}")
        return self.on_demand_hourly * hours

    def reserved_cost(self, active_hours: float) -> float:
        """Cost of holding a reservation active for ``active_hours``:
        the upfront plus the discounted hourly fee for every active hour
        (idle or busy — the paper's Eq. (1) bills active reservations
        unconditionally)."""
        if active_hours < 0:
            raise PricingError(f"active_hours must be non-negative, got {active_hours!r}")
        if active_hours > self.period_hours:
            raise PricingError(
                f"active_hours {active_hours!r} exceeds the reservation "
                f"period of {self.period_hours} hours"
            )
        return self.upfront + self.reserved_hourly * active_hours

    def effective_reserved_hourly(self) -> float:
        """Amortised hourly cost of a fully-held reservation:
        ``R/T + alpha·p`` — the 'Effective Hourly' column of Table I."""
        return self.upfront / self.period_hours + self.reserved_hourly

    def savings_ratio(self) -> float:
        """Fraction saved by a fully-utilised reservation over on demand:
        ``1 − (R + alpha·p·T) / (p·T)``."""
        full_reserved = self.reserved_cost(self.period_hours)
        full_on_demand = self.on_demand_cost(self.period_hours)
        return 1.0 - full_reserved / full_on_demand

    def prorated_upfront(self, elapsed_hours: float) -> float:
        """Maximum marketplace upfront for the remaining period after
        ``elapsed_hours``: ``(1 − elapsed/T) · R`` (Section III-B: the
        t2.nano with half its cycle left may list at most $9 of its $18)."""
        if not 0 <= elapsed_hours <= self.period_hours:
            raise PricingError(
                f"elapsed_hours must lie in [0, {self.period_hours}], "
                f"got {elapsed_hours!r}"
            )
        remaining_fraction = 1.0 - elapsed_hours / self.period_hours
        return remaining_fraction * self.upfront

    def with_period(self, period_hours: int, scale_upfront: bool = True) -> "PricingPlan":
        """Return a copy of this plan with a different reservation period.

        Used by tests and examples to scale the 1-year period down. With
        ``scale_upfront=True`` (default) the upfront is scaled by the same
        factor, preserving θ = p·T/R and the break-even utilisation — all
        of the paper's quantities are expressed in fractions of ``T``, so
        this scaling leaves the algorithms' behaviour exactly invariant.
        With ``scale_upfront=False`` only the period changes (a genuinely
        different, usually degenerate, economic regime).
        """
        if scale_upfront:
            factor = period_hours / self.period_hours
            return replace(
                self, period_hours=period_hours, upfront=self.upfront * factor
            )
        return replace(self, period_hours=period_hours)
