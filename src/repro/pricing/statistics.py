"""Catalog-wide pricing statistics backing the paper's theory constants.

Section IV-C of the paper justifies the headline competitive ratio
2 − α − a/4 with two empirical claims about "all standard instances
(Linux, US East) for 1-year terms in Amazon EC2":

* θ = C/R ∈ (1, 4), where C = p·T is the largest on-demand spend over one
  reservation period, and
* α < 0.36 for every such instance,

which together make the Case-2 predicate α + a/4 + 4/(4−a) < 2 hold for
all a ∈ [0, 1]. This module recomputes those statistics over the embedded
catalog so the claims are checked rather than assumed.
"""

from __future__ import annotations

import statistics as _stats
from dataclasses import dataclass

from repro.pricing.catalog import Catalog, default_catalog


@dataclass(frozen=True)
class RangeStat:
    """Summary of one per-instance quantity across the catalog."""

    minimum: float
    maximum: float
    mean: float
    median: float

    def contains(self, low: float, high: float) -> bool:
        """Whether every observed value lies in the open interval (low, high)."""
        return low < self.minimum and self.maximum < high


@dataclass(frozen=True)
class CatalogStatistics:
    """The θ and α statistics of Section IV-C plus supporting detail."""

    size: int
    theta: RangeStat
    alpha: RangeStat
    break_even_utilisation: RangeStat
    theta_in_paper_range: bool
    alpha_below_paper_bound: bool
    argmax_theta: str
    argmax_alpha: str

    #: The paper's stated bounds.
    PAPER_THETA_HIGH = 4.0
    PAPER_ALPHA_BOUND = 0.36


def _range_stat(values: dict[str, float]) -> RangeStat:
    data = list(values.values())
    return RangeStat(
        minimum=min(data),
        maximum=max(data),
        mean=_stats.fmean(data),
        median=_stats.median(data),
    )


def compute_statistics(
    catalog: Catalog | None = None,
    theta_tolerance: float = 0.02,
) -> CatalogStatistics:
    """Compute θ/α statistics over ``catalog`` (default: embedded catalog).

    ``theta_tolerance`` loosens the θ < 4 check slightly: Table I's own
    numbers put d2.xlarge at θ = 0.69·8760/1506 ≈ 4.013, so the paper's
    "θ ∈ (1, 4)" is best read as θ ≲ 4; the default tolerance accepts the
    paper's own experiment instance.
    """
    catalog = catalog or default_catalog()
    thetas = {name: plan.theta for name, plan in catalog.items()}
    alphas = {name: plan.alpha for name, plan in catalog.items()}
    utilisations = {
        name: plan.break_even_utilisation for name, plan in catalog.items()
    }
    theta = _range_stat(thetas)
    alpha = _range_stat(alphas)
    return CatalogStatistics(
        size=len(catalog),
        theta=theta,
        alpha=alpha,
        break_even_utilisation=_range_stat(utilisations),
        theta_in_paper_range=(
            1.0 < theta.minimum
            and theta.maximum < CatalogStatistics.PAPER_THETA_HIGH + theta_tolerance
        ),
        alpha_below_paper_bound=alpha.maximum < CatalogStatistics.PAPER_ALPHA_BOUND,
        argmax_theta=max(thetas, key=thetas.get),
        argmax_alpha=max(alphas, key=alphas.get),
    )


def format_statistics(stats: CatalogStatistics) -> str:
    """Human-readable report of the Section IV-C statistics."""
    lines = [
        f"Standard (Linux, US East) 1-year catalog: {stats.size} instance types",
        (
            f"theta = p*T/R : min {stats.theta.minimum:.3f}  "
            f"max {stats.theta.maximum:.3f} ({stats.argmax_theta})  "
            f"mean {stats.theta.mean:.3f}"
        ),
        (
            f"alpha         : min {stats.alpha.minimum:.3f}  "
            f"max {stats.alpha.maximum:.3f} ({stats.argmax_alpha})  "
            f"mean {stats.alpha.mean:.3f}"
        ),
        (
            f"paper claim theta in (1, 4): "
            f"{'holds' if stats.theta_in_paper_range else 'VIOLATED'}"
        ),
        (
            f"paper claim alpha < 0.36   : "
            f"{'holds' if stats.alpha_below_paper_bound else 'VIOLATED'}"
        ),
    ]
    return "\n".join(lines)
