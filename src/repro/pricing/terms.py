"""3-year reservation terms (the catalog's other contract length).

The paper's analysis is parametric in the period ``T`` ("Amazon has
1-year and 3-year options, meaning T is 1 or 3 years") but its
statistics and experiments use 1-year terms. This module derives a
3-year catalog from the embedded 1-year one using Amazon's historical
term economics: the 3-year upfront is about 2.1× the 1-year upfront and
the recurring rate is discounted a further ~15%.

The interesting consequence for the theory: θ = p·T/R grows by
``3/upfront_ratio`` ≈ 1.4×, pushing some types past the paper's θ < 4 —
so the Case-1 bounds computed with the *actual* θ weaken, quantified by
:func:`term_bound_comparison` and the term-length bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pricing.catalog import _CATALOG_ROWS, Catalog
from repro.pricing.plan import HOURS_PER_3_YEARS

#: Historical 3-year / 1-year economics (approximate, standard Linux).
THREE_YEAR_UPFRONT_RATIO = 2.1
THREE_YEAR_RECURRING_RATIO = 0.85


def three_year_catalog() -> Catalog:
    """The embedded catalog re-priced for 3-year terms."""
    rows = tuple(
        (
            name,
            on_demand,
            round(upfront * THREE_YEAR_UPFRONT_RATIO),
            round(monthly * THREE_YEAR_RECURRING_RATIO, 2),
        )
        for name, on_demand, upfront, monthly in _CATALOG_ROWS
    )
    return Catalog(rows=rows, period_hours=HOURS_PER_3_YEARS)


@dataclass(frozen=True)
class TermComparison:
    """Proved A_{φT} bounds for one type under both term lengths."""

    instance_type: str
    phi: float
    theta_1yr: float
    theta_3yr: float
    bound_1yr: float
    bound_3yr: float

    @property
    def bound_weakens(self) -> bool:
        return self.bound_3yr > self.bound_1yr


def term_bound_comparison(
    instance_type: str,
    a: float = 0.8,
    phi: float = 0.75,
    one_year: "Catalog | None" = None,
) -> TermComparison:
    """Per-plan-θ Case bounds for 1-year vs 3-year terms."""
    # Imported here: repro.core depends on repro.pricing, so the theory
    # helpers must not be imported at pricing's module-import time.
    from repro.core import ratios
    from repro.pricing.catalog import default_catalog

    one = (one_year or default_catalog())[instance_type]
    three = three_year_catalog()[instance_type]
    return TermComparison(
        instance_type=instance_type,
        phi=phi,
        theta_1yr=one.theta,
        theta_3yr=three.theta,
        bound_1yr=ratios.competitive_ratio_for_plan(
            one, a, phi, use_paper_theta=False
        ),
        bound_3yr=ratios.competitive_ratio_for_plan(
            three, a, phi, use_paper_theta=False
        ),
    )
