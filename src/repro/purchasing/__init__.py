"""Purchasing substrate: the paper's four reservation-behaviour imitators."""

from repro.purchasing.all_reserved import AllReserved
from repro.purchasing.base import (
    ActiveReservationTracker,
    PurchasingAlgorithm,
)
from repro.purchasing.ondemand_only import OnDemandOnly
from repro.purchasing.online_breakeven import (
    OnlineBreakEven,
    aggressive_online_purchasing,
    wang_online_purchasing,
)
from repro.purchasing.random_reservation import RandomReservation
from repro.purchasing.randomized_breakeven import (
    SKI_RENTAL_RATIO,
    RandomizedBreakEven,
    draw_threshold_fraction,
)
from repro.purchasing.runner import (
    ReservationSchedule,
    imitate,
    paper_imitators,
)
from repro.purchasing.stepper import (
    AllReservedStepper,
    BreakEvenStepper,
    OnDemandOnlyStepper,
    PurchasingStepper,
    RandomReservationStepper,
    stepper_for,
)

__all__ = [
    "PurchasingAlgorithm",
    "ActiveReservationTracker",
    "AllReserved",
    "RandomReservation",
    "OnlineBreakEven",
    "wang_online_purchasing",
    "aggressive_online_purchasing",
    "OnDemandOnly",
    "RandomizedBreakEven",
    "SKI_RENTAL_RATIO",
    "draw_threshold_fraction",
    "ReservationSchedule",
    "imitate",
    "paper_imitators",
    "PurchasingStepper",
    "AllReservedStepper",
    "RandomReservationStepper",
    "BreakEvenStepper",
    "OnDemandOnlyStepper",
    "stepper_for",
]
