"""The *All-Reserved* imitator (Section VI-A, first behaviour).

"A user chooses reserved instances to serve all workloads": whenever
demand exceeds the active reserved pool, the gap is reserved immediately.
Imitates users with stable demands — and, on fluctuating demands,
produces exactly the over-reservation the selling algorithms monetise.
"""

from __future__ import annotations

import numpy as np

from repro.pricing.plan import PricingPlan
from repro.purchasing.base import (
    ActiveReservationTracker,
    PurchasingAlgorithm,
    demands_array,
    validated_schedule,
)


class AllReserved(PurchasingAlgorithm):
    """Reserve the full demand gap every hour."""

    name = "All-Reserved"

    def schedule(self, demands, plan: PricingPlan) -> np.ndarray:
        trace, values = demands_array(demands, plan)
        horizon = len(trace)
        tracker = ActiveReservationTracker(plan.period_hours)
        n = np.zeros(horizon, dtype=np.int64)
        for hour in range(horizon):
            tracker.advance_to(hour)
            gap = int(values[hour]) - tracker.active
            if gap > 0:
                n[hour] = gap
                tracker.reserve(hour, gap)
        return validated_schedule(n, horizon)
