"""Purchasing algorithms: how users come to hold reservations.

The paper's evaluation needs, per user, "the value of demands and new
reserved instances at each time" (Section VI-A). Public traces only have
demands, so the paper *imitates* users' reservation behaviour with four
purchasing algorithms; :mod:`repro.purchasing` implements all four. Each
algorithm maps a demand trace to a reservation schedule ``n_t`` — how
many new instances are reserved each hour — processing the trace online
(no lookahead), exactly like the users being imitated.

:class:`ActiveReservationTracker` is the shared bookkeeping: the number
of still-active reservations each hour, maintained with an expiry queue.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.workload.base import DemandTrace, TraceLike, as_trace


class ActiveReservationTracker:
    """Running count of active reservations while scanning a trace.

    ``advance_to(t)`` expires reservations whose period ended; ``reserve``
    registers new ones starting at the current hour.
    """

    def __init__(self, period: int) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self.period = period
        self._active = 0
        self._expiries: deque[tuple[int, int]] = deque()  # (expiry hour, count)

    @property
    def active(self) -> int:
        return self._active

    def advance_to(self, hour: int) -> None:
        """Expire everything whose period ends at or before ``hour``."""
        while self._expiries and self._expiries[0][0] <= hour:
            _, count = self._expiries.popleft()
            self._active -= count

    def reserve(self, hour: int, count: int) -> None:
        """Register ``count`` reservations starting at ``hour``."""
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count!r}")
        if count == 0:
            return
        self._active += count
        self._expiries.append((hour + self.period, count))


class PurchasingAlgorithm(abc.ABC):
    """Interface of the reservation-behaviour imitators."""

    #: Human-readable name used in experiment reports.
    name: str = "purchasing"

    @abc.abstractmethod
    def schedule(self, demands: DemandTrace, plan: PricingPlan) -> np.ndarray:
        """Produce the per-hour new-reservation counts ``n_t``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def validated_schedule(n: np.ndarray, horizon: int) -> np.ndarray:
    """Common output validation for all algorithms."""
    if n.shape != (horizon,):
        raise SimulationError(
            f"schedule must have shape ({horizon},), got {n.shape}"
        )
    if np.any(n < 0):
        raise SimulationError("schedule contains negative reservation counts")
    return n.astype(np.int64)


def demands_array(demands: TraceLike, plan: PricingPlan) -> "tuple[DemandTrace, np.ndarray]":
    """Coerce input demands and return (trace, int array)."""
    trace = as_trace(demands)
    if plan.period_hours <= 1:
        raise SimulationError("plan period must exceed one hour")
    return trace, trace.values
