"""A never-reserve baseline (not in the paper's imitator set).

Useful as a sanity anchor: with no reservations there is nothing to
sell, so every selling policy must produce identical costs.
"""

from __future__ import annotations

import numpy as np

from repro.pricing.plan import PricingPlan
from repro.purchasing.base import (
    PurchasingAlgorithm,
    demands_array,
    validated_schedule,
)


class OnDemandOnly(PurchasingAlgorithm):
    """Never reserve; serve everything on demand."""

    name = "OnDemand-Only"

    def schedule(self, demands, plan: PricingPlan) -> np.ndarray:
        trace, _ = demands_array(demands, plan)
        return validated_schedule(np.zeros(len(trace), dtype=np.int64), len(trace))
