"""The break-even online purchasing imitators (Section VI-A, 3rd & 4th).

The paper's third imitator is the online purchasing algorithm of Wang,
Li and Liang ("To Reserve or Not to Reserve: Optimal Online
Multi-Instance Acquisition in IaaS Clouds", ICAC 2013): serve demand on
demand until the on-demand spend a reservation would have absorbed
reaches the reservation's break-even point, then reserve. The fourth
imitator is "a variant of the online purchasing algorithm, the break-even
point β is smaller" — i.e. it reserves more eagerly.

Implementation: demand is decomposed into concurrency *levels* (the j-th
level is busy at hour t iff ``d_t ≥ j``, the standard reduction to
per-level ski-rental). Each uncovered level accumulates its on-demand
hours over a sliding window of one reservation period; once they reach
``threshold_fraction ×`` the break-even hours ``R / (p·(1 − α))``, one
instance is reserved for that level. ``threshold_fraction = 1`` is the
classic deterministic break-even rule; smaller fractions give the
aggressive variant.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.purchasing.base import (
    ActiveReservationTracker,
    PurchasingAlgorithm,
    demands_array,
    validated_schedule,
)


class OnlineBreakEven(PurchasingAlgorithm):
    """Deterministic break-even (ski-rental style) online purchasing.

    Parameters
    ----------
    threshold_fraction:
        Fraction of the break-even hours at which a level converts to a
        reservation. 1.0 reproduces Wang et al.'s deterministic rule;
        the paper's fourth imitator uses a smaller value.
    window_hours:
        Length of the sliding window in which on-demand hours are
        counted; defaults to one reservation period.
    """

    def __init__(
        self,
        threshold_fraction: float = 1.0,
        window_hours: "int | None" = None,
        name: str = "Online-BreakEven",
    ) -> None:
        if not 0.0 < threshold_fraction <= 1.0:
            raise SimulationError(
                f"threshold_fraction must lie in (0, 1], got {threshold_fraction!r}"
            )
        if window_hours is not None and window_hours <= 0:
            raise SimulationError(
                f"window_hours must be positive, got {window_hours!r}"
            )
        self.threshold_fraction = threshold_fraction
        self.window_hours = window_hours
        self.name = name

    def trigger_hours(self, plan: PricingPlan) -> int:
        """On-demand hours (within the window) that trigger a reservation."""
        hours = math.ceil(self.threshold_fraction * plan.break_even_hours)
        return max(hours, 1)

    def schedule(self, demands, plan: PricingPlan) -> np.ndarray:
        trace, values = demands_array(demands, plan)
        horizon = len(trace)
        window = self.window_hours or plan.period_hours
        trigger = self.trigger_hours(plan)
        tracker = ActiveReservationTracker(plan.period_hours)
        # Per concurrency level: recent on-demand hours (sliding window).
        histories: list[deque[int]] = []
        n = np.zeros(horizon, dtype=np.int64)
        for hour in range(horizon):
            tracker.advance_to(hour)
            demand = int(values[hour])
            covered = tracker.active
            if demand > len(histories):
                histories.extend(
                    deque() for _ in range(demand - len(histories))
                )
            new_reservations = 0
            for level in range(covered, demand):  # uncovered levels, 0-based
                history = histories[level]
                history.append(hour)
                while history and history[0] <= hour - window:
                    history.popleft()
                if len(history) >= trigger:
                    new_reservations += 1
                    history.clear()
            if new_reservations:
                n[hour] = new_reservations
                tracker.reserve(hour, new_reservations)
        return validated_schedule(n, horizon)


def wang_online_purchasing() -> OnlineBreakEven:
    """The paper's third imitator: Wang et al.'s break-even rule."""
    return OnlineBreakEven(threshold_fraction=1.0, name="Online-BreakEven")


def aggressive_online_purchasing(
    threshold_fraction: float = 0.5,
) -> OnlineBreakEven:
    """The paper's fourth imitator: the smaller-β variant."""
    if not 0.0 < threshold_fraction < 1.0:
        raise SimulationError(
            f"the aggressive variant needs threshold_fraction in (0, 1), "
            f"got {threshold_fraction!r}"
        )
    return OnlineBreakEven(
        threshold_fraction=threshold_fraction, name="Aggressive-BreakEven"
    )
