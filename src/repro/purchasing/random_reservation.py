"""The *Random-Reservation* imitator (Section VI-A, second behaviour).

"Takes a random number that is not greater than the demands' quantity as
the targeted number of active reserved instances at each time": each hour
a target in ``[0, d_t]`` is drawn and the pool is topped up toward it.
Imitates users who reserve ad hoc, without a policy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.purchasing.base import (
    ActiveReservationTracker,
    PurchasingAlgorithm,
    demands_array,
    validated_schedule,
)


class RandomReservation(PurchasingAlgorithm):
    """Top the reserved pool up to a random target ≤ demand each hour.

    ``reservation_probability`` throttles how often the user even looks
    at the gap (1.0 = every hour); the draw is deterministic in ``seed``.
    """

    def __init__(self, seed: int = 0, reservation_probability: float = 1.0) -> None:
        if not 0.0 < reservation_probability <= 1.0:
            raise SimulationError(
                f"reservation_probability must lie in (0, 1], "
                f"got {reservation_probability!r}"
            )
        self.seed = seed
        self.reservation_probability = reservation_probability
        self.name = "Random-Reservation"

    def schedule(self, demands, plan: PricingPlan) -> np.ndarray:
        trace, values = demands_array(demands, plan)
        horizon = len(trace)
        rng = np.random.default_rng(self.seed)
        tracker = ActiveReservationTracker(plan.period_hours)
        n = np.zeros(horizon, dtype=np.int64)
        for hour in range(horizon):
            tracker.advance_to(hour)
            demand = int(values[hour])
            if demand == 0:
                continue
            if rng.random() >= self.reservation_probability:
                continue
            target = int(rng.integers(0, demand + 1))
            gap = target - tracker.active
            if gap > 0:
                n[hour] = gap
                tracker.reserve(hour, gap)
        return validated_schedule(n, horizon)
