"""Randomized break-even purchasing (the ski-rental e/(e−1) algorithm).

Wang et al. (ICAC 2013) — the paper's reference [5] for online
purchasing — analyse both a deterministic break-even rule (implemented
in :mod:`repro.purchasing.online_breakeven`) and its randomized
improvement: instead of reserving exactly at the break-even point ``B``,
reserve when the accumulated on-demand hours reach ``z·B`` with ``z``
drawn from the classic ski-rental density ``f(z) = e^z/(e−1)`` on
[0, 1], which improves the expected competitive ratio from 2 to
e/(e−1) ≈ 1.58. Each concurrency level draws its own threshold.

Included for completeness of the purchasing substrate: the paper's
evaluation imitates users with the deterministic rule, and this is its
natural fifth behaviour.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.purchasing.base import (
    ActiveReservationTracker,
    PurchasingAlgorithm,
    demands_array,
    validated_schedule,
)

#: The randomized ski-rental competitive ratio, e/(e−1).
SKI_RENTAL_RATIO = math.e / (math.e - 1.0)


def draw_threshold_fraction(rng: np.random.Generator) -> float:
    """Draw z with density e^z/(e−1) on [0, 1] (inverse-CDF sampling).

    CDF: F(z) = (e^z − 1)/(e − 1), so z = ln(1 + u·(e − 1)).
    """
    uniform = float(rng.random())
    return math.log(1.0 + uniform * (math.e - 1.0))


class RandomizedBreakEven(PurchasingAlgorithm):
    """Reserve a level once its on-demand hours reach ``z·B``, z random.

    ``B`` is the plan's break-even hours; the sliding accumulation
    window defaults to one reservation period (as in the deterministic
    rule). Deterministic in ``seed``.
    """

    def __init__(self, seed: int = 0, window_hours: "int | None" = None) -> None:
        if window_hours is not None and window_hours <= 0:
            raise SimulationError(
                f"window_hours must be positive, got {window_hours!r}"
            )
        self.seed = seed
        self.window_hours = window_hours
        self.name = "Randomized-BreakEven"

    def schedule(self, demands, plan: PricingPlan) -> np.ndarray:
        """Produce ``n_t`` with per-level randomized thresholds."""
        trace, values = demands_array(demands, plan)
        horizon = len(trace)
        window = self.window_hours or plan.period_hours
        rng = np.random.default_rng(self.seed)
        tracker = ActiveReservationTracker(plan.period_hours)
        histories: list[deque[int]] = []
        thresholds: list[int] = []
        n = np.zeros(horizon, dtype=np.int64)

        def new_threshold() -> int:
            hours = math.ceil(
                draw_threshold_fraction(rng) * plan.break_even_hours
            )
            return max(hours, 1)

        for hour in range(horizon):
            tracker.advance_to(hour)
            demand = int(values[hour])
            while demand > len(histories):
                histories.append(deque())
                thresholds.append(new_threshold())
            new_reservations = 0
            for level in range(tracker.active, demand):
                history = histories[level]
                history.append(hour)
                while history and history[0] <= hour - window:
                    history.popleft()
                if len(history) >= thresholds[level]:
                    new_reservations += 1
                    history.clear()
                    thresholds[level] = new_threshold()  # fresh draw next time
            if new_reservations:
                n[hour] = new_reservations
                tracker.reserve(hour, new_reservations)
        return validated_schedule(n, horizon)
