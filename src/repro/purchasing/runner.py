"""Running the imitators and packaging their output.

:func:`imitate` applies one purchasing algorithm to one demand trace and
returns a :class:`ReservationSchedule` — the ``(d_t, n_t)`` pair the
selling simulators consume, plus provenance. :func:`paper_imitators`
returns the paper's four behaviours in its presentation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pricing.plan import PricingPlan
from repro.purchasing.all_reserved import AllReserved
from repro.purchasing.base import PurchasingAlgorithm, validated_schedule
from repro.purchasing.online_breakeven import (
    aggressive_online_purchasing,
    wang_online_purchasing,
)
from repro.purchasing.random_reservation import RandomReservation
from repro.workload.base import DemandTrace, TraceLike, as_trace


@dataclass(frozen=True)
class ReservationSchedule:
    """A demand trace together with the imitated reservation behaviour."""

    demands: DemandTrace
    reservations: np.ndarray
    plan: PricingPlan
    algorithm_name: str

    @property
    def horizon(self) -> int:
        return len(self.demands)

    @property
    def total_reserved(self) -> int:
        """Total number of reservations made over the horizon."""
        return int(self.reservations.sum())

    @property
    def total_upfront(self) -> float:
        """Upfront dollars committed by the imitated behaviour."""
        return self.total_reserved * self.plan.upfront

    def reservation_hours(self) -> np.ndarray:
        """Active reserved instances per hour (keep-world ``r_t``)."""
        active = np.zeros(self.horizon, dtype=np.int64)
        for hour in np.flatnonzero(self.reservations):
            end = min(int(hour) + self.plan.period_hours, self.horizon)
            active[hour:end] += self.reservations[hour]
        return active


def imitate(
    demands: TraceLike,
    plan: PricingPlan,
    algorithm: PurchasingAlgorithm,
) -> ReservationSchedule:
    """Apply one purchasing imitator to a demand trace."""
    trace = as_trace(demands)
    schedule = validated_schedule(
        np.asarray(algorithm.schedule(trace, plan)), len(trace)
    )
    return ReservationSchedule(
        demands=trace,
        reservations=schedule,
        plan=plan,
        algorithm_name=algorithm.name,
    )


def paper_imitators(seed: int = 0) -> list[PurchasingAlgorithm]:
    """The paper's four reservation-behaviour imitators (Section VI-A)."""
    return [
        AllReserved(),
        RandomReservation(seed=seed),
        wang_online_purchasing(),
        aggressive_online_purchasing(),
    ]
