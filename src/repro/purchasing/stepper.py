"""Hour-by-hour purchasing steppers (for coupled simulations).

The paper decouples purchasing from selling: the imitators produce the
whole reservation schedule ``n_t`` up front and the selling policies run
on it (Section VI-A). A real user's purchasing, however, *reacts* to the
pool the selling policy leaves behind — after selling an instance, new
demand may trigger a new reservation.

A :class:`PurchasingStepper` is the reactive form of a purchasing
algorithm: at each hour it is told the demand and the currently active
pool (as the coupled simulator sees it, sales included) and answers how
many new instances to reserve. Every imitator in this package exposes
one via :func:`stepper_for`; the batch ``schedule()`` methods are
equivalent to driving the stepper against a keep-everything pool.
"""

from __future__ import annotations

import abc
import math
from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.purchasing.all_reserved import AllReserved
from repro.purchasing.base import PurchasingAlgorithm
from repro.purchasing.ondemand_only import OnDemandOnly
from repro.purchasing.online_breakeven import OnlineBreakEven
from repro.purchasing.random_reservation import RandomReservation


class PurchasingStepper(abc.ABC):
    """Reactive purchasing: one decision per hour, given the live pool."""

    @abc.abstractmethod
    def step(self, hour: int, demand: int, active: int) -> int:
        """Number of new instances to reserve at ``hour``.

        ``active`` is the currently active reserved pool — including the
        effect of any sales the selling policy has made.
        """


class AllReservedStepper(PurchasingStepper):
    """Reserve the demand gap every hour."""

    def step(self, hour: int, demand: int, active: int) -> int:
        return max(0, demand - active)


class OnDemandOnlyStepper(PurchasingStepper):
    """Never reserve."""

    def step(self, hour: int, demand: int, active: int) -> int:
        return 0


class RandomReservationStepper(PurchasingStepper):
    """Top the pool up toward a random target ≤ demand."""

    def __init__(self, seed: int = 0, reservation_probability: float = 1.0) -> None:
        self._rng = np.random.default_rng(seed)
        self._probability = reservation_probability

    def step(self, hour: int, demand: int, active: int) -> int:
        if demand == 0:
            return 0
        if self._rng.random() >= self._probability:
            return 0
        target = int(self._rng.integers(0, demand + 1))
        return max(0, target - active)


class BreakEvenStepper(PurchasingStepper):
    """Per-level sliding-window break-even rule (Wang et al. style)."""

    def __init__(
        self, plan: PricingPlan, threshold_fraction: float = 1.0,
        window_hours: "int | None" = None,
    ) -> None:
        if not 0.0 < threshold_fraction <= 1.0:
            raise SimulationError(
                f"threshold_fraction must lie in (0, 1], got {threshold_fraction!r}"
            )
        self._window = window_hours or plan.period_hours
        self._trigger = max(
            math.ceil(threshold_fraction * plan.break_even_hours), 1
        )
        self._histories: list[deque[int]] = []

    def step(self, hour: int, demand: int, active: int) -> int:
        if demand > len(self._histories):
            self._histories.extend(
                deque() for _ in range(demand - len(self._histories))
            )
        new_reservations = 0
        for level in range(active, demand):
            history = self._histories[level]
            history.append(hour)
            while history and history[0] <= hour - self._window:
                history.popleft()
            if len(history) >= self._trigger:
                new_reservations += 1
                history.clear()
        return new_reservations


def stepper_for(
    algorithm: PurchasingAlgorithm, plan: PricingPlan
) -> PurchasingStepper:
    """The reactive form of one of this package's imitators."""
    if isinstance(algorithm, AllReserved):
        return AllReservedStepper()
    if isinstance(algorithm, OnDemandOnly):
        return OnDemandOnlyStepper()
    if isinstance(algorithm, RandomReservation):
        return RandomReservationStepper(
            seed=algorithm.seed,
            reservation_probability=algorithm.reservation_probability,
        )
    if isinstance(algorithm, OnlineBreakEven):
        return BreakEvenStepper(
            plan,
            threshold_fraction=algorithm.threshold_fraction,
            window_hours=algorithm.window_hours,
        )
    raise SimulationError(
        f"no stepper available for purchasing algorithm {algorithm!r}"
    )
