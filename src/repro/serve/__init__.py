"""Online sell/keep advisory service (the serving layer).

The batch engines under :mod:`repro.core` answer "should this instance
have been sold?" by replaying a whole trace. This package answers the
*online* form of the question — the one the paper's algorithms actually
pose — from a live feed of usage events:

* :mod:`repro.serve.state` — incremental decision state. A
  :class:`~repro.serve.state.StreamTracker` ingests one usage event per
  hour and reproduces the batch :func:`~repro.core.fastsim.run_fast`
  engine's sell decisions and costs exactly (the differential guarantee,
  property-tested in ``tests/serve/``); a
  :class:`~repro.serve.state.FleetState` applies batched events across
  many independently-tracked instances with vectorised numpy updates.
* :mod:`repro.serve.checkpoint` — format-versioned, atomic snapshot and
  restore of fleet state, so a restarted service never replays history.
* :mod:`repro.serve.metrics` — a tiny counter/gauge/histogram registry
  rendered in Prometheus text exposition format.
* :mod:`repro.serve.envelope` — the versioned JSON envelope
  (``{"schema": 1, ...}``) every serve endpoint speaks, with the single
  error shape ``{"schema": 1, "error": {"kind", "message"}}``.
* :mod:`repro.serve.server` — the stdlib HTTP JSON API
  (``POST /v1/events``, ``GET /v1/decisions``, ``GET /v1/costs``,
  ``GET /healthz``, ``GET /metrics``) with bounded-admission
  backpressure, started by ``python -m repro.serve``.
* :mod:`repro.serve.shard` — the sharded cluster: a router
  consistent-hashing instance ids onto N supervised ``repro.serve``
  worker subprocesses, with exactly-once fan-out, per-shard
  checkpoint-backed restart, and merged reads that are bit-identical
  to a single process (``python -m repro.serve --shards N``).

See ``docs/serving.md`` for the API schema and the state model.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.serve.envelope import SCHEMA_VERSION, envelope, error_envelope
from repro.serve.errors import (
    ApiError,
    CheckpointError,
    PayloadTooLargeError,
    RequestValidationError,
    SchemaSkewError,
    ServeError,
    ServeStateError,
    ServerBusyError,
    ShardError,
    ShardProtocolError,
    ShardUnavailableError,
    UnknownResourceError,
)
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.state import (
    STATE_VERSION,
    FleetDecision,
    FleetState,
    StreamDecision,
    StreamTracker,
    Verdict,
    breakdown_from_counts,
    run_stream,
)

__all__ = [
    "ApiError",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "Counter",
    "FleetDecision",
    "FleetState",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PayloadTooLargeError",
    "RequestValidationError",
    "SCHEMA_VERSION",
    "STATE_VERSION",
    "SchemaSkewError",
    "ServeError",
    "ServeStateError",
    "ServerBusyError",
    "ShardError",
    "ShardProtocolError",
    "ShardUnavailableError",
    "StreamDecision",
    "StreamTracker",
    "UnknownResourceError",
    "Verdict",
    "breakdown_from_counts",
    "envelope",
    "error_envelope",
    "load_checkpoint",
    "restore_checkpoint",
    "run_stream",
    "save_checkpoint",
]
