"""Online sell/keep advisory service (the serving layer).

The batch engines under :mod:`repro.core` answer "should this instance
have been sold?" by replaying a whole trace. This package answers the
*online* form of the question — the one the paper's algorithms actually
pose — from a live feed of usage events:

* :mod:`repro.serve.state` — incremental decision state. A
  :class:`~repro.serve.state.StreamTracker` ingests one usage event per
  hour and reproduces the batch :func:`~repro.core.fastsim.run_fast`
  engine's sell decisions and costs exactly (the differential guarantee,
  property-tested in ``tests/serve/``); a
  :class:`~repro.serve.state.FleetState` applies batched events across
  many independently-tracked instances with vectorised numpy updates.
* :mod:`repro.serve.checkpoint` — format-versioned, atomic snapshot and
  restore of fleet state, so a restarted service never replays history.
* :mod:`repro.serve.metrics` — a tiny counter/gauge/histogram registry
  rendered in Prometheus text exposition format.
* :mod:`repro.serve.envelope` — the versioned JSON envelope
  (``{"schema": 1, ...}``) every serve endpoint speaks, with the single
  error shape ``{"schema": 1, "error": {"kind", "message"}}``.
* :mod:`repro.serve.server` — the stdlib HTTP JSON API
  (``POST /v1/events``, ``GET /v1/decisions``, ``GET /v1/costs``,
  ``GET /healthz``, ``GET /metrics``) with bounded-admission
  backpressure, started by ``python -m repro.serve``.
* :mod:`repro.serve.shard` — the sharded cluster: a router
  consistent-hashing instance ids onto N supervised ``repro.serve``
  worker subprocesses, with exactly-once fan-out, per-shard
  WAL + snapshot-backed restart, and merged reads that are
  bit-identical to a single process (``python -m repro.serve
  --shards N``).
* :mod:`repro.serve.transport` — the cluster's binary hop: a compact
  stdlib codec, length-prefixed CRC-checked frames, one selector-loop
  hub multiplexing persistent pipelined worker connections, and the
  worker-side frame server.
* :mod:`repro.serve.wal` — the per-worker write-ahead log: fsync'd
  append per applied batch, snapshot compaction, torn-tail healing,
  and version-gated replay.

See ``docs/serving.md`` for the API schema and the state model.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.serve.envelope import SCHEMA_VERSION, envelope, error_envelope
from repro.serve.errors import (
    ApiError,
    CheckpointError,
    CodecError,
    FrameError,
    FrameTooLargeError,
    PayloadTooLargeError,
    RequestValidationError,
    SchemaSkewError,
    ServeError,
    ServeStateError,
    ServerBusyError,
    ShardError,
    ShardProtocolError,
    ShardUnavailableError,
    TransportClosedError,
    TransportError,
    UnknownResourceError,
    WalCorruptionError,
    WalError,
    WalTruncatedError,
    WalVersionError,
)
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.transport import (
    WIRE_VERSION,
    BinaryServer,
    FrameDecoder,
    TransportHub,
    WorkerChannel,
    dumpb,
    encode_frame,
    loadb,
)
from repro.serve.wal import (
    WAL_FORMAT,
    Wal,
    WalEntry,
    WalRecovery,
    read_wal,
)
from repro.serve.state import (
    STATE_VERSION,
    FleetDecision,
    FleetState,
    StreamDecision,
    StreamTracker,
    Verdict,
    breakdown_from_counts,
    run_stream,
)

__all__ = [
    "ApiError",
    "BinaryServer",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "CodecError",
    "Counter",
    "FleetDecision",
    "FleetState",
    "FrameDecoder",
    "FrameError",
    "FrameTooLargeError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PayloadTooLargeError",
    "RequestValidationError",
    "SCHEMA_VERSION",
    "STATE_VERSION",
    "SchemaSkewError",
    "ServeError",
    "ServeStateError",
    "ServerBusyError",
    "ShardError",
    "ShardProtocolError",
    "ShardUnavailableError",
    "StreamDecision",
    "StreamTracker",
    "TransportClosedError",
    "TransportError",
    "TransportHub",
    "UnknownResourceError",
    "Verdict",
    "WAL_FORMAT",
    "WIRE_VERSION",
    "Wal",
    "WalCorruptionError",
    "WalEntry",
    "WalError",
    "WalRecovery",
    "WalTruncatedError",
    "WalVersionError",
    "WorkerChannel",
    "breakdown_from_counts",
    "dumpb",
    "encode_frame",
    "envelope",
    "error_envelope",
    "load_checkpoint",
    "loadb",
    "read_wal",
    "restore_checkpoint",
    "run_stream",
    "save_checkpoint",
]
