"""``python -m repro.serve`` — start the advisory HTTP service."""

from repro.serve.server import main

if __name__ == "__main__":
    raise SystemExit(main())
