"""Format-versioned, atomic checkpointing of fleet state.

A checkpoint is one JSON document holding everything needed to resume
the advisory service without replaying history: the pricing model, the
decision fractions, and every instance's (age, working hours, per-φ
verdict) row. Two version fields gate a restore:

* ``format`` — the payload's shape (this module's concern);
* ``state_version`` — the decision semantics of
  :mod:`repro.serve.state`; a checkpoint written by an older state
  machine is refused rather than silently reinterpreted.

Writes follow the same atomic pattern as
:class:`repro.parallel.cache.ResultCache`: serialise to a temp file in
the target directory, then ``os.replace`` — a crash mid-write leaves the
previous checkpoint intact, and concurrent readers never observe a torn
file. Unlike the result cache, a bad checkpoint is *not* a soft miss:
restoring from a corrupt or incompatible file raises a
:class:`~repro.serve.errors.CheckpointError` so the operator decides,
instead of the service silently starting empty.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.account import CostModel, HourlyFeeMode
from repro.core.clearing import ClearingModel
from repro.errors import SimulationError
from repro.pricing.plan import PricingPlan
from repro.serve.errors import CheckpointError, ServeStateError
from repro.serve.state import STATE_VERSION, FleetState

#: Version of the checkpoint payload shape; bump on structural changes.
#: Format 2 adds per-instance ``working_in_term`` (exact cost
#: accounting) and an opaque ``extra`` dict (shard ingest bookkeeping).
#: Format 3 adds the fleet's clearing model and per-spot listing state
#: (``clear_at``/``fate``); format-2 files still restore (no clearing,
#: no open listings).
#: Format 4 adds the fleet's canonical policy specs plus per-instance
#: randomized draws (``drawn``) and cancellation re-buy state
#: (``rebuys``); formats 2 and 3 still restore (no extra policies).
CHECKPOINT_FORMAT = 4

#: Older payload shapes this build still reads. Formats 2 and 3 are
#: strict subsets of format 4 — the listing fields default to "no
#: listing" and the policy fields to "no extra policies".
_COMPATIBLE_FORMATS = (2, 3, CHECKPOINT_FORMAT)


@dataclass
class Checkpoint:
    """Everything a restored checkpoint holds."""

    fleet: FleetState
    events_ingested: int = 0
    #: Opaque JSON-ready bookkeeping persisted alongside the fleet —
    #: the shard worker keeps its ingest dedupe state (last applied
    #: ``seq`` and the response it produced) here so a retried batch
    #: replays the identical answer after a crash.
    extra: "Dict[str, object]" = field(default_factory=dict)


def fleet_to_payload(
    fleet: FleetState,
    events_ingested: int = 0,
    extra: "Optional[Dict[str, object]]" = None,
) -> dict:
    """JSON-ready checkpoint payload of one fleet."""
    plan = fleet.model.plan
    return {
        "format": CHECKPOINT_FORMAT,
        "state_version": STATE_VERSION,
        "model": {
            "plan": {
                "on_demand_hourly": plan.on_demand_hourly,
                "upfront": plan.upfront,
                "alpha": plan.alpha,
                "period_hours": plan.period_hours,
                "name": plan.name,
            },
            "selling_discount": fleet.model.selling_discount,
            "marketplace_fee": fleet.model.marketplace_fee,
            "fee_mode": fleet.model.fee_mode.value,
        },
        "threshold_scale": fleet.threshold_scale,
        "phis": list(fleet.phis),
        # Canonical spec strings, never pickles: the checkpoint carries
        # the construction recipe (seed, spots, penalty, ...) so a
        # restored fleet re-draws and re-watches identically.
        "policies": [spec.canonical() for spec in fleet.policy_specs],
        "clearing": (
            fleet.clearing.to_payload() if fleet.clearing is not None else None
        ),
        "events_ingested": int(events_ingested),
        "extra": dict(extra) if extra else {},
        "instances": fleet.snapshot_instances(),
    }


def checkpoint_from_payload(payload: dict) -> Checkpoint:
    """Rebuild a :class:`Checkpoint` from a checkpoint payload."""
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint payload is not a JSON object")
    fmt = payload.get("format")
    if fmt not in _COMPATIBLE_FORMATS:
        raise CheckpointError(
            f"checkpoint format {fmt!r} is not supported "
            f"(this build reads formats {_COMPATIBLE_FORMATS})"
        )
    state_version = payload.get("state_version")
    if state_version != STATE_VERSION:
        raise CheckpointError(
            f"checkpoint was written by state machine v{state_version!r}; "
            f"this build is v{STATE_VERSION} — decisions could differ, "
            "refusing to restore"
        )
    try:
        model_spec = payload["model"]
        plan = PricingPlan(**model_spec["plan"])
        model = CostModel(
            plan=plan,
            selling_discount=float(model_spec["selling_discount"]),
            marketplace_fee=float(model_spec["marketplace_fee"]),
            fee_mode=HourlyFeeMode(model_spec["fee_mode"]),
        )
        clearing_spec = payload.get("clearing")
        clearing = (
            ClearingModel.from_payload(clearing_spec)
            if clearing_spec is not None
            else None
        )
        policies = payload.get("policies", ())
        if not isinstance(policies, (list, tuple)):
            raise CheckpointError(
                f"checkpoint 'policies' must be an array of spec strings, "
                f"got {type(policies).__name__}"
            )
        fleet = FleetState(
            model,
            phis=tuple(float(phi) for phi in payload["phis"]),
            threshold_scale=float(payload["threshold_scale"]),
            clearing=clearing,
            policies=tuple(str(spec) for spec in policies),
        )
        fleet.restore_instances(payload["instances"])
        events_ingested = int(payload.get("events_ingested", 0))
        extra = payload.get("extra", {})
        if not isinstance(extra, dict):
            raise CheckpointError(
                f"checkpoint 'extra' must be an object, got {type(extra).__name__}"
            )
    except CheckpointError:
        raise
    except (
        KeyError,
        TypeError,
        ValueError,
        ServeStateError,
        SimulationError,
    ) as error:
        raise CheckpointError(f"malformed checkpoint payload: {error}") from error
    return Checkpoint(fleet=fleet, events_ingested=events_ingested, extra=extra)


def fleet_from_payload(payload: dict) -> "Tuple[FleetState, int]":
    """Rebuild ``(fleet, events_ingested)`` from a checkpoint payload.

    Compatibility wrapper over :func:`checkpoint_from_payload` for
    callers that predate :class:`Checkpoint` (drops ``extra``).
    """
    checkpoint = checkpoint_from_payload(payload)
    return checkpoint.fleet, checkpoint.events_ingested


def save_checkpoint(
    path: "str | Path",
    fleet: FleetState,
    events_ingested: int = 0,
    extra: "Optional[Dict[str, object]]" = None,
    fsync: bool = False,
) -> Path:
    """Atomically write ``fleet`` to ``path``; returns the path.

    With ``fsync=True`` the temp file is synced before the rename (and
    the directory entry after it, best-effort) — required by the WAL's
    compaction ordering, where the snapshot must be durable *before*
    the log tail covering it is dropped.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    encoded = json.dumps(fleet_to_payload(fleet, events_ingested, extra))
    fd, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}-", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(encoded)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, target)
        if fsync:
            _fsync_directory(target.parent)
    except OSError:
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise
    return target


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # repro-lint: disable=REP007 - platform without dir fsync
        pass
    finally:
        os.close(dir_fd)


def restore_checkpoint(path: "str | Path") -> Checkpoint:
    """Restore a full :class:`Checkpoint` from ``path``.

    Raises :class:`~repro.serve.errors.CheckpointError` when the file is
    missing, unparseable, or written by an incompatible version.
    """
    target = Path(path)
    try:
        with target.open(encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as error:
        raise CheckpointError(f"no checkpoint at {target}") from error
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"checkpoint {target} is unreadable or corrupt: {error}"
        ) from error
    return checkpoint_from_payload(payload)


def load_checkpoint(path: "str | Path") -> "Tuple[FleetState, int]":
    """Restore ``(fleet, events_ingested)`` from ``path``.

    Compatibility wrapper over :func:`restore_checkpoint` (drops the
    ``extra`` bookkeeping).
    """
    checkpoint = restore_checkpoint(path)
    return checkpoint.fleet, checkpoint.events_ingested
