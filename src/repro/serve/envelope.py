"""The versioned JSON envelope every serve endpoint speaks.

One wire contract for the whole serving layer — the single-process
server, the shard workers, and the shard router all exchange exactly
these shapes:

* success: ``{"schema": 2, ...payload...}``
* error:   ``{"schema": 2, "error": {"kind": "<TypeName>", "message": "..."}}``

``schema`` is the wire-format version. The router stamps it on every
request it forwards and refuses any response whose version differs
(:func:`require_schema`): a mixed-version cluster fails loudly at the
first RPC instead of silently mis-merging decisions.

Schema history
--------------
* **1** — the original envelope.
* **2** — decision rows and instance rows may carry policy provenance
  (``policy_spec``, ``drawn_phi``, ``rebuys``), and ``/v1/costs`` may
  carry a ``policies`` section (cancellation re-buy counts).

External clients negotiate *down*: a request carrying an
``X-Repro-Schema: 1`` header (or an ingest body with ``"schema": 1``)
gets schema-1 responses with the schema-2-only keys stripped
(:func:`downgrade_payload`) — old clients keep working against a new
server. Router↔shard traffic never negotiates: both ends of a cluster
must speak :data:`SCHEMA_VERSION` exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.serve.errors import SchemaSkewError

#: Version of the serve wire format. Bump on any change to response or
#: request shapes; router and shards refuse to interoperate across
#: versions (external clients may negotiate down, see SUPPORTED_SCHEMAS).
SCHEMA_VERSION = 2

#: Schemas this build can *answer in*, newest first. Clients request one
#: via the ``X-Repro-Schema`` header; anything else is a skew error.
SUPPORTED_SCHEMAS = (1, SCHEMA_VERSION)

#: Response keys that exist only in schema 2; stripped (recursively)
#: when answering a schema-1 client.
_SCHEMA2_KEYS = frozenset({"policy_spec", "drawn_phi", "rebuys", "policies"})


def envelope(
    payload: "Dict[str, object]", schema: int = SCHEMA_VERSION
) -> "Dict[str, object]":
    """Wrap a success payload in the versioned envelope.

    ``schema`` is the version the *client* negotiated; payload content
    must already match it (see :func:`downgrade_payload`).
    """
    wrapped: "Dict[str, object]" = {"schema": schema}
    wrapped.update(payload)
    return wrapped


def error_envelope(
    kind: str, message: str, schema: int = SCHEMA_VERSION
) -> "Dict[str, object]":
    """The one error shape every serve endpoint returns."""
    return {
        "schema": schema,
        "error": {"kind": kind, "message": message},
    }


def negotiate_schema(header: "Optional[str]") -> int:
    """Resolve a client's ``X-Repro-Schema`` request header.

    No header means the current version. A header naming a supported
    version selects it; anything else raises
    :class:`~repro.serve.errors.SchemaSkewError` (the client asked for a
    contract this build cannot honour — failing is safer than answering
    in a shape it does not expect).
    """
    if header is None or not header.strip():
        return SCHEMA_VERSION
    try:
        requested = int(header.strip())
    except ValueError as error:
        raise SchemaSkewError(
            f"X-Repro-Schema must be an integer, got {header!r}"
        ) from error
    if requested not in SUPPORTED_SCHEMAS:
        raise SchemaSkewError(
            f"requested envelope schema {requested} is not supported "
            f"(this build answers schemas {SUPPORTED_SCHEMAS})"
        )
    return requested


def downgrade_payload(payload: object, schema: int) -> object:
    """Return ``payload`` shaped for ``schema``.

    Schema 2 returns the payload untouched. Schema 1 returns a deep
    copy with every schema-2-only key removed, so pre-provenance
    clients see exactly the shapes they were written against.
    """
    if schema >= SCHEMA_VERSION:
        return payload
    if isinstance(payload, dict):
        return {
            key: downgrade_payload(value, schema)
            for key, value in payload.items()
            if key not in _SCHEMA2_KEYS
        }
    if isinstance(payload, list):
        stripped: "List[object]" = [
            downgrade_payload(item, schema) for item in payload
        ]
        return stripped
    return payload


def require_schema(body: object, source: str = "peer") -> "Dict[str, object]":
    """Validate that ``body`` is an envelope of this build's version.

    Returns the body (typed as a dict) so callers can chain. Raises
    :class:`~repro.serve.errors.SchemaSkewError` on a missing or
    mismatched ``schema`` field — version skew between router and shard
    is a deployment error and must never be papered over.
    """
    if not isinstance(body, dict):
        raise SchemaSkewError(
            f"{source} sent a non-object body ({type(body).__name__}); "
            "expected a schema envelope"
        )
    version = body.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaSkewError(
            f"{source} speaks envelope schema {version!r}; this build "
            f"speaks {SCHEMA_VERSION} — refusing to interoperate across "
            "versions"
        )
    return body


def error_kind(body: "Dict[str, object]") -> "Optional[str]":
    """The ``error.kind`` of an error envelope, or ``None`` on success."""
    error = body.get("error")
    if isinstance(error, dict):
        kind = error.get("kind")
        return str(kind) if kind is not None else None
    return None
