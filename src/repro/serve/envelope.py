"""The versioned JSON envelope every serve endpoint speaks.

One wire contract for the whole serving layer — the single-process
server, the shard workers, and the shard router all exchange exactly
these shapes:

* success: ``{"schema": 1, ...payload...}``
* error:   ``{"schema": 1, "error": {"kind": "<TypeName>", "message": "..."}}``

``schema`` is the wire-format version. The router stamps it on every
request it forwards and refuses any response whose version differs
(:func:`require_schema`): a mixed-version cluster fails loudly at the
first RPC instead of silently mis-merging decisions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.serve.errors import SchemaSkewError

#: Version of the serve wire format. Bump on any change to response or
#: request shapes; router and shards refuse to interoperate across
#: versions.
SCHEMA_VERSION = 1


def envelope(payload: "Dict[str, object]") -> "Dict[str, object]":
    """Wrap a success payload in the versioned envelope."""
    wrapped: "Dict[str, object]" = {"schema": SCHEMA_VERSION}
    wrapped.update(payload)
    return wrapped


def error_envelope(kind: str, message: str) -> "Dict[str, object]":
    """The one error shape every serve endpoint returns."""
    return {
        "schema": SCHEMA_VERSION,
        "error": {"kind": kind, "message": message},
    }


def require_schema(body: object, source: str = "peer") -> "Dict[str, object]":
    """Validate that ``body`` is an envelope of this build's version.

    Returns the body (typed as a dict) so callers can chain. Raises
    :class:`~repro.serve.errors.SchemaSkewError` on a missing or
    mismatched ``schema`` field — version skew between router and shard
    is a deployment error and must never be papered over.
    """
    if not isinstance(body, dict):
        raise SchemaSkewError(
            f"{source} sent a non-object body ({type(body).__name__}); "
            "expected a schema envelope"
        )
    version = body.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaSkewError(
            f"{source} speaks envelope schema {version!r}; this build "
            f"speaks {SCHEMA_VERSION} — refusing to interoperate across "
            "versions"
        )
    return body


def error_kind(body: "Dict[str, object]") -> "Optional[str]":
    """The ``error.kind`` of an error envelope, or ``None`` on success."""
    error = body.get("error")
    if isinstance(error, dict):
        kind = error.get("kind")
        return str(kind) if kind is not None else None
    return None
