"""Exception hierarchy of the serving layer.

Everything derives from :class:`ServeError` (itself a
:class:`~repro.errors.ReproError`). The HTTP server maps
:class:`ApiError` subclasses to status codes mechanically — raising the
right type anywhere inside request handling produces the right response,
so validation code never touches the transport.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for all serving-layer errors."""


class ServeStateError(ServeError):
    """Invalid tracker input or configuration (negative demand, bad phi)."""


class CheckpointError(ServeError):
    """A checkpoint file is missing, unreadable, or version-incompatible."""


class ApiError(ServeError):
    """A request error with an HTTP status; subclasses pick the code."""

    status: int = 400


class RequestValidationError(ApiError):
    """The request body or query string failed validation."""

    status = 400


class UnknownResourceError(ApiError):
    """The requested path or instance does not exist."""

    status = 404


class PayloadTooLargeError(ApiError):
    """The event batch exceeds the configured per-request limit."""

    status = 413


class ServerBusyError(ApiError):
    """Admission control rejected the request; retry later (backpressure)."""

    status = 429


class SchemaSkewError(ApiError):
    """Request or response carries a different envelope schema version.

    Version skew between router and shards is a deployment error: the
    cluster refuses to mix wire formats rather than mis-merge decisions.
    """

    status = 400


class ShardError(ApiError):
    """Base class for shard-cluster (router/supervisor) failures.

    These are :class:`ApiError` subclasses so the router's HTTP handler
    maps them to gateway-style status codes mechanically.
    """

    status = 502


class ShardUnavailableError(ShardError):
    """A shard could not be reached within the retry budget."""

    status = 503


class ShardProtocolError(ShardError):
    """A shard answered outside the envelope contract (bad schema/shape)."""

    status = 502


class TransportError(ShardError):
    """Base class for binary-transport failures (framing, codec, link)."""

    status = 502


class FrameError(TransportError):
    """A frame failed validation: bad magic, version skew, CRC mismatch,
    or an unknown frame type — the byte stream can no longer be trusted
    and the connection is severed."""

    status = 502


class FrameTooLargeError(FrameError):
    """A frame header declares a payload beyond the configured cap."""

    status = 502


class CodecError(TransportError):
    """A binary payload could not be encoded or decoded (unsupported
    type, truncated value, trailing bytes, depth bomb)."""

    status = 502


class TransportClosedError(ShardUnavailableError, TransportError):
    """The persistent connection to a worker is gone (EOF, reset, or a
    reply deadline passed); retryable — the router reconnects."""

    status = 503


class WalError(ServeError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """The WAL header or an interior record is unreadable garbage."""


class WalTruncatedError(WalCorruptionError):
    """The WAL tail is torn (partial record or CRC-failed last entries).

    Raised by strict recovery; non-strict recovery truncates the tail,
    reports it, and lets the router's seq retry re-apply the lost batch.
    """


class WalVersionError(WalError):
    """The WAL was written by a different format or state-machine
    version; replaying it could produce different decisions, so the
    worker refuses to load it."""
