"""Counter/gauge/histogram registry in Prometheus text format.

Stdlib-only: the serving layer must not grow third-party dependencies,
so this is the minimal subset of the Prometheus exposition format
(version 0.0.4) the service needs — ``# HELP``/``# TYPE`` headers,
optional labels, and cumulative histogram buckets with ``_sum`` and
``_count`` series. One :class:`MetricsRegistry` lock serialises updates;
the HTTP server's handler threads all write through it.

Durations are measured with ``time.perf_counter`` (monotonic): metrics
must never couple to the wall clock (REP003's rationale applies to the
serving layer too).
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.serve.errors import ServeStateError

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in seconds (request handling is sub-second).
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Buckets for the binary transport's per-hop latency, in seconds. The
#: persistent-connection hop targets tens of microseconds, far below
#: :data:`DEFAULT_BUCKETS`' floor, so these start at 50µs; the top end
#: still covers a worker restart riding through a retry.
TRANSPORT_BUCKETS = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    1.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


class _Metric:
    """Shared bookkeeping: name/help validation and label handling."""

    type_name = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        if not _NAME_PATTERN.match(name):
            raise ServeStateError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_PATTERN.match(label):
                raise ServeStateError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock

    def _label_key(self, labels: "Optional[Mapping[str, str]]") -> _LabelKey:
        given = dict(labels) if labels else {}
        if set(given) != set(self.labelnames):
            raise ServeStateError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {sorted(given)!r}"
            )
        return tuple((name, str(given[name])) for name in self.labelnames)

    def render(self) -> "List[str]":
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically-increasing sum (events, requests, decisions)."""

    type_name = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: "Dict[_LabelKey, float]" = {}

    def inc(
        self, amount: float = 1.0, labels: "Optional[Mapping[str, str]]" = None
    ) -> None:
        if amount < 0:
            raise ServeStateError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: "Optional[Mapping[str, str]]" = None) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> "List[str]":
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that goes up and down (queue depth, tracked instances)."""

    type_name = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: "Dict[_LabelKey, float]" = {}

    def set(
        self, value: float, labels: "Optional[Mapping[str, str]]" = None
    ) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(
        self, amount: float = 1.0, labels: "Optional[Mapping[str, str]]" = None
    ) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(
        self, amount: float = 1.0, labels: "Optional[Mapping[str, str]]" = None
    ) -> None:
        self.inc(-amount, labels)

    def value(self, labels: "Optional[Mapping[str, str]]" = None) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> "List[str]":
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ]


class Histogram(_Metric):
    """Cumulative-bucket distribution (ingest latency)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ServeStateError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ServeStateError(f"duplicate histogram buckets in {buckets!r}")
        self.buckets = bounds
        # per label set: [per-bucket counts..., +Inf count], sum
        self._counts: "Dict[_LabelKey, List[int]]" = {}
        self._sums: "Dict[_LabelKey, float]" = {}

    def observe(
        self, value: float, labels: "Optional[Mapping[str, str]]" = None
    ) -> None:
        key = self._label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[position] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)

    @contextmanager
    def time(self, labels: "Optional[Mapping[str, str]]" = None) -> Iterator[None]:
        """Observe the duration of the ``with`` body (perf_counter)."""
        began = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - began, labels)

    def count(self, labels: "Optional[Mapping[str, str]]" = None) -> int:
        key = self._label_key(labels)
        with self._lock:
            return sum(self._counts.get(key, []))

    def render(self) -> "List[str]":
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
        if not items and not self.labelnames:
            items = [((), [0] * (len(self.buckets) + 1))]
        lines: "List[str]" = []
        for key, counts in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                bucket_key = key + (("le", repr(float(bound))),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(bucket_key)} {cumulative}"
                )
            cumulative += counts[-1]
            inf_key = key + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_render_labels(inf_key)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(sums.get(key, 0.0))}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {cumulative}")
        return lines


class MetricsRegistry:
    """Creates metrics and renders them all as one exposition document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _add(self, metric: _Metric) -> None:
        with self._lock:
            if metric.name in self._metrics:
                raise ServeStateError(
                    f"metric {metric.name!r} is already registered"
                )
            self._metrics[metric.name] = metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = Counter(name, help_text, labelnames, self._lock)
        self._add(metric)
        return metric

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = Gauge(name, help_text, labelnames, self._lock)
        self._add(metric)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = Histogram(name, help_text, labelnames, self._lock, buckets)
        self._add(metric)
        return metric

    def render(self) -> str:
        """The full ``/metrics`` document (text format 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        blocks: "List[str]" = []
        for metric in metrics:
            blocks.append(f"# HELP {metric.name} {_escape_help(metric.help_text)}")
            blocks.append(f"# TYPE {metric.name} {metric.type_name}")
            blocks.extend(metric.render())
        return "\n".join(blocks) + "\n"
