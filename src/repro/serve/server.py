"""The advisory HTTP service: stdlib JSON API over a fleet.

Endpoints
---------
* ``POST /v1/events`` — batch ingest. Body:
  ``{"events": [{"instance": "i-1", "busy": true}, ...]}``; an event may
  alternatively carry ``"demand": <int>=0>`` (busy iff demand ≥ 1). Each
  event advances its instance by one hour. Responds with the count
  accepted and any verdicts that settled.
* ``GET /v1/decisions[?instance=ID]`` — current advisory state.
* ``GET /v1/costs`` — per-φ Eq. (1) cost counts and priced breakdowns.
* ``GET /healthz`` — liveness plus basic gauges.
* ``GET /metrics`` — Prometheus text exposition.

Every JSON response is wrapped in the versioned envelope of
:mod:`repro.serve.envelope` (``{"schema": 1, ...}``; errors are
``{"schema": 1, "error": {"kind", "message"}}``). An ingest body may
carry ``"schema"`` (rejected on version skew) and a monotonic ``"seq"``
(the shard router's exactly-once handle: replaying the last applied
``seq`` returns the stored response verbatim instead of re-applying the
batch).

Request validation raises the typed errors of
:mod:`repro.serve.errors`; the handler maps them to status codes.
Backpressure is bounded admission: at most ``max_inflight`` ingest
requests execute concurrently, the rest are rejected with 429 instead of
queueing unboundedly (clients retry; memory stays flat). One lock
serialises fleet mutation, so decisions are ordered even under the
threading server.

``python -m repro.serve`` starts the server (see :func:`main`); with
``--checkpoint`` it restores state on boot and snapshots every
``--checkpoint-interval`` ingested events plus once on shutdown.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro._compat import UNSET as _UNSET
from repro._compat import Unset as _Unset
from repro._compat import absorb_positional_tail as _absorb_positional_tail
from repro._version import __version__
from repro.core.account import CostModel
from repro.core.breakeven import PAPER_DECISION_FRACTIONS
from repro.core.clearing import LIQUIDITY_REGIMES, ClearingModel
from repro.core.policyspec import parse_policies
from repro.errors import PolicyError
from repro.pricing.catalog import paper_experiment_plan
from repro.serve.checkpoint import restore_checkpoint, save_checkpoint
from repro.serve.envelope import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    downgrade_payload,
    envelope,
    error_envelope,
    negotiate_schema,
)
from repro.serve.errors import (
    ApiError,
    CheckpointError,
    PayloadTooLargeError,
    RequestValidationError,
    SchemaSkewError,
    ServeError,
    ServerBusyError,
    UnknownResourceError,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.state import (
    FleetDecision,
    FleetState,
    ServeStateError,
    breakdown_from_counts,
    rebuy_outlay_from_counts,
)

#: Default cap on events per ingest request (oversize batches get 413).
DEFAULT_MAX_BATCH = 10_000

#: Default cap on concurrently-executing ingest requests (excess: 429).
DEFAULT_MAX_INFLIGHT = 8

#: Histogram buckets (hours) for how long listings sit before clearing.
#: The metrics default buckets are sub-second request latencies; listing
#: delays run from same-hour clears to multi-week thin-market waits.
CLEARING_DELAY_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 24.0, 48.0, 96.0, 168.0, 336.0, 672.0,
)


def _decision_to_json(decision: FleetDecision) -> "Dict[str, object]":
    body: "Dict[str, object]" = {
        "instance": decision.instance,
        "phi": decision.phi,
        "verdict": decision.verdict.value,
        "working_hours": decision.working_hours,
        "age_hours": decision.age,
    }
    if decision.listing is not None:
        body["listing"] = decision.listing
        body["waited_hours"] = decision.waited_hours
    # Schema-2 provenance: which configured policy this verdict belongs
    # to, and (randomized) the spot the instance's draw landed on.
    if decision.policy_spec is not None:
        body["policy_spec"] = decision.policy_spec
    if decision.drawn_phi is not None:
        body["drawn_phi"] = decision.drawn_phi
    return body


class AdvisoryApp:
    """Transport-free application object behind the HTTP handler.

    Owns the fleet, the metrics registry, admission control, and
    checkpointing policy. Tests drive it directly; the handler only
    parses HTTP and calls these methods.
    """

    def __init__(
        self,
        fleet: FleetState,
        registry: "Optional[MetricsRegistry]" = None,
        checkpoint_path: "Optional[str | Path]" = None,
        checkpoint_interval: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        events_ingested: int = 0,
        last_seq: "Optional[int]" = None,
        last_response: "Optional[Dict[str, object]]" = None,
        checkpoint_fsync: bool = False,
    ) -> None:
        if max_batch <= 0:
            raise ServeStateError(f"max_batch must be positive, got {max_batch!r}")
        if max_inflight < 0:
            raise ServeStateError(
                f"max_inflight must be >= 0, got {max_inflight!r}"
            )
        self.fleet = fleet
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_fsync = checkpoint_fsync
        self.registry = registry if registry is not None else MetricsRegistry()
        self._fleet_lock = threading.Lock()
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._started = time.perf_counter()
        self._events_ingested = int(events_ingested)
        self._events_since_checkpoint = 0
        # Exactly-once ingest: the last applied batch seq and the
        # response it produced, persisted in the checkpoint's `extra`
        # so a retried batch replays the identical answer post-crash.
        self._last_seq = int(last_seq) if last_seq is not None else None
        self._last_response = dict(last_response) if last_response else None

        self.events_total = self.registry.counter(
            "repro_serve_events_total", "Usage events ingested since start."
        )
        self.decisions_total = self.registry.counter(
            "repro_serve_decisions_total",
            "Advisory verdicts settled, by verdict and decision fraction.",
            labelnames=("verdict", "phi"),
        )
        self.ingest_seconds = self.registry.histogram(
            "repro_serve_ingest_seconds",
            "Wall time spent applying one ingest batch.",
        )
        self.queue_depth = self.registry.gauge(
            "repro_serve_queue_depth",
            "Ingest requests currently admitted (bounded by max_inflight).",
        )
        self.instances_gauge = self.registry.gauge(
            "repro_serve_instances", "Instances currently tracked."
        )
        self.responses_total = self.registry.counter(
            "repro_serve_http_responses_total",
            "HTTP responses sent, by status code.",
            labelnames=("code",),
        )
        self.checkpoints_total = self.registry.counter(
            "repro_serve_checkpoints_total", "Checkpoints written."
        )
        self.listings_open_total = self.registry.counter(
            "repro_serve_listings_open_total",
            "Marketplace listings opened by SELL decisions, by phi.",
            labelnames=("phi",),
        )
        self.listings_cleared_total = self.registry.counter(
            "repro_serve_listings_cleared_total",
            "Listings that found a buyer and cleared, by phi.",
            labelnames=("phi",),
        )
        self.listings_expired_total = self.registry.counter(
            "repro_serve_listings_expired_total",
            "Listings whose window closed unsold (reverted to KEEP), by phi.",
            labelnames=("phi",),
        )
        self.clearing_delay_hours = self.registry.histogram(
            "repro_serve_clearing_delay_hours",
            "Hours a cleared listing sat on the book before selling.",
            buckets=CLEARING_DELAY_BUCKETS,
        )
        self.rebuys_gauge = self.registry.gauge(
            "repro_serve_rebuys",
            "Cancellation re-buys booked, by canonical policy spec.",
            labelnames=("policy",),
        )

    # ------------------------------------------------------------------
    # Admission control (backpressure)
    # ------------------------------------------------------------------

    def admit(self) -> None:
        """Claim one ingest slot or raise :class:`ServerBusyError`."""
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                raise ServerBusyError(
                    f"ingest queue full ({self._inflight} in flight, "
                    f"limit {self.max_inflight}); retry later"
                )
            self._inflight += 1
            self.queue_depth.set(self._inflight)

    def release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self.queue_depth.set(self._inflight)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    @staticmethod
    def _validate_events(payload: object) -> "Tuple[List[str], List[bool]]":
        if not isinstance(payload, dict):
            raise RequestValidationError("request body must be a JSON object")
        events = payload.get("events")
        if not isinstance(events, list) or not events:
            raise RequestValidationError(
                'body must carry a non-empty "events" array'
            )
        instances: "List[str]" = []
        busy: "List[bool]" = []
        for position, event in enumerate(events):
            if not isinstance(event, dict):
                raise RequestValidationError(
                    f"events[{position}] must be an object"
                )
            instance = event.get("instance")
            if not isinstance(instance, str) or not instance:
                raise RequestValidationError(
                    f'events[{position}].instance must be a non-empty string'
                )
            if "busy" in event:
                flag = event["busy"]
                if not isinstance(flag, bool):
                    raise RequestValidationError(
                        f"events[{position}].busy must be a boolean"
                    )
                is_busy = flag
            elif "demand" in event:
                demand = event["demand"]
                if not isinstance(demand, int) or isinstance(demand, bool) or demand < 0:
                    raise RequestValidationError(
                        f"events[{position}].demand must be a non-negative integer"
                    )
                is_busy = demand >= 1
            else:
                raise RequestValidationError(
                    f'events[{position}] needs a "busy" or "demand" field'
                )
            instances.append(instance)
            busy.append(is_busy)
        return instances, busy

    @staticmethod
    def _validate_seq(payload: object) -> "Optional[int]":
        """Extract and validate the optional ``schema``/``seq`` fields."""
        if not isinstance(payload, dict):
            return None  # _validate_events rejects non-dict bodies
        if "schema" in payload and payload["schema"] not in SUPPORTED_SCHEMAS:
            raise SchemaSkewError(
                f"ingest body carries envelope schema {payload['schema']!r}; "
                f"this server answers schemas {SUPPORTED_SCHEMAS}"
            )
        if "seq" not in payload:
            return None
        seq = payload["seq"]
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise RequestValidationError(
                f'"seq" must be a non-negative integer, got {seq!r}'
            )
        return seq

    def ingest(self, payload: object) -> "Dict[str, object]":
        """Validate and apply one event batch; returns the response body.

        When the batch carries a ``seq`` equal to the last applied one,
        the stored response is returned verbatim and nothing is applied
        — the retry path of an at-least-once sender becomes
        exactly-once.
        """
        seq = self._validate_seq(payload)
        instances, busy = self._validate_events(payload)
        if len(instances) > self.max_batch:
            raise PayloadTooLargeError(
                f"{len(instances)} events exceed the per-request limit of "
                f"{self.max_batch}"
            )
        with self.ingest_seconds.time():
            with self._fleet_lock:
                if seq is not None and self._last_seq is not None:
                    if seq == self._last_seq and self._last_response is not None:
                        return dict(self._last_response)
                    if seq < self._last_seq:
                        raise RequestValidationError(
                            f"stale batch seq {seq} (already applied up to "
                            f"{self._last_seq}); only the last batch may be "
                            "retried"
                        )
                settled = self.fleet.apply_events(instances, busy)
                self._events_ingested += len(instances)
                self._events_since_checkpoint += len(instances)
                response: "Dict[str, object]" = {
                    "accepted": len(instances),
                    "decisions": [_decision_to_json(d) for d in settled],
                    "events_ingested": self._events_ingested,
                }
                if seq is not None:
                    self._last_seq = seq
                    self._last_response = dict(response)
                should_checkpoint = (
                    self.checkpoint_path is not None
                    and self.checkpoint_interval > 0
                    and self._events_since_checkpoint >= self.checkpoint_interval
                )
                if should_checkpoint:
                    self._checkpoint_locked()
        self.events_total.inc(len(instances))
        for decision in settled:
            phi_label = {"phi": repr(decision.phi)}
            self.decisions_total.inc(
                labels={"verdict": decision.verdict.value, **phi_label}
            )
            if decision.listing == "opened":
                self.listings_open_total.inc(labels=phi_label)
            elif decision.listing == "cleared":
                if decision.waited_hours == 0:
                    # Instant clear: the listing opened and cleared in
                    # the same decision, so count the open here too.
                    self.listings_open_total.inc(labels=phi_label)
                self.listings_cleared_total.inc(labels=phi_label)
                self.clearing_delay_hours.observe(float(decision.waited_hours))
            elif decision.listing == "expired":
                self.listings_expired_total.inc(labels=phi_label)
        return response

    def decisions(
        self, instance: "Optional[str]" = None
    ) -> "Dict[str, object]":
        with self._fleet_lock:
            if instance is not None:
                try:
                    rows = [self.fleet.instance_state(instance)]
                except ServeStateError as error:
                    raise UnknownResourceError(str(error)) from error
            else:
                rows = self.fleet.rows()
            counts = self.fleet.verdict_counts()
        return {"instances": rows, "verdicts_by_phi": counts}

    def costs(self) -> "Dict[str, object]":
        """Per-φ cost counts plus the priced breakdowns (Eq. (1))."""
        with self._fleet_lock:
            counts = self.fleet.cost_counts()
            rebuys = self.fleet.rebuy_counts()
            penalties = self.fleet.cancellation_penalties()
        phis: "Dict[str, object]" = {}
        for threshold in self.fleet.thresholds:
            key = repr(threshold.phi)
            breakdown = breakdown_from_counts(
                self.fleet.model, threshold.phi, counts[key]
            )
            phis[key] = {
                "counts": counts[key],
                "breakdown": {
                    "on_demand": breakdown.on_demand,
                    "upfront": breakdown.upfront,
                    "reserved_hourly": breakdown.reserved_hourly,
                    "sale_income": breakdown.sale_income,
                    "total": breakdown.total,
                },
            }
        body: "Dict[str, object]" = {"phis": phis}
        if rebuys:
            # Schema-2 section: cancellation re-buy surcharges on top of
            # the per-φ menu above. Counts stay integers so a sharded
            # deployment can sum them exactly and price once; `penalty`
            # rides along so the router needn't parse the spec string.
            body["policies"] = {
                spec: {
                    "counts": entry,
                    "penalty": penalties[spec],
                    "rebuy_outlay": rebuy_outlay_from_counts(
                        self.fleet.model, penalties[spec], entry
                    ),
                }
                for spec, entry in rebuys.items()
            }
        return body

    def health(self) -> "Dict[str, object]":
        with self._fleet_lock:
            tracked = self.fleet.size
            last_seq = self._last_seq
        return {
            "status": "ok",
            "version": __version__,
            "instances": tracked,
            "events_ingested": self._events_ingested,
            "ingest_seq": last_seq,
            "uptime_seconds": round(time.perf_counter() - self._started, 3),
        }

    def render_metrics(self) -> str:
        with self._fleet_lock:
            self.instances_gauge.set(self.fleet.size)
            rebuys = self.fleet.rebuy_counts()
        for spec, entry in rebuys.items():
            self.rebuys_gauge.set(
                float(entry["rebuys"]), labels={"policy": spec}
            )
        return self.registry.render()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _checkpoint_locked(self) -> None:
        """Write a checkpoint; caller holds the fleet lock."""
        if self.checkpoint_path is None:
            return
        extra: "Dict[str, object]" = {}
        if self._last_seq is not None:
            extra["ingest_last_seq"] = self._last_seq
            extra["ingest_last_response"] = self._last_response
        save_checkpoint(
            self.checkpoint_path,
            self.fleet,
            self._events_ingested,
            extra=extra,
            fsync=self.checkpoint_fsync,
        )
        self._events_since_checkpoint = 0
        self.checkpoints_total.inc()

    def checkpoint_now(self) -> "Optional[Path]":
        """Snapshot unconditionally (shutdown hook); returns the path."""
        if self.checkpoint_path is None:
            return None
        with self._fleet_lock:
            self._checkpoint_locked()
        return self.checkpoint_path

    @property
    def events_ingested(self) -> int:
        return self._events_ingested

    @property
    def last_seq(self) -> "Optional[int]":
        """The last applied ingest batch seq (the dedupe watermark)."""
        with self._fleet_lock:
            return self._last_seq


class AdvisoryRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto :class:`AdvisoryApp` calls."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Responses leave as separate header/body segments; on a keep-alive
    # connection Nagle + the peer's delayed ACK would stall every reply
    # ~40ms, so small request/response traffic needs TCP_NODELAY.
    disable_nagle_algorithm = True

    @property
    def app(self) -> AdvisoryApp:
        return self.server.app  # type: ignore[attr-defined]

    # Silence the default stderr-per-request log; metrics cover it.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------

    def _send_payload(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app.responses_total.inc(labels={"code": str(status)})

    def _send_json(self, status: int, payload: "Dict[str, object]") -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_payload(status, body, "application/json; charset=utf-8")

    #: Envelope schema negotiated for the current request (reset per
    #: dispatch from the ``X-Repro-Schema`` header).
    _schema = SCHEMA_VERSION

    def _send_ok(self, payload: "Dict[str, object]") -> None:
        shaped = downgrade_payload(payload, self._schema)
        self._send_json(
            200, envelope(shaped, self._schema)  # type: ignore[arg-type]
        )

    def _send_error_json(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, error_envelope(kind, message, self._schema))

    def _read_json_body(self) -> object:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header else 0
        except ValueError as error:
            raise RequestValidationError(
                f"invalid Content-Length {length_header!r}"
            ) from error
        if length <= 0:
            raise RequestValidationError("a JSON request body is required")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestValidationError(
                f"request body is not valid JSON: {error}"
            ) from error

    def _handle_ingest(self) -> None:
        """The ``POST /v1/events`` route (the router handler overrides
        this to send multi-status responses)."""
        self.app.admit()
        try:
            payload = self._read_json_body()
            self._send_ok(self.app.ingest(payload))
        finally:
            self.app.release()

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        route = (method, parsed.path.rstrip("/") or "/")
        # Negotiate the response schema before routing so even error
        # envelopes leave in the version the client asked for. A bad
        # header is itself answered (in the current schema).
        self._schema = SCHEMA_VERSION
        try:
            self._schema = negotiate_schema(self.headers.get("X-Repro-Schema"))
        except SchemaSkewError as error:
            self._send_error_json(error.status, type(error).__name__, str(error))
            return
        try:
            if route == ("GET", "/healthz"):
                self._send_ok(self.app.health())
            elif route == ("GET", "/metrics"):
                body = self.app.render_metrics().encode("utf-8")
                self._send_payload(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif route == ("GET", "/v1/decisions"):
                query = parse_qs(parsed.query)
                instance = query.get("instance", [None])[0]
                self._send_ok(self.app.decisions(instance))
            elif route == ("GET", "/v1/costs"):
                self._send_ok(self.app.costs())
            elif route == ("POST", "/v1/events"):
                self._handle_ingest()
            else:
                raise UnknownResourceError(
                    f"no route {method} {parsed.path!r}"
                )
        except ApiError as error:
            self._send_error_json(
                error.status, type(error).__name__, str(error)
            )
        except ServeError as error:
            # State-level validation surfacing through the fleet.
            self._send_error_json(400, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, "InternalError", str(error))

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class AdvisoryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`AdvisoryApp`."""

    daemon_threads = True

    def __init__(
        self, address: "Tuple[str, int]", app: AdvisoryApp
    ) -> None:
        super().__init__(address, AdvisoryRequestHandler)
        self.app = app


def build_app(
    model: CostModel,
    *args: object,
    phis: "Sequence[float] | _Unset" = _UNSET,
    checkpoint_path: "str | Path | None | _Unset" = _UNSET,
    checkpoint_interval: "int | _Unset" = _UNSET,
    max_batch: "int | _Unset" = _UNSET,
    max_inflight: "int | _Unset" = _UNSET,
    checkpoint_fsync: bool = False,
    clearing: "ClearingModel | None" = None,
    policies: "Sequence[object] | None" = None,
) -> AdvisoryApp:
    """Assemble an app, restoring fleet state from ``checkpoint_path``
    when a checkpoint exists there (a fresh fleet otherwise).

    ``clearing`` attaches a marketplace clearing model to a *fresh*
    fleet (SELL decisions open listings and settle later — see
    :class:`~repro.serve.state.FleetState`). A restored checkpoint
    carries its own clearing model, which wins: mid-flight listings must
    settle under the hazards they were drawn from.

    ``policies`` attaches extra policy specs (randomized / cancellation
    families, see :func:`repro.core.policyspec.parse_policies`) to a
    *fresh* fleet. A restored checkpoint carries its own specs, which
    win for the same reason the clearing model does: drawn spots and
    re-buy watches must continue under the configuration they were
    created with.

    The configuration tail is keyword-only; passing it positionally is
    deprecated and supported for one release behind a
    :class:`DeprecationWarning`.
    """
    given: "dict[str, object]" = {
        "phis": phis,
        "checkpoint_path": checkpoint_path,
        "checkpoint_interval": checkpoint_interval,
        "max_batch": max_batch,
        "max_inflight": max_inflight,
    }
    _absorb_positional_tail(
        "build_app",
        args,
        ("phis", "checkpoint_path", "checkpoint_interval", "max_batch", "max_inflight"),
        given,
    )
    resolved_phis = (
        given["phis"] if given["phis"] is not _UNSET else PAPER_DECISION_FRACTIONS
    )
    resolved_path = (
        given["checkpoint_path"] if given["checkpoint_path"] is not _UNSET else None
    )
    interval = (
        int(given["checkpoint_interval"])  # type: ignore[call-overload]
        if given["checkpoint_interval"] is not _UNSET
        else 0
    )
    batch_cap = (
        int(given["max_batch"])  # type: ignore[call-overload]
        if given["max_batch"] is not _UNSET
        else DEFAULT_MAX_BATCH
    )
    inflight_cap = (
        int(given["max_inflight"])  # type: ignore[call-overload]
        if given["max_inflight"] is not _UNSET
        else DEFAULT_MAX_INFLIGHT
    )

    events_ingested = 0
    last_seq: "Optional[int]" = None
    last_response: "Optional[Dict[str, object]]" = None
    if resolved_path is not None and Path(resolved_path).exists():  # type: ignore[arg-type]
        checkpoint = restore_checkpoint(resolved_path)  # type: ignore[arg-type]
        fleet = checkpoint.fleet
        events_ingested = checkpoint.events_ingested
        stored_seq = checkpoint.extra.get("ingest_last_seq")
        if stored_seq is not None:
            last_seq = int(stored_seq)  # type: ignore[call-overload]
            stored_response = checkpoint.extra.get("ingest_last_response")
            if isinstance(stored_response, dict):
                last_response = stored_response
    else:
        fleet = FleetState(
            model,
            phis=resolved_phis,  # type: ignore[arg-type]
            clearing=clearing,
            policies=policies,
        )
    return AdvisoryApp(
        fleet,
        checkpoint_path=resolved_path,  # type: ignore[arg-type]
        checkpoint_interval=interval,
        max_batch=batch_cap,
        max_inflight=inflight_cap,
        events_ingested=events_ingested,
        last_seq=last_seq,
        last_response=last_response,
        checkpoint_fsync=checkpoint_fsync,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Online sell/keep advisory service for reserved instances "
            "(the paper's A_phi algorithms, served from live usage events)"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port; 0 picks an ephemeral one (default: %(default)s)",
    )
    parser.add_argument(
        "--period-hours",
        type=int,
        default=8760,
        metavar="T",
        help=(
            "reservation period; the paper's d2.xlarge plan is scaled to "
            "it theta-preservingly (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--discount",
        type=float,
        default=0.8,
        metavar="A",
        help="selling discount a in [0, 1] (default: %(default)s)",
    )
    parser.add_argument(
        "--phi",
        type=float,
        nargs="+",
        default=list(PAPER_DECISION_FRACTIONS),
        metavar="PHI",
        help="decision fractions to advise at (default: 0.75 0.5 0.25)",
    )
    parser.add_argument(
        "--clearing",
        choices=("off", *sorted(LIQUIDITY_REGIMES)),
        default="off",
        help=(
            "marketplace liquidity regime: SELL decisions open listings "
            "that clear stochastically instead of instantly; 'off' keeps "
            "the paper's instant-sale semantics (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--policies",
        default=None,
        metavar="SPECS",
        help=(
            "extra policy specs beyond the per-phi thresholds, "
            "';'-separated (e.g. "
            "'randomized:seed=7,spots=0.25|0.5|0.75;"
            "cancellation:phi=0.5,penalty=0.1,trigger=24'); "
            "see repro.core.policyspec for the grammar"
        ),
    )
    parser.add_argument(
        "--clearing-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="base seed of the clearing draw streams (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="FILE",
        help="restore fleet state from FILE on boot; snapshot back to it",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1000,
        metavar="N",
        help="snapshot every N ingested events (default: %(default)s)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        metavar="N",
        help="events per request limit, 413 beyond (default: %(default)s)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=DEFAULT_MAX_INFLIGHT,
        metavar="N",
        help="concurrent ingests admitted, 429 beyond (default: %(default)s)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run an N-shard cluster: one router consistent-hashing "
            "instances onto N supervised worker processes; --checkpoint "
            "then names a directory of per-shard checkpoints "
            "(default: %(default)s = single process)"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=("http", "binary"),
        default="http",
        help=(
            "worker wire protocol: 'http' serves the JSON API; 'binary' "
            "serves length-prefixed binary frames (the shard supervisor's "
            "worker mode — requires --wal) (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--shard-transport",
        choices=("binary", "json"),
        default="binary",
        help=(
            "with --shards > 1: protocol of the router->worker hop; "
            "'json' keeps PR 5's per-request HTTP path for comparison "
            "(default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--wal",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "binary worker mode: append applied ingest batches to this "
            "write-ahead log; restart replays only the tail past the "
            "snapshot"
        ),
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=64,
        metavar="N",
        help=(
            "binary worker mode: snapshot + compact the WAL every N "
            "applied batches (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--wal-fsync",
        choices=("always", "never"),
        default="always",
        help=(
            "binary worker mode: fsync policy per WAL append "
            "(default: %(default)s)"
        ),
    )
    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards < 1:
        print(
            f"repro.serve: error: --shards must be >= 1, got {args.shards}",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1:
        from repro.serve.shard import run_cluster

        return run_cluster(args)
    if args.transport == "binary":
        from repro.serve.shard import run_binary_worker

        return run_binary_worker(args)
    plan = paper_experiment_plan()
    if args.period_hours != plan.period_hours:
        plan = plan.with_period(args.period_hours)
    model = CostModel(plan=plan, selling_discount=args.discount)
    clearing = (
        ClearingModel.for_regime(args.clearing, seed=args.clearing_seed)
        if args.clearing != "off"
        else None
    )
    try:
        policies = (
            parse_policies(args.policies) if args.policies else None
        )
        app = build_app(
            model,
            phis=tuple(args.phi),
            checkpoint_path=args.checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            clearing=clearing,
            policies=policies,
        )
    except (ServeError, CheckpointError, PolicyError) as error:
        print(f"repro.serve: error: {error}", file=sys.stderr)
        return 2
    server = AdvisoryServer((args.host, args.port), app)
    host, port = server.server_address[:2]
    restored = app.fleet.size
    print(
        f"repro.serve listening on http://{host}:{port} "
        f"(plan {plan.name or 'paper'} T={plan.period_hours}h, a={args.discount}, "
        f"phis={sorted(app.fleet.phis, reverse=True)}, "
        f"{restored} instance(s) restored)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro.serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        saved = app.checkpoint_now()
        if saved is not None:
            print(f"repro.serve: final checkpoint at {saved}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
