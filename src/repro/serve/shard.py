"""Sharded advisory cluster: one router, N supervised worker processes.

Topology
--------
::

                          POST /v1/events
                                │
                        ┌───────▼────────┐
                        │  ShardRouter   │  consistent-hash ring over
                        │ (this process) │  instance ids (blake2b,
                        └───┬───┬───┬────┘  virtual nodes)
                 seq-stamped│   │   │ per-shard sub-batches,
                   envelopes│   │   │ concurrent dispatch + retry
                        ┌───▼┐ ┌▼──┐ ┌▼──┐
                        │ S0 │ │S1 │ │S2 │   unmodified AdvisoryApp
                        └─┬──┘ └┬──┘ └┬──┘   subprocesses (`-m repro.serve`)
                          │     │     │
                        ckpt0 ckpt1 ckpt2    per-shard atomic checkpoints

Each worker is a ``python -m repro.serve`` process owning the
:class:`~repro.serve.server.AdvisoryApp` + FleetState for its id
subset. Two transports carry the router→worker hop:

* ``binary`` (default) — one persistent connection per worker speaking
  the length-prefixed, CRC-checked frames of
  :mod:`repro.serve.transport`, multiplexed by a single selector-loop
  :class:`~repro.serve.transport.TransportHub`; requests pipeline over
  the link instead of paying a TCP + HTTP setup per call. Durability
  moves from checkpoint-per-batch to a per-worker write-ahead log
  (:mod:`repro.serve.wal`): each applied batch is fsync'd to the WAL
  before the reply, the JSON snapshot is rewritten only every
  ``snapshot_interval`` batches, and a restarted worker replays just
  the WAL tail past its snapshot — never full history.
* ``json`` — PR 5's one-JSON-over-HTTP-request-per-call path, kept for
  benchmark trajectory comparison (BENCH_shard.json measures both).

The router:

* partitions an ingest batch by :class:`HashRing` (event order within a
  shard is preserved), fans the sub-batches out concurrently, and
  merges the replies;
* stamps every forwarded batch with a per-shard monotonic ``seq`` —
  a worker that already applied that seq replays its stored response
  verbatim, so router-level retries are exactly-once even across a
  worker ``kill -9`` + restart;
* retries each shard independently with capped exponential backoff,
  restarting a dead worker from its checkpoint first
  (:class:`ShardSupervisor`);
* answers ``207`` with a per-shard status map when only some shards
  succeed (``200`` all ok, ``503`` none ok);
* reports ``"degraded"`` health while any shard is down and merges
  ``/metrics`` expositions under a ``shard="N"`` label;
* sums the shards' integer cost counts and prices them once
  (:func:`~repro.serve.state.breakdown_from_counts`), so ``/v1/costs``
  is bit-identical to a single-process server over the same events.

Everything on the wire is the versioned envelope of
:mod:`repro.serve.envelope`; a version-skewed reply aborts the call
with :class:`~repro.serve.errors.ShardProtocolError` instead of being
merged.

``python -m repro.serve --shards N --checkpoint DIR`` starts a cluster
(see :func:`run_cluster`).
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._version import __version__
from repro.core.account import CostModel
from repro.core.breakeven import PAPER_DECISION_FRACTIONS
from repro.core.policyspec import parse_policies
from repro.errors import PolicyError
from repro.pricing.catalog import paper_experiment_plan
from repro.serve.checkpoint import save_checkpoint
from repro.serve.envelope import (
    SCHEMA_VERSION,
    envelope,
    error_envelope,
    error_kind,
    require_schema,
)
from repro.serve.errors import (
    ApiError,
    CheckpointError,
    PayloadTooLargeError,
    SchemaSkewError,
    ServeError,
    ServerBusyError,
    ShardError,
    ShardProtocolError,
    ShardUnavailableError,
    TransportClosedError,
    UnknownResourceError,
)
from repro.serve.metrics import TRANSPORT_BUCKETS, MetricsRegistry
from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_INFLIGHT,
    AdvisoryApp,
    AdvisoryRequestHandler,
    AdvisoryServer,
    build_app,
)
from repro.serve.state import (
    FleetState,
    ServeStateError,
    breakdown_from_counts,
    rebuy_outlay_from_counts,
)
from repro.serve.transport import BinaryServer, TransportHub, WorkerChannel
from repro.serve.wal import Wal, WalRecovery

#: Virtual nodes per shard on the hash ring; more points smooth the
#: id distribution at negligible memory cost.
DEFAULT_VNODES = 64

#: Attempts per shard call (first try + retries).
DEFAULT_ATTEMPTS = 4

#: Exponential backoff between attempts: base * 2^k, capped.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 1.0

#: Per-request socket timeout toward a shard, seconds.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Binary workers snapshot + compact the WAL every this many applied
#: batches; a restart replays at most this many from the tail.
DEFAULT_SNAPSHOT_INTERVAL = 64

_LISTEN_RE = re.compile(r"listening on (binary|http)://([0-9.]+):(\d+)")

#: Router op name → the HTTP route the ``json`` transport maps it to
#: (the ``binary`` transport carries the op name itself in the frame).
_OP_ROUTES: "Dict[str, Tuple[str, str]]" = {
    "ingest": ("POST", "/v1/events"),
    "decisions": ("GET", "/v1/decisions"),
    "costs": ("GET", "/v1/costs"),
    "health": ("GET", "/healthz"),
}


def _hash64(key: str) -> int:
    """Stable 64-bit hash (blake2b) — identical across processes/runs."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping instance ids onto shard indices.

    Each shard owns ``vnodes`` points on a 64-bit ring; an id belongs to
    the shard owning the first point at or after its hash (wrapping).
    The mapping depends only on ``(n_shards, vnodes)``, never on process
    state, so every router incarnation routes identically.
    """

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ServeStateError(f"n_shards must be >= 1, got {n_shards!r}")
        if vnodes < 1:
            raise ServeStateError(f"vnodes must be >= 1, got {vnodes!r}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: "List[Tuple[int, int]]" = []
        for shard in range(n_shards):
            for vnode in range(vnodes):
                points.append((_hash64(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, instance_id: str) -> int:
        """The shard index owning ``instance_id``."""
        position = bisect_right(self._points, _hash64(instance_id))
        if position == len(self._points):
            position = 0
        return self._owners[position]


class ShardSupervisor:
    """Owns one worker subprocess: spawn, port discovery, restart, stop.

    The worker is a ``python -m repro.serve`` process bound to an
    ephemeral port. With the default ``binary`` transport it runs the
    frame server with a write-ahead log: every applied batch is durable
    in the WAL (events *and* the batch's response) before the router
    sees the reply, the JSON snapshot is compacted in every
    ``snapshot_interval`` batches, and a ``kill -9`` at any point is
    recoverable by replaying the WAL tail and retrying the in-flight
    seq. With ``transport="json"`` it serves the plain HTTP API with
    ``--checkpoint-interval 1`` (PR 5's behaviour).
    """

    def __init__(
        self,
        index: int,
        checkpoint_path: "str | Path",
        host: str = "127.0.0.1",
        max_batch: int = DEFAULT_MAX_BATCH,
        boot_timeout: float = 30.0,
        transport: str = "binary",
        wal_path: "str | Path | None" = None,
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        wal_fsync: str = "always",
    ) -> None:
        if transport not in ("binary", "json"):
            raise ServeStateError(
                f"transport must be 'binary' or 'json', got {transport!r}"
            )
        self.index = index
        self.checkpoint_path = Path(checkpoint_path)
        self.host = host
        self.max_batch = max_batch
        self.boot_timeout = boot_timeout
        self.transport = transport
        self.wal_path = (
            Path(wal_path)
            if wal_path is not None
            else self.checkpoint_path.with_suffix(".wal")
        )
        self.snapshot_interval = snapshot_interval
        self.wal_fsync = wal_fsync
        self.base_url: "Optional[str]" = None
        #: The worker's announced ``(host, port)``.
        self.worker_address: "Optional[Tuple[str, int]]" = None
        #: Test hook: when set, the router dials this address instead of
        #: the worker's own — the fault-injection proxy installs itself
        #: here and forwards to :attr:`worker_address`.
        self.address_override: "Optional[Tuple[str, int]]" = None
        self.process: "Optional[subprocess.Popen[str]]" = None
        self.restarts = 0
        # Lifecycle writes (process/base_url/restarts) are serialized:
        # restart() runs on router request threads, and two threads that
        # both see a dead worker must not both spawn a replacement.
        self._lifecycle_lock = threading.Lock()

    @property
    def dial_address(self) -> "Optional[Tuple[str, int]]":
        """Where the router should connect (override wins, for tests)."""
        if self.address_override is not None:
            return self.address_override
        return self.worker_address

    def start(self) -> None:
        """Spawn the worker and block until it announces its port."""
        with self._lifecycle_lock:
            self._start_locked()

    def _start_locked(self) -> None:
        """Spawn logic; caller holds ``_lifecycle_lock``."""
        if self.alive():
            return
        command = [
            sys.executable,
            "-m",
            "repro.serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--checkpoint",
            str(self.checkpoint_path),
            "--max-batch",
            str(self.max_batch),
        ]
        if self.transport == "binary":
            command += [
                "--transport",
                "binary",
                "--wal",
                str(self.wal_path),
                "--snapshot-interval",
                str(self.snapshot_interval),
                "--wal-fsync",
                self.wal_fsync,
            ]
        else:
            command += ["--checkpoint-interval", "1"]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        self.process = subprocess.Popen(  # noqa: S603 - fixed argv, own interpreter
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        deadline = time.perf_counter() + self.boot_timeout
        stderr = self.process.stderr
        if stderr is None:  # pragma: no cover - Popen(stderr=PIPE) guarantee
            raise ShardUnavailableError(
                f"shard {self.index} spawned without a stderr pipe"
            )
        while True:
            line = stderr.readline()
            if line == "":
                raise ShardUnavailableError(
                    f"shard {self.index} exited during boot "
                    f"(code {self.process.poll()})"
                )
            match = _LISTEN_RE.search(line)
            if match:
                scheme, announced_host, announced_port = match.groups()
                self.worker_address = (announced_host, int(announced_port))
                self.base_url = (
                    f"http://{announced_host}:{announced_port}"
                    if scheme == "http"
                    else None
                )
                break
            if time.perf_counter() > deadline:
                self._stop_locked()
                raise ShardUnavailableError(
                    f"shard {self.index} did not announce a port within "
                    f"{self.boot_timeout}s"
                )
        drain = threading.Thread(
            target=self._drain_stderr,
            args=(stderr,),
            daemon=True,
            name=f"repro-shard-{self.index}-stderr",
        )
        drain.start()

    @staticmethod
    def _drain_stderr(stream: object) -> None:
        """Keep the worker's stderr pipe from filling up."""
        # A closed pipe just means the worker (or stop()) went first.
        with contextlib.suppress(ValueError, OSError):
            for _ in stream:  # type: ignore[attr-defined]
                pass

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def restart(self) -> None:
        """Start a replacement worker after a crash (checkpoint restore)."""
        with self._lifecycle_lock:
            if self.alive():
                return
            self.restarts += 1
            self._start_locked()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle_lock:
            self._stop_locked(timeout)

    def _stop_locked(self, timeout: float = 5.0) -> None:
        process = self.process
        if process is None:
            return
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if process.stderr is not None:
            with contextlib.suppress(OSError):
                process.stderr.close()


class ShardRouter:
    """Transport-free router behind :class:`RouterRequestHandler`.

    Duck-types the :class:`~repro.serve.server.AdvisoryApp` surface the
    HTTP handler expects (``decisions``/``costs``/``health``/
    ``render_metrics``/``admit``/``release``/``responses_total``) and
    adds :meth:`ingest_with_status` for multi-status ingest replies.
    """

    def __init__(
        self,
        model: CostModel,
        supervisors: "Sequence[ShardSupervisor]",
        ring: "Optional[HashRing]" = None,
        registry: "Optional[MetricsRegistry]" = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        attempts: int = DEFAULT_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        transport: str = "binary",
    ) -> None:
        if not supervisors:
            raise ServeStateError("a shard cluster needs at least one shard")
        if attempts < 1:
            raise ServeStateError(f"attempts must be >= 1, got {attempts!r}")
        if transport not in ("binary", "json"):
            raise ServeStateError(
                f"transport must be 'binary' or 'json', got {transport!r}"
            )
        self.model = model
        self.transport = transport
        self.supervisors = list(supervisors)
        self.ring = ring if ring is not None else HashRing(len(self.supervisors))
        if self.ring.n_shards != len(self.supervisors):
            raise ServeStateError(
                f"ring spans {self.ring.n_shards} shards but "
                f"{len(self.supervisors)} supervisors were given"
            )
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.attempts = attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.registry = registry if registry is not None else MetricsRegistry()
        self._started = time.perf_counter()
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._shard_locks = [threading.Lock() for _ in self.supervisors]
        # Next seq per shard; None = unknown, resynced from the shard's
        # /healthz (its last applied seq survives in the checkpoint).
        self._seqs: "List[Optional[int]]" = [None] * len(self.supervisors)
        # One persistent channel per shard (binary transport); dialled
        # lazily, re-dialled after any transport failure.
        self._channel_locks = [threading.Lock() for _ in self.supervisors]
        self._channels: "List[Optional[WorkerChannel]]" = [None] * len(
            self.supervisors
        )
        self._hub: "Optional[TransportHub]" = None
        if transport == "binary":
            self._hub = TransportHub()
            self._hub.start()
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.supervisors),
            thread_name_prefix="repro-shard-dispatch",
        )

        self.responses_total = self.registry.counter(
            "repro_router_http_responses_total",
            "Router HTTP responses sent, by status code.",
            labelnames=("code",),
        )
        self.events_total = self.registry.counter(
            "repro_router_events_total",
            "Usage events accepted by shards via this router.",
        )
        self.ingest_seconds = self.registry.histogram(
            "repro_router_ingest_seconds",
            "Wall time spent fanning one ingest batch out to shards.",
        )
        self.queue_depth = self.registry.gauge(
            "repro_router_queue_depth",
            "Ingest requests currently admitted (bounded by max_inflight).",
        )
        self.shard_retries_total = self.registry.counter(
            "repro_router_shard_retries_total",
            "Shard calls retried after a transport failure.",
            labelnames=("shard",),
        )
        self.shard_restarts_total = self.registry.counter(
            "repro_router_shard_restarts_total",
            "Dead shard workers restarted from checkpoint.",
            labelnames=("shard",),
        )
        self.shard_failures_total = self.registry.counter(
            "repro_router_shard_failures_total",
            "Shard sub-batches that exhausted the retry budget.",
            labelnames=("shard",),
        )
        self.hop_seconds = self.registry.histogram(
            "repro_router_hop_seconds",
            "Wall time of one router->worker call over the shard transport.",
            labelnames=("shard", "op"),
            buckets=TRANSPORT_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Admission control (same contract as AdvisoryApp)
    # ------------------------------------------------------------------

    def admit(self) -> None:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                raise ServerBusyError(
                    f"ingest queue full ({self._inflight} in flight, "
                    f"limit {self.max_inflight}); retry later"
                )
            self._inflight += 1
            self.queue_depth.set(self._inflight)

    def release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self.queue_depth.set(self._inflight)

    # ------------------------------------------------------------------
    # Shard RPC
    # ------------------------------------------------------------------

    def _channel(self, shard_index: int) -> WorkerChannel:
        """The shard's persistent channel, dialling if necessary."""
        hub = self._hub
        if hub is None:  # pragma: no cover - guarded by transport checks
            raise ServeStateError("router has no transport hub (json mode)")
        with self._channel_locks[shard_index]:
            channel = self._channels[shard_index]
            if channel is not None and not channel.closed:
                return channel
            address = self.supervisors[shard_index].dial_address
            if address is None:
                raise ShardUnavailableError(
                    f"shard {shard_index} was never started"
                )
            channel = hub.connect(address, timeout=self.request_timeout)
            self._channels[shard_index] = channel
            return channel

    def _invalidate_channel(
        self, shard_index: int, channel: WorkerChannel
    ) -> None:
        """Forget a dead channel so the next attempt re-dials."""
        with self._channel_locks[shard_index]:
            if self._channels[shard_index] is channel:
                self._channels[shard_index] = None
        channel.close()

    def _request(
        self,
        shard_index: int,
        op: str,
        body: "Optional[Dict[str, object]]" = None,
        timeout: "Optional[float]" = None,
    ) -> "Tuple[int, Dict[str, object]]":
        """One round-trip to a shard over the configured transport;
        enforces the envelope either way."""
        if self.transport == "binary":
            return self._request_binary(shard_index, op, body, timeout)
        return self._request_json(shard_index, op, body, timeout)

    def _request_binary(
        self,
        shard_index: int,
        op: str,
        body: "Optional[Dict[str, object]]",
        timeout: "Optional[float]",
    ) -> "Tuple[int, Dict[str, object]]":
        channel = self._channel(shard_index)
        try:
            status, parsed = channel.call(
                op,
                body if body is not None else {},
                timeout if timeout is not None else self.request_timeout,
            )
        except TransportClosedError:
            # Whether the link died or the reply missed its deadline,
            # the channel's state is unknown — drop it and re-dial.
            self._invalidate_channel(shard_index, channel)
            raise
        try:
            return status, require_schema(parsed, source=f"shard {shard_index}")
        except SchemaSkewError as error:
            raise ShardProtocolError(str(error)) from error

    def _request_json(
        self,
        shard_index: int,
        op: str,
        body: "Optional[Dict[str, object]]",
        timeout: "Optional[float]",
    ) -> "Tuple[int, Dict[str, object]]":
        """PR 5's hop: one fresh JSON-over-HTTP request per call."""
        base_url = self.supervisors[shard_index].base_url
        if base_url is None:
            raise ShardUnavailableError(f"shard {shard_index} was never started")
        method, path = _OP_ROUTES[op]
        data: "Optional[bytes]" = None
        if method == "POST":
            data = json.dumps(body).encode("utf-8") if body is not None else None
        elif body and isinstance(body.get("instance"), str):
            path += "?instance=" + urllib.parse.quote(str(body["instance"]))
        request = urllib.request.Request(
            base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.request_timeout
            ) as response:
                raw = response.read()
                status = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            status = error.code
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
            raise ShardUnavailableError(
                f"shard {shard_index} unreachable: {error}"
            ) from error
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ShardProtocolError(
                f"shard {shard_index} answered non-JSON: {error}"
            ) from error
        try:
            return status, require_schema(parsed, source=f"shard {shard_index}")
        except SchemaSkewError as error:
            raise ShardProtocolError(str(error)) from error

    def _shard_metrics(self, shard_index: int) -> str:
        """One shard's ``/metrics`` exposition text."""
        if self.transport == "binary":
            _status, parsed = self._request(shard_index, "metrics")
            exposition = parsed.get("exposition")
            if not isinstance(exposition, str):
                raise ShardProtocolError(
                    f"shard {shard_index} answered a metrics body without "
                    "an 'exposition' string"
                )
            return exposition
        base_url = self.supervisors[shard_index].base_url
        if base_url is None:
            raise ShardUnavailableError(f"shard {shard_index} was never started")
        try:
            with urllib.request.urlopen(
                base_url + "/metrics", timeout=self.request_timeout
            ) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
            raise ShardUnavailableError(
                f"shard {shard_index} unreachable: {error}"
            ) from error

    def _call_shard(
        self,
        shard_index: int,
        op: str,
        body: "Optional[Dict[str, object]]" = None,
    ) -> "Tuple[int, Dict[str, object]]":
        """RPC with supervised restart and capped exponential backoff."""
        delay = self.backoff_base
        last_error: "Optional[ShardError]" = None
        label = {"shard": str(shard_index)}
        hop_label = {"shard": str(shard_index), "op": op}
        for attempt in range(self.attempts):
            if attempt:
                self.shard_retries_total.inc(labels=label)
                time.sleep(delay)
                delay = min(delay * 2.0, self.backoff_cap)
            supervisor = self.supervisors[shard_index]
            if not supervisor.alive():
                try:
                    supervisor.restart()
                    self.shard_restarts_total.inc(labels=label)
                except ShardUnavailableError as error:
                    last_error = error
                    continue
            try:
                with self.hop_seconds.time(labels=hop_label):
                    return self._request(shard_index, op, body)
            except ShardUnavailableError as error:
                last_error = error
        self.shard_failures_total.inc(labels=label)
        raise last_error if last_error is not None else ShardUnavailableError(
            f"shard {shard_index} failed with no recorded error"
        )

    # ------------------------------------------------------------------
    # Ingest fan-out
    # ------------------------------------------------------------------

    def _ingest_shard(
        self, shard_index: int, events: "List[Dict[str, object]]"
    ) -> "Dict[str, object]":
        """Forward one shard's sub-batch under its dispatch lock.

        The lock serialises batches per shard, so seqs arrive in order;
        a transport retry re-sends the *same* seq and the worker's
        dedupe makes the apply exactly-once.
        """
        with self._shard_locks[shard_index]:
            seq = self._seqs[shard_index]
            if seq is None:
                _, health = self._call_shard(shard_index, "health")
                applied = health.get("ingest_seq")
                seq = int(applied) + 1 if isinstance(applied, int) else 1
            body: "Dict[str, object]" = {
                "schema": SCHEMA_VERSION,
                "seq": seq,
                "events": events,
            }
            try:
                status, parsed = self._call_shard(shard_index, "ingest", body)
            except ShardError:
                # Whether the shard applied this seq is unknown; resync
                # from its checkpointed /healthz before the next batch.
                self._seqs[shard_index] = None
                raise
            if status != 200:
                self._seqs[shard_index] = None
                kind = error_kind(parsed) or "UnknownError"
                error_body = parsed.get("error")
                message = (
                    error_body.get("message", "")
                    if isinstance(error_body, dict)
                    else ""
                )
                raise ShardProtocolError(
                    f"shard {shard_index} rejected ingest ({kind}): {message}"
                )
            self._seqs[shard_index] = seq + 1
            return parsed

    def ingest_with_status(
        self, payload: object
    ) -> "Tuple[int, Dict[str, object]]":
        """Partition, fan out, and merge one ingest batch.

        Returns ``(http_status, body)``: 200 when every shard applied
        its sub-batch, 207 when only some did (per-shard status map
        tells which), 503 when none did.
        """
        if isinstance(payload, dict) and "schema" in payload:
            if payload["schema"] != SCHEMA_VERSION:
                raise SchemaSkewError(
                    f"ingest body carries envelope schema "
                    f"{payload['schema']!r}; this router speaks {SCHEMA_VERSION}"
                )
        instances, _busy = AdvisoryApp._validate_events(payload)
        if len(instances) > self.max_batch:
            raise PayloadTooLargeError(
                f"{len(instances)} events exceed the per-request limit of "
                f"{self.max_batch}"
            )
        events = payload["events"]  # type: ignore[index]
        groups: "Dict[int, List[Dict[str, object]]]" = {}
        for event, instance in zip(events, instances):
            groups.setdefault(self.ring.shard_for(instance), []).append(event)

        with self.ingest_seconds.time():
            futures = {
                shard_index: self._pool.submit(
                    self._ingest_shard, shard_index, shard_events
                )
                for shard_index, shard_events in sorted(groups.items())
            }
            shards: "Dict[str, Dict[str, object]]" = {}
            decisions: "List[object]" = []
            accepted = 0
            events_ingested = 0
            failures = 0
            for shard_index, future in futures.items():
                try:
                    parsed = future.result()
                except ShardError as error:
                    failures += 1
                    shards[str(shard_index)] = {
                        "status": "error",
                        "kind": type(error).__name__,
                        "message": str(error),
                    }
                    continue
                shard_accepted = int(parsed.get("accepted", 0))  # type: ignore[call-overload]
                accepted += shard_accepted
                events_ingested += int(parsed.get("events_ingested", 0))  # type: ignore[call-overload]
                shard_decisions = parsed.get("decisions")
                if isinstance(shard_decisions, list):
                    decisions.extend(shard_decisions)
                shards[str(shard_index)] = {
                    "status": "ok",
                    "accepted": shard_accepted,
                }
        self.events_total.inc(accepted)
        if failures == 0:
            status = 200
        elif failures < len(futures):
            status = 207
        else:
            status = 503
        return status, {
            "accepted": accepted,
            "decisions": decisions,
            "events_ingested": events_ingested,
            "shards": shards,
        }

    def ingest(self, payload: object) -> "Dict[str, object]":
        """AdvisoryApp-compatible ingest; raises when any shard failed."""
        status, body = self.ingest_with_status(payload)
        if status != 200:
            raise ShardUnavailableError(
                f"{sum(1 for s in body['shards'].values() if s['status'] != 'ok')}"  # type: ignore[union-attr]
                f" shard(s) failed to apply the batch"
            )
        return body

    # ------------------------------------------------------------------
    # Read fan-out
    # ------------------------------------------------------------------

    def decisions(self, instance: "Optional[str]" = None) -> "Dict[str, object]":
        if instance is not None:
            shard_index = self.ring.shard_for(instance)
            status, parsed = self._call_shard(
                shard_index, "decisions", {"instance": instance}
            )
            if status == 404:
                error_body = parsed.get("error")
                message = (
                    error_body.get("message", f"unknown instance {instance!r}")
                    if isinstance(error_body, dict)
                    else f"unknown instance {instance!r}"
                )
                raise UnknownResourceError(str(message))
            if status != 200:
                raise ShardProtocolError(
                    f"shard {shard_index} answered {status} to a decisions read"
                )
            return {
                "instances": parsed.get("instances", []),
                "verdicts_by_phi": parsed.get("verdicts_by_phi", {}),
            }
        replies = self._fan_out_get("decisions")
        rows: "List[object]" = []
        verdicts: "Dict[str, Dict[str, int]]" = {}
        for _, parsed in replies:
            shard_rows = parsed.get("instances")
            if isinstance(shard_rows, list):
                rows.extend(shard_rows)
            shard_verdicts = parsed.get("verdicts_by_phi")
            if isinstance(shard_verdicts, dict):
                for phi_key, tally in shard_verdicts.items():
                    merged = verdicts.setdefault(str(phi_key), {})
                    for verdict, count in tally.items():
                        merged[str(verdict)] = merged.get(str(verdict), 0) + int(
                            count
                        )
        return {"instances": rows, "verdicts_by_phi": verdicts}

    def costs(self) -> "Dict[str, object]":
        """Cluster-wide Eq. (1) costs: sum integer counts, price once.

        Because every float multiplication happens exactly once on the
        summed counts — the same expressions a single-process server
        uses — the result is bit-identical to serving the whole fleet
        from one process.
        """
        replies = self._fan_out_get("costs")
        totals: "Dict[str, Dict[str, int]]" = {}
        # Cancellation re-buy counts merge under the same discipline:
        # sum the shards' integers, keep one penalty, price once.
        rebuy_totals: "Dict[str, Dict[str, int]]" = {}
        rebuy_penalties: "Dict[str, float]" = {}
        for shard_index, parsed in replies:
            phis = parsed.get("phis")
            if not isinstance(phis, dict):
                raise ShardProtocolError(
                    f"shard {shard_index} answered a costs body without 'phis'"
                )
            for phi_key, entry in phis.items():
                counts = entry.get("counts") if isinstance(entry, dict) else None
                if not isinstance(counts, dict):
                    raise ShardProtocolError(
                        f"shard {shard_index} answered malformed cost counts "
                        f"for phi {phi_key!r}"
                    )
                merged = totals.setdefault(
                    str(phi_key), {"instances": 0, "sold": 0, "billed_hours": 0, "od_hours": 0}
                )
                for field in merged:
                    merged[field] += int(counts.get(field, 0))  # type: ignore[call-overload]
            policies = parsed.get("policies")
            if isinstance(policies, dict):
                for spec_key, entry in policies.items():
                    counts = (
                        entry.get("counts") if isinstance(entry, dict) else None
                    )
                    if not isinstance(counts, dict):
                        raise ShardProtocolError(
                            f"shard {shard_index} answered malformed re-buy "
                            f"counts for policy {spec_key!r}"
                        )
                    merged = rebuy_totals.setdefault(
                        str(spec_key), {"rebuys": 0, "rebuy_age_sum": 0}
                    )
                    for field in merged:
                        merged[field] += int(counts.get(field, 0))  # type: ignore[call-overload]
                    rebuy_penalties.setdefault(
                        str(spec_key), float(entry["penalty"])  # type: ignore[index, arg-type]
                    )
        response: "Dict[str, object]" = {}
        for phi_key, counts in sorted(
            totals.items(), key=lambda item: -float(item[0])
        ):
            breakdown = breakdown_from_counts(self.model, float(phi_key), counts)
            response[phi_key] = {
                "counts": counts,
                "breakdown": {
                    "on_demand": breakdown.on_demand,
                    "upfront": breakdown.upfront,
                    "reserved_hourly": breakdown.reserved_hourly,
                    "sale_income": breakdown.sale_income,
                    "total": breakdown.total,
                },
            }
        body: "Dict[str, object]" = {"phis": response}
        if rebuy_totals:
            body["policies"] = {
                spec_key: {
                    "counts": counts,
                    "penalty": rebuy_penalties[spec_key],
                    "rebuy_outlay": rebuy_outlay_from_counts(
                        self.model, rebuy_penalties[spec_key], counts
                    ),
                }
                for spec_key, counts in sorted(rebuy_totals.items())
            }
        return body

    def _fan_out_get(self, op: str) -> "List[Tuple[int, Dict[str, object]]]":
        """Run a read ``op`` on every shard concurrently; raises on any
        failure."""
        futures = [
            (shard_index, self._pool.submit(self._call_shard, shard_index, op))
            for shard_index in range(len(self.supervisors))
        ]
        replies: "List[Tuple[int, Dict[str, object]]]" = []
        first_error: "Optional[ShardError]" = None
        for shard_index, future in futures:
            try:
                status, parsed = future.result()
            except ShardError as error:
                if first_error is None:
                    first_error = error
                continue
            if status != 200:
                if first_error is None:
                    first_error = ShardProtocolError(
                        f"shard {shard_index} answered {status} to a {op} read"
                    )
                continue
            replies.append((shard_index, parsed))
        if first_error is not None:
            raise first_error
        return replies

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------

    def health(self) -> "Dict[str, object]":
        """Cluster health; ``"degraded"`` while any shard is down."""
        shards: "Dict[str, Dict[str, object]]" = {}
        status = "ok"
        instances = 0
        events_ingested = 0
        for shard_index, supervisor in enumerate(self.supervisors):
            key = str(shard_index)
            if not supervisor.alive():
                shards[key] = {"status": "down", "restarts": supervisor.restarts}
                status = "degraded"
                continue
            try:
                _, parsed = self._request(shard_index, "health")
            except ShardError as error:
                shards[key] = {
                    "status": "unreachable",
                    "restarts": supervisor.restarts,
                    "message": str(error),
                }
                status = "degraded"
                continue
            shard_instances = int(parsed.get("instances", 0))  # type: ignore[call-overload]
            shard_events = int(parsed.get("events_ingested", 0))  # type: ignore[call-overload]
            instances += shard_instances
            events_ingested += shard_events
            shards[key] = {
                "status": str(parsed.get("status", "ok")),
                "instances": shard_instances,
                "events_ingested": shard_events,
                "restarts": supervisor.restarts,
            }
        return {
            "status": status,
            "version": __version__,
            "shards": shards,
            "instances": instances,
            "events_ingested": events_ingested,
            "uptime_seconds": round(time.perf_counter() - self._started, 3),
        }

    def render_metrics(self) -> str:
        """The router's own metrics plus every reachable shard's,
        re-labelled with ``shard="N"``."""
        parts = [self.registry.render()]
        seen_headers: "Set[str]" = set()
        for line in parts[0].splitlines():
            if line.startswith("#"):
                seen_headers.add(line)
        for shard_index in range(len(self.supervisors)):
            if not self.supervisors[shard_index].alive():
                continue
            try:
                exposition = self._shard_metrics(shard_index)
            except ShardError:
                continue
            parts.append(
                _relabel_exposition(exposition, shard_index, seen_headers)
            )
        return "\n".join(part for part in parts if part)

    def close(self) -> None:
        """Stop dispatch, the transport hub, and every worker."""
        self._pool.shutdown(wait=True)
        if self._hub is not None:
            self._hub.close()
        for supervisor in self.supervisors:
            supervisor.stop()


def _relabel_exposition(
    exposition: str, shard_index: int, seen_headers: "Set[str]"
) -> str:
    """Inject ``shard="N"`` into every sample of one shard's exposition.

    ``# HELP``/``# TYPE`` headers are emitted once across the merged
    output (duplicates are invalid exposition text).
    """
    label = f'shard="{shard_index}"'
    lines: "List[str]" = []
    for line in exposition.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if line not in seen_headers:
                seen_headers.add(line)
                lines.append(line)
            continue
        name_part, _, value_part = line.partition(" ")
        if "{" in name_part:
            name_part = name_part.replace("{", "{" + label + ",", 1)
        else:
            name_part = name_part + "{" + label + "}"
        lines.append(f"{name_part} {value_part}")
    return "\n".join(lines)


class RouterRequestHandler(AdvisoryRequestHandler):
    """The advisory handler with multi-status ingest replies."""

    server_version = f"repro-serve-router/{__version__}"

    def _handle_ingest(self) -> None:
        self.app.admit()
        try:
            payload = self._read_json_body()
            status, body = self.app.ingest_with_status(payload)  # type: ignore[attr-defined]
            self._send_json(status, envelope(body))
        finally:
            self.app.release()


class RouterServer(AdvisoryServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`ShardRouter`."""

    def __init__(self, address: "Tuple[str, int]", router: ShardRouter) -> None:
        # Bypass AdvisoryServer.__init__ to install the router handler.
        super(AdvisoryServer, self).__init__(address, RouterRequestHandler)
        self.app = router  # type: ignore[assignment]


class ShardWorker:
    """Glue between a :class:`~repro.serve.transport.BinaryServer` and
    one :class:`~repro.serve.server.AdvisoryApp`: op dispatch, WAL
    append-before-reply, periodic snapshot + compaction.

    Durability protocol (the recovery state machine is documented in
    ``docs/serving.md``):

    1. ``recover()`` — restore the snapshot (done by ``build_app``
       before construction), heal a torn WAL tail, replay every WAL
       record with ``seq`` past the snapshot's watermark through the
       *same* ``AdvisoryApp.ingest`` path, then snapshot + compact so
       the next restart replays nothing already durable.
    2. Every *applied* ingest batch (seq advanced the watermark) is
       appended — events and the response — and fsync'd to the WAL
       before the reply frame is sent. A retried seq dedupes inside
       the app and is never re-logged.
    3. Every ``snapshot_interval`` applied batches: write the fsync'd
       snapshot, then drop WAL records at or below its watermark. A
       crash between the two leaves stale records that replay skips.

    Batches without a ``seq`` (not the router's — it always stamps one)
    are applied but not WAL-logged; only the periodic snapshot covers
    them.
    """

    def __init__(
        self,
        app: AdvisoryApp,
        wal_path: "str | Path",
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        wal_fsync: str = "always",
    ) -> None:
        if snapshot_interval < 1:
            raise ServeStateError(
                f"snapshot_interval must be >= 1, got {snapshot_interval!r}"
            )
        if app.checkpoint_path is None:
            raise ServeStateError(
                "a binary shard worker needs a checkpoint path — WAL "
                "compaction drops records only a snapshot makes durable"
            )
        self.app = app
        self.wal_path = Path(wal_path)
        self.snapshot_interval = snapshot_interval
        self.wal_fsync = wal_fsync
        # Serialises ingest apply + WAL append + snapshot/compact so the
        # WAL's record order is exactly the apply order.
        self._lock = threading.Lock()
        self._wal: "Optional[Wal]" = None
        self._batches_since_snapshot = 0

        registry = app.registry
        self.wal_appends_total = registry.counter(
            "repro_serve_wal_appends_total",
            "Ingest batches durably appended to the WAL.",
        )
        self.wal_replayed_total = registry.counter(
            "repro_serve_wal_replayed_entries_total",
            "WAL records replayed into the fleet at boot.",
        )
        self.wal_truncated_total = registry.counter(
            "repro_serve_wal_truncated_entries_total",
            "Torn or CRC-failed WAL tail records discarded at boot.",
        )
        self.wal_compactions_total = registry.counter(
            "repro_serve_wal_compactions_total",
            "Snapshot + WAL-compaction cycles completed.",
        )
        self.wal_append_seconds = registry.histogram(
            "repro_serve_wal_append_seconds",
            "Wall time appending one batch to the WAL (incl. fsync).",
            buckets=TRANSPORT_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> "Tuple[int, WalRecovery]":
        """Open the WAL and replay its tail; returns
        ``(batches_replayed, recovery)``.

        Records with ``seq`` at or below the snapshot's watermark are
        skipped — they survive only when a crash hit between snapshot
        and compaction, and replaying them would double-apply.
        """
        with self._lock:
            wal, recovery = Wal.open(
                self.wal_path, fsync=self.wal_fsync, strict=False
            )
            self._wal = wal
            if recovery.truncated_entries:
                self.wal_truncated_total.inc(recovery.truncated_entries)
                print(
                    f"repro.serve: WAL {self.wal_path} had a torn tail — "
                    f"{recovery.truncated_bytes} byte(s) discarded; the "
                    "router's seq retry re-sends the lost batch",
                    file=sys.stderr,
                )
            replayed = 0
            for entry in recovery.entries:
                watermark = self.app.last_seq
                if watermark is not None and entry.seq <= watermark:
                    continue
                self.app.ingest(
                    {
                        "schema": SCHEMA_VERSION,
                        "seq": entry.seq,
                        "events": entry.events,
                    }
                )
                replayed += 1
            if replayed:
                self.wal_replayed_total.inc(replayed)
            if replayed or recovery.truncated_entries or recovery.entries:
                self._snapshot_locked()
        return replayed, recovery

    # ------------------------------------------------------------------
    # Op dispatch (BinaryServer handler)
    # ------------------------------------------------------------------

    def handle(
        self, op: str, body: "Dict[str, object]"
    ) -> "Tuple[int, Dict[str, object]]":
        """One request frame's ``(status, envelope body)`` answer."""
        try:
            if op == "ingest":
                return 200, envelope(self._ingest(body))
            if op == "decisions":
                instance = body.get("instance")
                return 200, envelope(
                    self.app.decisions(
                        instance if isinstance(instance, str) else None
                    )
                )
            if op == "costs":
                return 200, envelope(self.app.costs())
            if op == "health":
                return 200, envelope(self.app.health())
            if op == "metrics":
                return 200, envelope(
                    {"exposition": self.app.render_metrics()}
                )
            raise UnknownResourceError(f"no op {op!r}")
        except ApiError as error:
            return error.status, error_envelope(type(error).__name__, str(error))
        except ServeError as error:
            return 400, error_envelope(type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 - last-resort 500
            return 500, error_envelope("InternalError", str(error))

    def _ingest(self, body: "Dict[str, object]") -> "Dict[str, object]":
        """Apply one batch, WAL it before replying, snapshot on cadence."""
        self.app.admit()
        try:
            with self._lock:
                wal = self._wal
                if wal is None:
                    raise ServeStateError(
                        "worker WAL is not open (recover() was never run)"
                    )
                watermark = self.app.last_seq
                response = self.app.ingest(body)
                seq = body.get("seq")
                applied = (
                    isinstance(seq, int)
                    and not isinstance(seq, bool)
                    and seq != watermark
                )
                if applied:
                    events = body.get("events")
                    with self.wal_append_seconds.time():
                        wal.append(
                            int(seq),  # type: ignore[arg-type]
                            list(events) if isinstance(events, list) else [],
                            response,
                        )
                    self.wal_appends_total.inc()
                    self._batches_since_snapshot += 1
                    if self._batches_since_snapshot >= self.snapshot_interval:
                        self._snapshot_locked()
                return response
        finally:
            self.app.release()

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------

    def _snapshot_locked(self) -> None:
        """Snapshot-then-compact; caller holds ``_lock``.

        Order is load-bearing: the fsync'd snapshot must be durable
        before the WAL drops the records it covers.
        """
        self.app.checkpoint_now()
        wal = self._wal
        if wal is not None:
            wal.compact(self.app.last_seq)
            self.wal_compactions_total.inc()
        self._batches_since_snapshot = 0

    def shutdown(self) -> None:
        """Final snapshot + compact, then close the WAL."""
        with self._lock:
            self._snapshot_locked()
            if self._wal is not None:
                self._wal.close()
                self._wal = None


def start_cluster(
    model: CostModel,
    n_shards: int,
    checkpoint_dir: "str | Path",
    phis: "Sequence[float]" = PAPER_DECISION_FRACTIONS,
    threshold_scale: float = 1.0,
    host: str = "127.0.0.1",
    max_batch: int = DEFAULT_MAX_BATCH,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    attempts: int = DEFAULT_ATTEMPTS,
    backoff_base: float = DEFAULT_BACKOFF_BASE,
    backoff_cap: float = DEFAULT_BACKOFF_CAP,
    transport: str = "binary",
    snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    wal_fsync: str = "always",
    policies: "Optional[Sequence[object]]" = None,
) -> ShardRouter:
    """Boot N supervised shard workers and return the router over them.

    Each shard's checkpoint lives at ``checkpoint_dir/shard-<i>.json``
    (binary transport adds ``shard-<i>.wal`` beside it); when absent, an
    empty fleet with ``model``/``phis``/``policies`` is checkpointed
    first so the worker bootstraps its configuration from the file (an
    existing checkpoint wins — restarts resume where the shard left
    off). ``policies`` travel as canonical spec strings inside the
    checkpoint, so workers need no extra flags and every shard draws
    from the same per-instance-id streams.
    """
    if n_shards < 1:
        raise ServeStateError(f"n_shards must be >= 1, got {n_shards!r}")
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    supervisors: "List[ShardSupervisor]" = []
    try:
        for shard_index in range(n_shards):
            path = directory / f"shard-{shard_index}.json"
            if not path.exists():
                fleet = FleetState(
                    model,
                    phis=phis,
                    threshold_scale=threshold_scale,
                    policies=policies,
                )
                save_checkpoint(path, fleet)
            supervisor = ShardSupervisor(
                shard_index,
                path,
                host=host,
                max_batch=max_batch,
                transport=transport,
                wal_path=directory / f"shard-{shard_index}.wal",
                snapshot_interval=snapshot_interval,
                wal_fsync=wal_fsync,
            )
            supervisor.start()
            supervisors.append(supervisor)
    except ServeError:
        for supervisor in supervisors:
            supervisor.stop()
        raise
    return ShardRouter(
        model,
        supervisors,
        max_batch=max_batch,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
        attempts=attempts,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        transport=transport,
    )


def run_cluster(args: argparse.Namespace) -> int:
    """CLI entry for ``python -m repro.serve --shards N`` (N > 1)."""
    plan = paper_experiment_plan()
    if args.period_hours != plan.period_hours:
        plan = plan.with_period(args.period_hours)
    model = CostModel(plan=plan, selling_discount=args.discount)
    if args.checkpoint is not None:
        checkpoint_dir = Path(args.checkpoint)
    else:
        checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-serve-shards-"))
        print(
            f"repro.serve: --checkpoint not given; per-shard checkpoints in "
            f"{checkpoint_dir}",
            file=sys.stderr,
        )
    try:
        policies = (
            parse_policies(args.policies)
            if getattr(args, "policies", None)
            else None
        )
        router = start_cluster(
            model,
            args.shards,
            checkpoint_dir,
            phis=tuple(args.phi),
            host=args.host,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            transport=args.shard_transport,
            snapshot_interval=args.snapshot_interval,
            wal_fsync=args.wal_fsync,
            policies=policies,
        )
    except (ServeError, CheckpointError, PolicyError) as error:
        print(f"repro.serve: error: {error}", file=sys.stderr)
        return 2
    server = RouterServer((args.host, args.port), router)
    host, port = server.server_address[:2]
    print(
        f"repro.serve router listening on http://{host}:{port} "
        f"({args.shards} shards over the {args.shard_transport} transport, "
        f"plan {plan.name or 'paper'} "
        f"T={plan.period_hours}h, a={args.discount}, "
        f"checkpoints in {checkpoint_dir})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro.serve: shutting down cluster", file=sys.stderr)
    finally:
        server.server_close()
        router.close()
    return 0


def run_binary_worker(args: argparse.Namespace) -> int:
    """CLI entry for ``python -m repro.serve --transport binary``.

    The shard supervisor's worker mode: recover snapshot + WAL tail,
    then serve binary frames until SIGTERM/SIGINT, ending with a final
    snapshot + compaction.
    """
    if args.wal is None:
        print(
            "repro.serve: error: --transport binary requires --wal",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint is None:
        print(
            "repro.serve: error: --transport binary requires --checkpoint "
            "(WAL compaction drops records only a snapshot makes durable)",
            file=sys.stderr,
        )
        return 2
    plan = paper_experiment_plan()
    if args.period_hours != plan.period_hours:
        plan = plan.with_period(args.period_hours)
    model = CostModel(plan=plan, selling_discount=args.discount)
    try:
        policies = (
            parse_policies(args.policies)
            if getattr(args, "policies", None)
            else None
        )
        app = build_app(
            model,
            phis=tuple(args.phi),
            checkpoint_path=args.checkpoint,
            checkpoint_interval=0,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            checkpoint_fsync=True,
            policies=policies,
        )
        worker = ShardWorker(
            app,
            args.wal,
            snapshot_interval=args.snapshot_interval,
            wal_fsync=args.wal_fsync,
        )
        replayed, _recovery = worker.recover()
    except (ServeError, CheckpointError, PolicyError) as error:
        print(f"repro.serve: error: {error}", file=sys.stderr)
        return 2
    server = BinaryServer(args.host, args.port, worker.handle)
    host, port = server.address
    print(
        f"repro.serve worker listening on binary://{host}:{port} "
        f"(wal {args.wal}, snapshot every {args.snapshot_interval} "
        f"batches, {replayed} batch(es) replayed from the WAL tail, "
        f"{app.fleet.size} instance(s) restored)",
        file=sys.stderr,
    )

    def _terminate(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("repro.serve: worker shutting down", file=sys.stderr)
    finally:
        server.close()
        worker.shutdown()
    return 0
