"""Incremental sell/keep decision state — the serving layer's core.

Two trackers, two fidelity/throughput points:

* :class:`StreamTracker` — the *exact* online form of the batch engine.
  It ingests one ``(demand, new_reservations)`` event per hour and
  reproduces :func:`repro.core.fastsim.run_fast` bit for bit: the same
  sales (reservation batch, instance index, hour, working time) and the
  same :class:`~repro.core.account.CostBreakdown`, without ever holding
  the trace. The equivalence is property-tested in
  ``tests/serve/test_stream_differential.py``.
* :class:`FleetState` — a vectorised numpy engine over many
  *independent single-reservation* instances (the service's fleet
  model): ages, cumulative working hours, and per-φ verdicts live in
  flat arrays, and one batched event application touches every affected
  instance with a handful of numpy ops.

How the stream reproduces the batch engine
------------------------------------------
``run_fast`` decides batch ``t0`` at hour ``t = t0 + round(φT)`` by
counting, over the window ``[t0, t)``, hours where
``r_effective(h) − d(h) − i + 1 > l(h)`` — and a sale rewrites history
(``r_effective[t0:end] -= 1``), which later windows and later instances
of the same batch observe. Streaming cannot revisit past hours, so each
open window keeps a *histogram* of shifted slack values
``v(h) = r_live(h) − d(h) − l(h) + G(h)``, where ``r_live`` is the
current active-and-unsold reservation count and ``G(h)`` the global
number of sales performed so far. The shift makes retroactive rewrites
cancel: every sale after ``h`` (up to the window's decision) covers
``h`` — the seller's batch is always older than any still-open window,
its instance is still active at ``h``, and its rewrite spans
``[t0', expiry)`` ⊇ ``{h}`` — so the *final* effective slack is
``v(h) − G_decision``, and instance ``i`` is free at ``h`` iff
``v(h) ≥ i + G_decision``, a suffix count over the histogram (``G``
also absorbs same-batch sales, whose rewrites the pseudocode's inner
loop observes). Current and future hours need no correction at all: a
sold instance's rewrite and its reservation span end at the same expiry
hour, so "active and unsold right now" is the correct live value of
both ``r_physical`` and ``r_effective``. Each event is O(open windows)
≈ O(1) per tracked reservation batch; memory is one histogram entry per
distinct slack value per open window.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.account import CostBreakdown, CostModel, HourlyFeeMode
from repro.core.breakeven import (
    PAPER_DECISION_FRACTIONS,
    break_even_working_hours,
    validate_phi,
)
from repro.core.clearing import ClearingModel, ClearingProfile
from repro.core.fastsim import FastListing, FastPolicyKind, FastSale
from repro.core.policies import (
    CancellationAwareSellingPolicy,
    RandomizedSellingPolicy,
)
from repro.core.policyspec import SPEC_KEEP, PolicySpec
from repro.errors import PolicyError
from repro.serve.errors import ServeStateError

#: Version of the serving state machine's behaviour. Part of every
#: checkpoint payload (see :mod:`repro.serve.checkpoint`): bump it
#: whenever a change here could alter a decision or a cost, so stale
#: checkpoints are refused instead of silently replayed.
STATE_VERSION = 1


class Verdict(enum.Enum):
    """The advisory's answer for one instance at one decision spot."""

    SELL = "sell"
    KEEP = "keep"
    PENDING = "pending"  # the decision hour has not been reached yet
    WAIT_FOR_CLEAR = "wait-for-clear"  # listed, awaiting a marketplace buyer


@dataclass(frozen=True)
class StreamDecision:
    """One decided instance of a reservation batch (SELL or KEEP)."""

    reserved_at: int
    batch_index: int  # the pseudocode's i (1-based)
    hour: int
    working_hours: int
    verdict: Verdict


@dataclass
class _OpenWindow:
    """Decision window of one reservation batch, mid-stream."""

    t0: int
    size: int
    expiry: int
    l_base: int  # total reservations seen up to and including t0
    hist: Dict[int, int] = field(default_factory=dict)


class StreamTracker:
    """Event-by-event equivalent of :func:`repro.core.fastsim.run_fast`.

    Feed one hour at a time via :meth:`observe`; read decisions as they
    are emitted and :attr:`breakdown` at any point. After ``H`` calls the
    sales and costs equal ``run_fast(d[:H], n[:H], ...)`` exactly.

    Parameters mirror ``run_fast``: the cost model, the decision
    fraction ``phi``, the policy ``kind``, and ``threshold_scale``
    (scales the break-even β; 1.0 is the paper's rule). With a
    :class:`~repro.core.clearing.ClearingModel` the tracker reproduces
    ``run_fast(..., clearing=clearing, clearing_key=clearing_key)``:
    SELL decisions open listings, the unit keeps serving (and billing)
    until its drawn clearing hour, income books at the clearing hour,
    and listings whose window closes unsold revert to serving out the
    reservation. The decision sequence itself never changes — clearing
    only splits the *physical* timeline from the effective one.
    """

    def __init__(
        self,
        model: CostModel,
        phi: float = 0.75,
        kind: FastPolicyKind = FastPolicyKind.ONLINE,
        threshold_scale: float = 1.0,
        *,
        clearing: "ClearingModel | None" = None,
        clearing_key: object = 0,
    ) -> None:
        period = model.period
        if kind is not FastPolicyKind.KEEP_RESERVED:
            validate_phi(phi)
        if threshold_scale < 0:
            raise ServeStateError(
                f"threshold_scale must be >= 0, got {threshold_scale!r}"
            )
        self.model = model
        self.phi = phi
        self.kind = kind
        self.threshold_scale = threshold_scale
        self._period = period
        self._decision_age = round(phi * period)
        self._beta = break_even_working_hours(model.plan, model.selling_discount, phi)
        self._evaluate = (
            kind is not FastPolicyKind.KEEP_RESERVED
            and 0 < self._decision_age < period
        )
        if self._evaluate:
            remaining_fraction = 1.0 - self._decision_age / period
            self._per_sale_income = model.sale_income(remaining_fraction)
        else:
            self._per_sale_income = 0.0
        if clearing is not None and not isinstance(clearing, ClearingModel):
            raise ServeStateError(
                f"clearing must be a ClearingModel or None, got "
                f"{type(clearing).__name__}"
            )
        self.clearing = clearing
        self._clear_profile: "ClearingProfile | None" = None
        self._clear_rng: "np.random.Generator | None" = None
        if clearing is not None and self._evaluate:
            self._clear_profile = clearing.profile(
                model.selling_discount, period, self._decision_age
            )
            self._clear_rng = clearing.stream(clearing_key)

        self.hour = 0
        # Without clearing ``_active`` is the live value of *both*
        # r_physical and r_effective. With clearing it tracks the
        # effective count (decisions); ``_pending_serving`` counts sold
        # units still physically serving — listed-but-uncleared and
        # expired-listing units — so ``_active + _pending_serving`` is
        # the live r_physical that costs bill against.
        self._active = 0
        self._pending_expiry: Dict[int, int] = {}
        self._pending_serving = 0
        self._pending_serving_drop: Dict[int, int] = {}
        self._pending_income: Dict[int, List[float]] = {}
        # (reserved_at, batch_index, listed_at, delay, fate_hour, fate,
        #  income) — fate is "clear" or "expire"; rendered lazily by
        # :attr:`listings` against the hours observed so far.
        self._listings: "List[Tuple[int, int, int, int, int, str, float]]" = []
        self._total_reserved = 0
        self._od_hours = 0
        self._billed_hours = 0
        self._income = 0.0
        self._sales_total = 0  # the global shift G (see module docstring)
        self._open: List[_OpenWindow] = []
        self._decisions: List[StreamDecision] = []

    # ------------------------------------------------------------------

    @property
    def decision_age(self) -> int:
        """Hours after reservation at which this tracker decides."""
        return self._decision_age

    @property
    def beta(self) -> float:
        """The break-even working time β for this tracker's φ."""
        return self._beta

    def observe(self, demand: int, reservations: int = 0) -> Tuple[StreamDecision, ...]:
        """Ingest one hour: ``demand`` busy units, ``reservations`` new
        reservations made this hour. Returns the decisions (if any)
        emitted at this hour — the batch reserved ``round(φT)`` hours
        ago reaching its decision spot."""
        if demand < 0 or reservations < 0:
            raise ServeStateError(
                f"demand and reservations must be non-negative, got "
                f"({demand!r}, {reservations!r})"
            )
        d = int(demand)
        n_new = int(reservations)
        t = self.hour

        # 1. Expired reservations stop serving (and stop billing); sold
        #    units clear (income books now, the unit stops serving) or
        #    their listing window closes (an expired-fate unit serves
        #    until its reservation expiry, handled by the same drop map).
        self._active -= self._pending_expiry.pop(t, 0)
        if self.clearing is not None:
            self._pending_serving -= self._pending_serving_drop.pop(t, 0)
            for sale_value in self._pending_income.pop(t, ()):
                self._income += sale_value

        # 2. New reservations arrive and open a decision window.
        if n_new:
            self._active += n_new
            self._total_reserved += n_new
            expiry = t + self._period
            self._pending_expiry[expiry] = (
                self._pending_expiry.get(expiry, 0) + n_new
            )
            if self._evaluate:
                self._open.append(
                    _OpenWindow(
                        t0=t, size=n_new, expiry=expiry, l_base=self._total_reserved
                    )
                )

        # 3. The batch reserved decision_age hours ago decides now.
        emitted: Tuple[StreamDecision, ...] = ()
        if (
            self._evaluate
            and self._open
            and self._open[0].t0 == t - self._decision_age
        ):
            window = self._open.pop(0)
            emitted = self._decide(window, t)
            self._decisions.extend(emitted)

        # 4. Record this hour's shifted slack in every open window
        #    (post-sale values: a sale at hour t is visible to windows
        #    covering t; the G shift squares past hours with future
        #    retroactive rewrites — see the module docstring).
        for window in self._open:
            l_count = self._total_reserved - window.l_base
            slack = self._active - d - l_count + self._sales_total
            window.hist[slack] = window.hist.get(slack, 0) + 1

        # 5. Book this hour's costs against the live *physical* count:
        #    listed-but-uncleared units still serve and still bill.
        live = self._active + self._pending_serving
        if d > live:
            self._od_hours += d - live
        if self.model.fee_mode is HourlyFeeMode.ACTIVE:
            self._billed_hours += live
        else:
            self._billed_hours += d if d < live else live

        self.hour = t + 1
        return emitted

    def observe_trace(
        self, demands: Iterable[int], reservations: Iterable[int]
    ) -> "List[StreamDecision]":
        """Feed a whole ``(d, n)`` trace event by event; returns every
        decision emitted along the way."""
        collected: List[StreamDecision] = []
        for d, n in zip(demands, reservations):
            collected.extend(self.observe(int(d), int(n)))
        return collected

    # ------------------------------------------------------------------

    def _decide(self, window: _OpenWindow, t: int) -> Tuple[StreamDecision, ...]:
        """Decide every instance of one batch at its decision hour."""
        values = sorted(window.hist)
        counts_below = [0, *accumulate(window.hist[v] for v in values)]
        total = counts_below[-1]

        emitted: List[StreamDecision] = []
        online = self.kind is FastPolicyKind.ONLINE
        for i in range(1, window.size + 1):
            # Free hours: v(h) >= i + G (see the module docstring).
            position = bisect_left(values, i + self._sales_total)
            free = total - counts_below[position]
            working = self._decision_age - free
            sell = (
                working < self.threshold_scale * self._beta if online else True
            )
            if sell:
                self._active -= 1
                self._pending_expiry[window.expiry] -= 1
                self._sales_total += 1
                verdict = Verdict.SELL
                if self._clear_profile is None:
                    self._income += self._per_sale_income
                else:
                    self._list_sale(window, t, i)
            else:
                verdict = Verdict.KEEP
            emitted.append(
                StreamDecision(
                    reserved_at=window.t0,
                    batch_index=i,
                    hour=t,
                    working_hours=working,
                    verdict=verdict,
                )
            )
        return tuple(emitted)

    def _list_sale(self, window: _OpenWindow, t: int, batch_index: int) -> None:
        """Open a marketplace listing for one SELL decision at hour ``t``.

        Draws the clearing delay, books delay-0 clears immediately
        (scheduled clears for this hour were already booked in step 1,
        so income accumulates in ``run_fast``'s (clear_hour, listing)
        order), and schedules the physical-serving drop: at the clearing
        hour for cleared-fate listings, at the reservation expiry for
        expired-fate ones.
        """
        profile = self._clear_profile
        delay = profile.sample_delay(self._clear_rng.random())
        if delay < profile.window:
            clear_at = t + delay
            clear_fraction = 1.0 - (clear_at - window.t0) / self._period
            sale_value = (
                (1.0 - self.model.marketplace_fee)
                * float(profile.discounts[delay])
                * clear_fraction
                * self.model.big_r
            )
            if delay == 0:
                self._income += sale_value
            else:
                self._pending_serving += 1
                self._pending_serving_drop[clear_at] = (
                    self._pending_serving_drop.get(clear_at, 0) + 1
                )
                self._pending_income.setdefault(clear_at, []).append(sale_value)
            fate_hour, fate, income = clear_at, "clear", sale_value
        else:
            self._pending_serving += 1
            self._pending_serving_drop[window.expiry] = (
                self._pending_serving_drop.get(window.expiry, 0) + 1
            )
            fate_hour, fate, income = t + profile.window, "expire", 0.0
        self._listings.append(
            (window.t0, batch_index, t, delay, fate_hour, fate, income)
        )

    # ------------------------------------------------------------------

    @property
    def decisions(self) -> Tuple[StreamDecision, ...]:
        """Every decision emitted so far, in emission order."""
        return tuple(self._decisions)

    @property
    def sales(self) -> Tuple[FastSale, ...]:
        """The SELL decisions in :class:`~repro.core.fastsim.FastSale`
        form, directly comparable to ``run_fast(...).sales``."""
        return tuple(
            FastSale(
                reserved_at=decision.reserved_at,
                batch_index=decision.batch_index,
                hour=decision.hour,
                working_hours=decision.working_hours,
            )
            for decision in self._decisions
            if decision.verdict is Verdict.SELL
        )

    @property
    def instances_sold(self) -> int:
        return sum(
            1 for decision in self._decisions if decision.verdict is Verdict.SELL
        )

    @property
    def pending_batches(self) -> int:
        """Reservation batches whose decision hour has not arrived."""
        return len(self._open)

    @property
    def listings(self) -> Tuple[FastListing, ...]:
        """Listing lifecycle records, rendered against the hours seen so
        far; after ``H`` observed hours this equals
        ``run_fast(d[:H], n[:H], ..., clearing=...).listings`` exactly.
        Empty without a clearing model."""
        rendered: List[FastListing] = []
        horizon = self.hour
        for t0, batch_index, listed_at, delay, fate_hour, fate, income in (
            self._listings
        ):
            settled = fate_hour < horizon
            if fate == "clear":
                outcome = "cleared" if settled else "open"
                cleared_at = fate_hour if settled else None
            else:
                outcome = "expired" if settled else "open"
                cleared_at = None
            rendered.append(
                FastListing(
                    reserved_at=t0,
                    batch_index=batch_index,
                    listed_at=listed_at,
                    delay=delay,
                    cleared_at=cleared_at,
                    outcome=outcome,
                    income=income if (fate == "clear" and settled) else 0.0,
                )
            )
        return tuple(rendered)

    @property
    def listings_open(self) -> int:
        """Listings still on the marketplace book right now."""
        return sum(
            1 for record in self._listings if record[4] >= self.hour
        )

    @property
    def instances_cleared(self) -> int:
        """Sales that actually cleared on the marketplace; equals
        :attr:`instances_sold` without a clearing model."""
        if self.clearing is None:
            return self.instances_sold
        return sum(
            1
            for record in self._listings
            if record[5] == "clear" and record[4] < self.hour
        )

    @property
    def listings_expired(self) -> int:
        """Listings whose clearing window closed without a buyer."""
        return sum(
            1
            for record in self._listings
            if record[5] == "expire" and record[4] < self.hour
        )

    @property
    def breakdown(self) -> CostBreakdown:
        """Eq. (1) cost components accumulated over the observed hours;
        equals the batch engine's breakdown for the same trace prefix."""
        return CostBreakdown(
            on_demand=float(self._od_hours) * self.model.p,
            upfront=float(self._total_reserved) * self.model.big_r,
            reserved_hourly=self._billed_hours * self.model.alpha * self.model.p,
            sale_income=self._income,
        )


def run_stream(
    demands: "np.ndarray | Sequence[int]",
    reservations: "np.ndarray | Sequence[int]",
    model: CostModel,
    phi: float = 0.75,
    kind: FastPolicyKind = FastPolicyKind.ONLINE,
    threshold_scale: float = 1.0,
    *,
    clearing: "ClearingModel | None" = None,
    clearing_key: object = 0,
) -> StreamTracker:
    """Feed a whole trace through a fresh :class:`StreamTracker` —
    the streaming counterpart of :func:`repro.core.fastsim.run_fast`,
    returning the tracker for inspection."""
    tracker = StreamTracker(
        model,
        phi=phi,
        kind=kind,
        threshold_scale=threshold_scale,
        clearing=clearing,
        clearing_key=clearing_key,
    )
    tracker.observe_trace(demands, reservations)
    return tracker


# ----------------------------------------------------------------------
# Vectorised fleet engine
# ----------------------------------------------------------------------

_PENDING = 0
_SELL = 1
_KEEP = 2
_WAIT = 3

_VERDICT_CODES = {
    _PENDING: Verdict.PENDING,
    _SELL: Verdict.SELL,
    _KEEP: Verdict.KEEP,
    _WAIT: Verdict.WAIT_FOR_CLEAR,
}
_CODES_BY_VERDICT = {verdict: code for code, verdict in _VERDICT_CODES.items()}

#: Listing fates per (instance, φ) under clearing: no listing, a drawn
#: clearing hour ahead, or a window that will close unsold.
_FATE_NONE = 0
_FATE_CLEAR = 1
_FATE_EXPIRE = 2


@dataclass(frozen=True)
class PhiThreshold:
    """One decision spot's precomputed parameters."""

    phi: float
    decision_age: int
    beta: float


@dataclass(frozen=True)
class FleetDecision:
    """A newly-settled verdict for one fleet instance at one φ.

    Under a clearing model a SELL-rule hit first settles as
    ``WAIT_FOR_CLEAR`` (``listing="opened"``); a second decision follows
    when the listing resolves — ``SELL`` with ``listing="cleared"`` or
    ``KEEP`` with ``listing="expired"`` — carrying the hours the listing
    sat on the book in ``waited_hours``. Without clearing both fields
    keep their defaults.
    """

    instance: str
    phi: float
    verdict: Verdict
    working_hours: int
    age: int
    listing: "str | None" = None
    waited_hours: int = 0
    #: Provenance (schema 2): the canonical policy spec this decision
    #: belongs to, and — for a randomized policy — the φ the policy's
    #: per-instance stream drew for this instance. ``None`` for plain
    #: menu decisions (and stripped from schema-1 responses).
    policy_spec: "str | None" = None
    drawn_phi: "float | None" = None


class FleetState:
    """Vectorised per-instance trackers (single-reservation model).

    Each registered instance is one reserved instance observed from its
    reservation hour (age 0): every applied event is one elapsed hour,
    busy or idle. At each decision fraction φ the instance's verdict
    settles the moment its age reaches ``round(φT)`` — SELL iff its
    working time so far is below that φ's break-even β — exactly the
    :class:`StreamTracker` rule for a lone reservation (equivalence is
    pinned in ``tests/serve/test_fleet.py``).

    State lives in flat numpy arrays (age, cumulative working hours, one
    verdict/working-at pair per φ), so applying a batch of events costs
    a few array ops regardless of fleet size.
    """

    def __init__(
        self,
        model: CostModel,
        phis: Sequence[float] = PAPER_DECISION_FRACTIONS,
        threshold_scale: float = 1.0,
        capacity: int = 64,
        *,
        clearing: "ClearingModel | None" = None,
        policies: "Sequence[object] | None" = None,
    ) -> None:
        if clearing is not None and not isinstance(clearing, ClearingModel):
            raise ServeStateError(
                f"clearing must be a ClearingModel or None, got "
                f"{type(clearing).__name__}"
            )
        if threshold_scale < 0:
            raise ServeStateError(
                f"threshold_scale must be >= 0, got {threshold_scale!r}"
            )
        if not phis:
            raise ServeStateError("at least one decision fraction is required")
        if len(set(phis)) != len(phis):
            raise ServeStateError(f"duplicate decision fractions in {phis!r}")
        # Declarative policy specs ride on top of the φ menu: each spec's
        # decision fractions join the menu, a randomized spec additionally
        # draws one menu spot per instance at registration, and each
        # cancellation spec watches its sold instances for returning
        # demand. Specs are stored canonically (never as pickles) so the
        # checkpoint and the wire carry the exact construction recipe.
        specs: "List[PolicySpec]" = []
        randomized_spec: "Optional[PolicySpec]" = None
        randomized_policy: "Optional[RandomizedSellingPolicy]" = None
        cancellation_specs: "List[Tuple[PolicySpec, CancellationAwareSellingPolicy]]" = []
        menu = [float(phi) for phi in phis]
        for given in policies or ():
            try:
                spec = given if isinstance(given, PolicySpec) else PolicySpec(given)
            except PolicyError as error:
                raise ServeStateError(str(error)) from error
            if spec.kind == SPEC_KEEP:
                raise ServeStateError(
                    "a keep policy never sells — the advisory fleet has "
                    "nothing to track for it; drop the spec"
                )
            policy = spec.build()
            policy_scale = getattr(policy, "threshold_scale", threshold_scale)
            if policy_scale != threshold_scale:
                raise ServeStateError(
                    f"policy spec {spec.canonical()!r} carries "
                    f"scale={policy_scale!r} but the fleet evaluates every "
                    f"decision fraction at threshold_scale="
                    f"{threshold_scale!r}; they must agree"
                )
            if isinstance(policy, RandomizedSellingPolicy):
                if randomized_policy is not None:
                    raise ServeStateError(
                        "at most one randomized policy spec per fleet — a "
                        "second one would need its own per-instance draws"
                    )
                randomized_spec, randomized_policy = spec, policy
                for spot in policy.spots:
                    if spot not in menu:
                        menu.append(spot)
            else:
                if isinstance(policy, CancellationAwareSellingPolicy):
                    cancellation_specs.append((spec, policy))
                if policy.phi not in menu:
                    menu.append(float(policy.phi))
            specs.append(spec)
        period = model.period
        thresholds = []
        for phi in menu:
            validate_phi(phi)
            age = round(phi * period)
            if not 0 < age < period:
                raise ServeStateError(
                    f"phi={phi!r} with period {period}h yields a degenerate "
                    f"decision age of {age}h"
                )
            thresholds.append(
                PhiThreshold(
                    phi=phi,
                    decision_age=age,
                    beta=break_even_working_hours(
                        model.plan, model.selling_discount, phi
                    ),
                )
            )
        self.model = model
        self.threshold_scale = threshold_scale
        self.thresholds: Tuple[PhiThreshold, ...] = tuple(thresholds)
        self._period = period
        self.clearing = clearing
        spot_index = {
            threshold.phi: k for k, threshold in enumerate(self.thresholds)
        }
        self.policy_specs: Tuple[PolicySpec, ...] = tuple(specs)
        self._randomized_spec = randomized_spec
        self._randomized = randomized_policy
        self._cancellations: "Tuple[Tuple[PolicySpec, CancellationAwareSellingPolicy, int], ...]" = tuple(
            (spec, policy, spot_index[float(policy.phi)])
            for spec, policy in cancellation_specs
        )
        self._spot_index = spot_index
        self._clear_profiles: "List[ClearingProfile] | None" = None
        if clearing is not None:
            self._clear_profiles = [
                clearing.profile(
                    model.selling_discount, period, threshold.decision_age
                )
                for threshold in self.thresholds
            ]
        capacity = max(int(capacity), 1)
        self._age = np.zeros(capacity, dtype=np.int64)
        self._working = np.zeros(capacity, dtype=np.int64)
        self._working_in_term = np.zeros(capacity, dtype=np.int64)
        self._verdicts = [np.zeros(capacity, dtype=np.int8) for _ in thresholds]
        self._working_at = [
            np.full(capacity, -1, dtype=np.int64) for _ in thresholds
        ]
        # Per-φ listing state: the age at which an open listing resolves
        # (-1 = no listing pending) and its drawn fate.
        self._clear_at = [
            np.full(capacity, -1, dtype=np.int64) for _ in thresholds
        ]
        self._fate = [np.zeros(capacity, dtype=np.int8) for _ in thresholds]
        # Randomized policy: the menu index each instance's per-key
        # stream drew at registration (-1 = no randomized policy).
        self._drawn = np.full(capacity, -1, dtype=np.int64)
        # Cancellation policies: per-policy rebuy state — the age at
        # which the re-buy was booked (-1 = none yet) and the count of
        # in-term busy hours observed since the SELL verdict settled.
        self._rebuy_age = [
            np.full(capacity, -1, dtype=np.int64) for _ in self._cancellations
        ]
        self._busy_after_sale = [
            np.zeros(capacity, dtype=np.int64) for _ in self._cancellations
        ]
        self._ids: List[str] = []
        self._index: Dict[str, int] = {}

    # ------------------------------------------------------------------

    @property
    def phis(self) -> Tuple[float, ...]:
        return tuple(threshold.phi for threshold in self.thresholds)

    @property
    def size(self) -> int:
        """Number of tracked instances."""
        return len(self._ids)

    @property
    def instance_ids(self) -> Tuple[str, ...]:
        return tuple(self._ids)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._index

    def _grow(self, minimum: int) -> None:
        capacity = len(self._age)
        while capacity < minimum:
            capacity *= 2
        if capacity == len(self._age):
            return
        extra = capacity - len(self._age)
        self._age = np.concatenate([self._age, np.zeros(extra, dtype=np.int64)])
        self._working = np.concatenate(
            [self._working, np.zeros(extra, dtype=np.int64)]
        )
        self._working_in_term = np.concatenate(
            [self._working_in_term, np.zeros(extra, dtype=np.int64)]
        )
        self._verdicts = [
            np.concatenate([v, np.zeros(extra, dtype=np.int8)])
            for v in self._verdicts
        ]
        self._working_at = [
            np.concatenate([w, np.full(extra, -1, dtype=np.int64)])
            for w in self._working_at
        ]
        self._clear_at = [
            np.concatenate([c, np.full(extra, -1, dtype=np.int64)])
            for c in self._clear_at
        ]
        self._fate = [
            np.concatenate([f, np.zeros(extra, dtype=np.int8)])
            for f in self._fate
        ]
        self._drawn = np.concatenate(
            [self._drawn, np.full(extra, -1, dtype=np.int64)]
        )
        self._rebuy_age = [
            np.concatenate([r, np.full(extra, -1, dtype=np.int64)])
            for r in self._rebuy_age
        ]
        self._busy_after_sale = [
            np.concatenate([b, np.zeros(extra, dtype=np.int64)])
            for b in self._busy_after_sale
        ]

    def register(self, instance_id: str) -> int:
        """Start tracking ``instance_id`` at age 0 (idempotent).

        Under a randomized policy, registration is also the draw: the
        policy's per-key stream (seeded by the spec, keyed by the
        instance id) picks this instance's decision spot once, here —
        deterministic, so a restored checkpoint and the original
        process agree on every draw.
        """
        if not instance_id or not isinstance(instance_id, str):
            raise ServeStateError(
                f"instance ids must be non-empty strings, got {instance_id!r}"
            )
        existing = self._index.get(instance_id)
        if existing is not None:
            return existing
        index = len(self._ids)
        self._grow(index + 1)
        self._ids.append(instance_id)
        self._index[instance_id] = index
        if self._randomized is not None:
            spot = self._randomized.draw_spot(instance_id)
            self._drawn[index] = self._spot_index[float(spot)]
        return index

    # ------------------------------------------------------------------

    def apply_events(
        self, instances: Sequence[str], busy: Sequence[bool]
    ) -> List[FleetDecision]:
        """Apply one batch of hourly events; returns verdicts that
        settled during this batch.

        ``instances[k]`` advances by one hour, busy if ``busy[k]``.
        Unknown instances are registered at age 0 on first sight. A
        batch may mention an instance several times; occurrences apply
        in order (the batch is partitioned into rounds, each touching
        any instance at most once, so the vectorised path is exact).
        """
        if len(instances) != len(busy):
            raise ServeStateError(
                f"instances and busy flags differ in length: "
                f"{len(instances)} vs {len(busy)}"
            )
        rounds: List[Tuple[List[int], List[int]]] = []
        occurrence: Dict[str, int] = {}
        for instance_id, flag in zip(instances, busy):
            index = self.register(instance_id)
            round_number = occurrence.get(instance_id, 0)
            occurrence[instance_id] = round_number + 1
            if round_number == len(rounds):
                rounds.append(([], []))
            round_indices, round_busy = rounds[round_number]
            round_indices.append(index)
            round_busy.append(1 if flag else 0)

        settled: List[FleetDecision] = []
        for round_indices, round_busy in rounds:
            idx = np.asarray(round_indices, dtype=np.int64)
            flags = np.asarray(round_busy, dtype=np.int64)
            self._working[idx] += flags
            self._age[idx] += 1
            ages = self._age[idx]
            # A busy hour is covered by the reservation while the
            # (post-advance) age is within the reservation period.
            self._working_in_term[idx] += flags * (ages <= self._period)
            # Cancellation watch, BEFORE this round's verdicts settle:
            # the busy hour just applied precedes any decision landing at
            # this age, so only instances whose SELL verdict settled on
            # an earlier event count it. Under clearing the verdict turns
            # SELL only when the listing clears, so open and expired
            # listings never watch — matching apply_rebuys' watch_from.
            for c, (_spec, policy, k_c) in enumerate(self._cancellations):
                watching = (
                    (self._verdicts[k_c][idx] == _SELL)
                    & (self._rebuy_age[c][idx] == -1)
                    & (flags == 1)
                    & (ages <= self._period)
                )
                if watching.any():
                    watch_idx = idx[watching]
                    self._busy_after_sale[c][watch_idx] += 1
                    trigger = policy.cancellation.trigger_hours
                    hit = self._busy_after_sale[c][watch_idx] >= trigger
                    if hit.any():
                        # The triggering busy hour spans ages [h-1, h);
                        # book the re-buy at its start, matching the
                        # batch engines' trigger hour.
                        hit_idx = watch_idx[hit]
                        self._rebuy_age[c][hit_idx] = self._age[hit_idx] - 1
            for k, threshold in enumerate(self.thresholds):
                hit = ages == threshold.decision_age
                if hit.any():
                    hit_idx = idx[hit]
                    working = self._working[hit_idx]
                    self._working_at[k][hit_idx] = working
                    sell = working < self.threshold_scale * threshold.beta
                    if self._clear_profiles is None:
                        self._verdicts[k][hit_idx] = np.where(sell, _SELL, _KEEP)
                        for position, instance_index in enumerate(hit_idx):
                            settled.append(
                                FleetDecision(
                                    instance=self._ids[int(instance_index)],
                                    phi=threshold.phi,
                                    verdict=(
                                        Verdict.SELL
                                        if sell[position]
                                        else Verdict.KEEP
                                    ),
                                    working_hours=int(working[position]),
                                    age=threshold.decision_age,
                                    **self._provenance(int(instance_index), k),
                                )
                            )
                    else:
                        settled.extend(
                            self._decide_with_listings(
                                k, threshold, hit_idx, working, sell
                            )
                        )
                if self._clear_profiles is not None:
                    settled.extend(self._settle_listings(k, threshold, idx, ages))
        return settled

    def _provenance(self, index: int, k: int) -> "Dict[str, object]":
        """Schema-2 provenance fields for one decision at menu index
        ``k``: the randomized spec (with the instance's drawn φ) when
        ``k`` is this instance's drawn spot, else the cancellation spec
        deciding at that φ, else nothing."""
        if self._randomized_spec is not None and int(self._drawn[index]) == k:
            return {
                "policy_spec": self._randomized_spec.canonical(),
                "drawn_phi": self.thresholds[k].phi,
            }
        for spec, _policy, k_c in self._cancellations:
            if k_c == k:
                return {"policy_spec": spec.canonical()}
        return {}

    def _decide_with_listings(
        self,
        k: int,
        threshold: PhiThreshold,
        hit_idx: np.ndarray,
        working: np.ndarray,
        sell: np.ndarray,
    ) -> List[FleetDecision]:
        """Decision-hour verdicts under a clearing model.

        KEEP stays KEEP; a SELL-rule hit draws its clearing delay from a
        per-(instance, φ) stream — deterministic, so a restored
        checkpoint and the original process agree — and either clears on
        the spot (delay 0 → SELL, ``listing="cleared"``) or opens a
        listing (``WAIT_FOR_CLEAR``, resolution age and fate recorded
        for :meth:`_settle_listings`).
        """
        profile = self._clear_profiles[k]
        emitted: List[FleetDecision] = []
        for position, instance_index in enumerate(hit_idx):
            index = int(instance_index)
            instance_id = self._ids[index]
            hours = int(working[position])
            provenance = self._provenance(index, k)
            if not sell[position]:
                self._verdicts[k][index] = _KEEP
                emitted.append(
                    FleetDecision(
                        instance=instance_id,
                        phi=threshold.phi,
                        verdict=Verdict.KEEP,
                        working_hours=hours,
                        age=threshold.decision_age,
                        **provenance,
                    )
                )
                continue
            stream = self.clearing.stream(f"{instance_id}#{threshold.phi!r}")
            delay = profile.sample_delay(float(stream.random()))
            if delay == 0:
                self._verdicts[k][index] = _SELL
                emitted.append(
                    FleetDecision(
                        instance=instance_id,
                        phi=threshold.phi,
                        verdict=Verdict.SELL,
                        working_hours=hours,
                        age=threshold.decision_age,
                        listing="cleared",
                        waited_hours=0,
                        **provenance,
                    )
                )
                continue
            self._verdicts[k][index] = _WAIT
            if delay < profile.window:
                self._clear_at[k][index] = threshold.decision_age + delay
                self._fate[k][index] = _FATE_CLEAR
            else:
                self._clear_at[k][index] = threshold.decision_age + profile.window
                self._fate[k][index] = _FATE_EXPIRE
            emitted.append(
                FleetDecision(
                    instance=instance_id,
                    phi=threshold.phi,
                    verdict=Verdict.WAIT_FOR_CLEAR,
                    working_hours=hours,
                    age=threshold.decision_age,
                    listing="opened",
                    waited_hours=0,
                    **provenance,
                )
            )
        return emitted

    def _settle_listings(
        self,
        k: int,
        threshold: PhiThreshold,
        idx: np.ndarray,
        ages: np.ndarray,
    ) -> List[FleetDecision]:
        """Resolve WAIT_FOR_CLEAR listings whose age reached the drawn
        resolution hour: cleared-fate listings settle to SELL
        (``listing="cleared"``), expired windows revert to KEEP
        (``listing="expired"``)."""
        waiting = self._verdicts[k][idx] == _WAIT
        if not waiting.any():
            return []
        due = waiting & (ages == self._clear_at[k][idx])
        if not due.any():
            return []
        emitted: List[FleetDecision] = []
        for instance_index in idx[due]:
            index = int(instance_index)
            age = int(self._age[index])
            waited = age - threshold.decision_age
            if int(self._fate[k][index]) == _FATE_CLEAR:
                self._verdicts[k][index] = _SELL
                verdict, listing = Verdict.SELL, "cleared"
            else:
                self._verdicts[k][index] = _KEEP
                verdict, listing = Verdict.KEEP, "expired"
            self._clear_at[k][index] = -1
            self._fate[k][index] = _FATE_NONE
            emitted.append(
                FleetDecision(
                    instance=self._ids[index],
                    phi=threshold.phi,
                    verdict=verdict,
                    working_hours=int(self._working_at[k][index]),
                    age=age,
                    listing=listing,
                    waited_hours=waited,
                    **self._provenance(index, k),
                )
            )
        return emitted

    # ------------------------------------------------------------------

    def instance_state(self, instance_id: str) -> "Dict[str, object]":
        """One instance's full advisory state as a JSON-ready dict."""
        index = self._index.get(instance_id)
        if index is None:
            raise ServeStateError(f"unknown instance {instance_id!r}")
        return self._row(index)

    def _row(self, index: int) -> "Dict[str, object]":
        spots: "Dict[str, object]" = {}
        for k, threshold in enumerate(self.thresholds):
            code = int(self._verdicts[k][index])
            working_at = int(self._working_at[k][index])
            spot: "Dict[str, object]" = {
                "verdict": _VERDICT_CODES[code].value,
                "working_at_decision": working_at if working_at >= 0 else None,
            }
            if self.clearing is not None and code == _WAIT:
                spot["listing_resolves_at_age"] = int(self._clear_at[k][index])
            spots[repr(threshold.phi)] = spot
        row: "Dict[str, object]" = {
            "instance": self._ids[index],
            "age_hours": int(self._age[index]),
            "working_hours": int(self._working[index]),
            "decisions": spots,
        }
        if self._randomized_spec is not None:
            drawn = int(self._drawn[index])
            row["policy_spec"] = self._randomized_spec.canonical()
            row["drawn_phi"] = repr(self.thresholds[drawn].phi)
        if self._cancellations:
            row["rebuys"] = {
                spec.canonical(): (
                    int(self._rebuy_age[c][index])
                    if self._rebuy_age[c][index] >= 0
                    else None
                )
                for c, (spec, _policy, _k) in enumerate(self._cancellations)
            }
        return row

    def rows(self) -> "List[Dict[str, object]]":
        """Every instance's advisory state, in registration order."""
        return [self._row(index) for index in range(len(self._ids))]

    def verdict_counts(self) -> "Dict[str, Dict[str, int]]":
        """Per-φ tally of verdicts across the fleet (for metrics)."""
        tally: "Dict[str, Dict[str, int]]" = {}
        size = len(self._ids)
        for k, threshold in enumerate(self.thresholds):
            codes = self._verdicts[k][:size]
            tally[repr(threshold.phi)] = {
                verdict.value: int(np.count_nonzero(codes == code))
                for code, verdict in _VERDICT_CODES.items()
            }
        return tally

    # ------------------------------------------------------------------
    # Cost accounting (integer counts so shard sums merge exactly)
    # ------------------------------------------------------------------

    def cost_counts(self) -> "Dict[str, Dict[str, int]]":
        """Per-φ integer cost counts accrued so far, keyed by ``repr(phi)``.

        Every count is an exact integer — instances, sales, billed
        hours, on-demand hours — so a sharded deployment can sum the
        counts across shards and multiply by the model's prices *once*
        (:func:`breakdown_from_counts`), reproducing the single-process
        :meth:`cost_breakdowns` bit for bit.

        Accounting follows the paper's single-reservation model at each
        decision fraction independently: a SELL verdict ends the
        reservation at the decision age (later busy hours are on-demand,
        income is one marketplace sale); KEEP and PENDING instances bill
        through the reservation period and pay on-demand only after it
        expires. A WAIT_FOR_CLEAR instance counts as unsold — physically
        accurate while its listing is open, since the unit keeps serving
        and billing until it clears; once the listing settles, the
        verdict (SELL or KEEP) takes over. The exact clearing-hour
        income/billing split lives in the trace-exact engines
        (:class:`StreamTracker`, :func:`repro.core.fastsim.run_fast`),
        not in this fleet approximation.
        """
        size = len(self._ids)
        period = self._period
        active_fee = self.model.fee_mode is HourlyFeeMode.ACTIVE
        ages = self._age[:size]
        working = self._working[:size]
        in_term = self._working_in_term[:size]
        counts: "Dict[str, Dict[str, int]]" = {}
        for k, threshold in enumerate(self.thresholds):
            sold = self._verdicts[k][:size] == _SELL
            unsold = ~sold
            n_sold = int(np.count_nonzero(sold))
            working_at = self._working_at[k][:size]
            if active_fee:
                billed_sold = n_sold * threshold.decision_age
            else:
                billed_sold = int(working_at[sold].sum())
            billed_unsold_active = int(np.minimum(ages[unsold], period).sum())
            billed_unsold = (
                billed_unsold_active if active_fee else int(in_term[unsold].sum())
            )
            od_sold = int((working[sold] - working_at[sold]).sum())
            od_unsold = int((working[unsold] - in_term[unsold]).sum())
            counts[repr(threshold.phi)] = {
                "instances": size,
                "sold": n_sold,
                "billed_hours": billed_sold + billed_unsold,
                "od_hours": od_sold + od_unsold,
            }
        return counts

    def rebuy_counts(self) -> "Dict[str, Dict[str, int]]":
        """Per-cancellation-policy re-buy counts, keyed by canonical spec.

        Both fields are exact integers — the number of re-buys booked
        and the sum of the ages (hours since reservation) at which they
        were booked — so a sharded deployment sums them across shards
        and prices the totals once (:func:`rebuy_outlay_from_counts`),
        the same integers-then-price-once discipline as
        :meth:`cost_counts`.
        """
        size = len(self._ids)
        counts: "Dict[str, Dict[str, int]]" = {}
        for c, (spec, _policy, _k) in enumerate(self._cancellations):
            ages = self._rebuy_age[c][:size]
            booked = ages >= 0
            counts[spec.canonical()] = {
                "rebuys": int(np.count_nonzero(booked)),
                "rebuy_age_sum": int(ages[booked].sum()),
            }
        return counts

    def cancellation_penalties(self) -> "Dict[str, float]":
        """Per-cancellation-policy re-buy penalty, keyed by canonical
        spec — the pricing input that pairs with :meth:`rebuy_counts`."""
        return {
            spec.canonical(): float(policy.cancellation.penalty)
            for spec, policy, _k in self._cancellations
        }

    def cost_breakdowns(self) -> "Dict[str, CostBreakdown]":
        """Per-φ :class:`~repro.core.account.CostBreakdown`, keyed by
        ``repr(phi)`` — the priced form of :meth:`cost_counts`."""
        return {
            repr(threshold.phi): breakdown_from_counts(
                self.model, threshold.phi, counts
            )
            for threshold, counts in zip(
                self.thresholds, self.cost_counts().values()
            )
        }

    # ------------------------------------------------------------------
    # Checkpoint support (payload shape owned here, IO in checkpoint.py)
    # ------------------------------------------------------------------

    def snapshot_instances(self) -> "List[Dict[str, object]]":
        """Per-instance state rows for a checkpoint payload."""
        snapshot: "List[Dict[str, object]]" = []
        for index, instance_id in enumerate(self._ids):
            spots: "Dict[str, object]" = {}
            for k, threshold in enumerate(self.thresholds):
                spots[repr(threshold.phi)] = {
                    "verdict": int(self._verdicts[k][index]),
                    "working_at": int(self._working_at[k][index]),
                    "clear_at": int(self._clear_at[k][index]),
                    "fate": int(self._fate[k][index]),
                }
            row: "Dict[str, object]" = {
                "id": instance_id,
                "age": int(self._age[index]),
                "working": int(self._working[index]),
                "working_in_term": int(self._working_in_term[index]),
                "spots": spots,
            }
            if self._randomized is not None:
                row["drawn"] = int(self._drawn[index])
            if self._cancellations:
                row["rebuys"] = {
                    spec.canonical(): {
                        "age": int(self._rebuy_age[c][index]),
                        "busy": int(self._busy_after_sale[c][index]),
                    }
                    for c, (spec, _policy, _k) in enumerate(self._cancellations)
                }
            snapshot.append(row)
        return snapshot

    def restore_instances(self, rows: "Iterable[Dict[str, object]]") -> None:
        """Load instance rows produced by :meth:`snapshot_instances`."""
        for row in rows:
            try:
                index = self.register(str(row["id"]))
                self._age[index] = int(row["age"])  # type: ignore[call-overload]
                self._working[index] = int(row["working"])  # type: ignore[call-overload]
                self._working_in_term[index] = int(  # type: ignore[call-overload]
                    row["working_in_term"]
                )
                spots = row["spots"]
                for k, threshold in enumerate(self.thresholds):
                    spot = spots[repr(threshold.phi)]  # type: ignore[index]
                    code = int(spot["verdict"])
                    if code not in _VERDICT_CODES:
                        raise ServeStateError(
                            f"unknown verdict code {code!r} in checkpoint row"
                        )
                    if code == _WAIT and self.clearing is None:
                        raise ServeStateError(
                            "checkpoint row holds an open listing but this "
                            "fleet has no clearing model to settle it"
                        )
                    self._verdicts[k][index] = code
                    self._working_at[k][index] = int(spot["working_at"])
                    # Listing fields are absent in pre-clearing (format
                    # 2) checkpoint rows; default to "no listing".
                    fate = int(spot.get("fate", _FATE_NONE))
                    if fate not in (_FATE_NONE, _FATE_CLEAR, _FATE_EXPIRE):
                        raise ServeStateError(
                            f"unknown listing fate {fate!r} in checkpoint row"
                        )
                    self._clear_at[k][index] = int(spot.get("clear_at", -1))
                    self._fate[k][index] = fate
                if self._randomized is not None and "drawn" in row:
                    # register() already re-drew this instance's spot
                    # from the policy's deterministic stream; the stored
                    # draw must agree or the checkpoint was written
                    # under a different randomized spec.
                    stored = int(row["drawn"])  # type: ignore[call-overload]
                    if stored != int(self._drawn[index]):
                        raise ServeStateError(
                            f"checkpoint drew menu spot {stored} for "
                            f"{row['id']!r} but this fleet's randomized "
                            f"policy draws {int(self._drawn[index])} — "
                            "the specs (seed or spots) disagree"
                        )
                rebuys = row.get("rebuys", {})
                if not isinstance(rebuys, dict):
                    raise ServeStateError(
                        f"malformed rebuy state in fleet row: {rebuys!r}"
                    )
                for c, (spec, _policy, _k) in enumerate(self._cancellations):
                    entry = rebuys.get(spec.canonical())
                    if entry is None:
                        continue
                    self._rebuy_age[c][index] = int(entry["age"])
                    self._busy_after_sale[c][index] = int(entry["busy"])
            except (KeyError, TypeError, ValueError) as error:
                raise ServeStateError(
                    f"malformed fleet state row: {row!r}"
                ) from error


def breakdown_from_counts(
    model: CostModel, phi: float, counts: "Dict[str, int]"
) -> CostBreakdown:
    """Price one φ's integer cost counts into a
    :class:`~repro.core.account.CostBreakdown`.

    This is the *only* place counts meet floats: every multiplication
    happens exactly once, in a fixed expression order, so summing
    per-shard counts first and pricing the totals here is bit-identical
    to pricing a single process's counts.
    """
    try:
        instances = int(counts["instances"])
        sold = int(counts["sold"])
        billed_hours = int(counts["billed_hours"])
        od_hours = int(counts["od_hours"])
    except (KeyError, TypeError, ValueError) as error:
        raise ServeStateError(f"malformed cost counts: {counts!r}") from error
    decision_age = round(phi * model.period)
    remaining_fraction = 1.0 - decision_age / model.period
    per_sale = model.sale_income(remaining_fraction)
    return CostBreakdown(
        on_demand=float(od_hours) * model.p,
        upfront=float(instances) * model.big_r,
        reserved_hourly=billed_hours * model.alpha * model.p,
        sale_income=float(sold) * per_sale,
    )


def rebuy_outlay_from_counts(
    model: CostModel, penalty: float, counts: "Dict[str, int]"
) -> float:
    """Price one cancellation policy's integer re-buy counts.

    Each re-buy at age ``h`` costs ``(1 + penalty) · a · (1 − h/T) · R``
    (a marketplace re-purchase of the remaining term at the selling
    discount, plus the penalty premium — :mod:`repro.core.cancellation`).
    Summed over re-buys that is
    ``(1 + penalty) · a · R · (rebuys − Σh / T)``, priced here exactly
    once from the integer pair so per-shard counts merge bit-identically
    (the :func:`breakdown_from_counts` discipline).
    """
    try:
        rebuys = int(counts["rebuys"])
        age_sum = int(counts["rebuy_age_sum"])
    except (KeyError, TypeError, ValueError) as error:
        raise ServeStateError(f"malformed rebuy counts: {counts!r}") from error
    return (
        (1.0 + penalty)
        * model.selling_discount
        * (float(rebuys) - age_sum / model.period)
        * model.big_r
    )


