"""Length-prefixed binary frame transport between router and shards.

The shard cluster's original hop was one JSON-over-HTTP request per
sub-batch: a fresh TCP connection, an HTTP parse, and a JSON encode per
router→worker call. ``BENCH_shard.json`` showed that hop *inverting*
the scaling curve (2 shards slower than 1). This module replaces it
with persistent connections speaking a compact binary protocol:

* **Codec** — :func:`dumpb`/:func:`loadb`, a minimal msgpack-style
  binary encoding of the JSON data model (``None``/bool/int64/float64/
  str/bytes/list/str-keyed dict). Stdlib-only (the serving layer must
  not grow dependencies), exact: floats travel as IEEE-754 doubles and
  integers as signed 64-bit values, so the bit-identical differential
  guarantee survives the wire.
* **Framing** — :func:`encode_frame` / :class:`FrameDecoder`. Every
  frame is ``magic "RB" | wire version | frame type | payload length |
  CRC-32(payload)`` (12 bytes, network order) followed by the payload.
  The decoder is incremental: it reassembles frames across arbitrarily
  split ``recv`` boundaries and raises typed errors
  (:class:`~repro.serve.errors.FrameError`,
  :class:`~repro.serve.errors.FrameTooLargeError`) on garbage, version
  skew, CRC mismatch, or oversized declarations — after which the
  stream is untrusted and the connection must be severed.
* **Router side** — :class:`TransportHub`, one selector-loop thread
  multiplexing every worker connection. Calls are pipelined: each
  request carries a monotonically increasing ``id``, senders block on a
  per-call event, and the hub completes calls as response frames
  arrive, so many requests can be in flight per connection without a
  thread per request. A dead link fails all of its pending calls with
  :class:`~repro.serve.errors.TransportClosedError` (retryable — the
  router reconnects and the worker's ``seq`` dedupe keeps ingest
  exactly-once).
* **Worker side** — :class:`BinaryServer`, an accept loop handing each
  connection to a reader thread that decodes request frames in order
  and answers ``(status, body)`` from a handler callable. In-order
  processing per connection is what makes the seq discipline airtight:
  a duplicated request frame is either the last applied seq (the stored
  response is replayed) or stale (rejected with 400) — never a second
  apply.

Wire messages (payloads of REQUEST/RESPONSE frames, codec-encoded):

* request:  ``{"schema": 1, "id": N, "op": "ingest"|..., "body": {...}}``
* response: ``{"schema": 1, "id": N, "status": 200, "body": {...}}``

where ``body`` is exactly the versioned envelope of
:mod:`repro.serve.envelope` — the same shapes the HTTP path speaks, so
the router's merge logic is transport-agnostic.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.envelope import SCHEMA_VERSION
from repro.serve.errors import (
    CodecError,
    FrameError,
    FrameTooLargeError,
    ServeStateError,
    TransportClosedError,
)

# ---------------------------------------------------------------------------
# Codec: a minimal binary encoding of the JSON data model
# ---------------------------------------------------------------------------

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Maximum container/recursion depth the codec will walk; beyond it the
#: value is treated as a depth bomb rather than legitimate data.
MAX_CODEC_DEPTH = 64


def dumpb(value: object) -> bytes:
    """Encode ``value`` (JSON data model) to bytes.

    Raises :class:`~repro.serve.errors.CodecError` on unsupported types,
    integers outside signed 64-bit range, non-string dict keys, or
    nesting deeper than :data:`MAX_CODEC_DEPTH`.
    """
    out = bytearray()
    _encode(value, out, 0)
    return bytes(out)


def _encode(value: object, out: bytearray, depth: int) -> None:
    if depth > MAX_CODEC_DEPTH:
        raise CodecError(
            f"value nests deeper than {MAX_CODEC_DEPTH} levels; refusing to encode"
        )
    if value is None:
        out.append(_TAG_NONE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):  # bool handled above
        if not _I64_MIN <= value <= _I64_MAX:
            raise CodecError(f"integer {value!r} exceeds signed 64-bit range")
        out.append(_TAG_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise CodecError(f"cannot encode {type(value).__name__} values")


def loadb(data: bytes) -> object:
    """Decode one value from ``data``; the buffer must hold exactly one.

    Raises :class:`~repro.serve.errors.CodecError` on unknown tags,
    truncated values, trailing bytes, or excessive nesting.
    """
    value, offset = _decode(data, 0, 0)
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing byte(s) after the encoded value"
        )
    return value


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise CodecError(
            f"truncated value: need {count} byte(s) at offset {offset}, "
            f"have {len(data) - offset}"
        )


def _decode(data: bytes, offset: int, depth: int) -> "Tuple[object, int]":
    if depth > MAX_CODEC_DEPTH:
        raise CodecError(
            f"payload nests deeper than {MAX_CODEC_DEPTH} levels; refusing to decode"
        )
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_INT:
        _need(data, offset, 8)
        return _I64.unpack_from(data, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        _need(data, offset, 4)
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        _need(data, offset, length)
        raw = data[offset : offset + length]
        offset += length
        if tag == _TAG_BYTES:
            return bytes(raw), offset
        try:
            return bytes(raw).decode("utf-8"), offset
        except UnicodeDecodeError as error:
            raise CodecError(f"invalid UTF-8 in string value: {error}") from error
    if tag == _TAG_LIST:
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        items: "List[object]" = []
        for _ in range(count):
            item, offset = _decode(data, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        _need(data, offset, 4)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        mapping: "Dict[str, object]" = {}
        for _ in range(count):
            key, offset = _decode(data, offset, depth + 1)
            if not isinstance(key, str):
                raise CodecError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            value, offset = _decode(data, offset, depth + 1)
            mapping[key] = value
        return mapping, offset
    raise CodecError(f"unknown codec tag 0x{tag:02x} at offset {offset - 1}")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

#: Two magic bytes opening every frame ("Reserved-instance Binary").
FRAME_MAGIC = b"RB"

#: Version of the frame layout + message shapes; peers refuse to mix.
WIRE_VERSION = 1

FRAME_REQUEST = 1
FRAME_RESPONSE = 2

_FRAME_TYPES = frozenset({FRAME_REQUEST, FRAME_RESPONSE})

#: magic | wire version | frame type | payload length | CRC-32(payload)
_FRAME_HEADER = struct.Struct("!2sBBII")

FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Default cap on one frame's payload; a header declaring more is
#: rejected before any allocation (garbage headers read as huge lengths).
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024


def encode_frame(
    frame_type: int, payload: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> bytes:
    """One wire frame: header (magic, version, type, length, CRC) + payload."""
    if frame_type not in _FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type!r}")
    if len(payload) > max_payload:
        raise FrameTooLargeError(
            f"payload of {len(payload)} bytes exceeds the {max_payload}-byte cap"
        )
    header = _FRAME_HEADER.pack(
        FRAME_MAGIC,
        WIRE_VERSION,
        frame_type,
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


class FrameDecoder:
    """Incremental frame reassembly over a byte stream.

    Feed it whatever ``recv`` returned — frames may arrive split at any
    boundary or several per chunk — and it yields complete
    ``(frame_type, payload)`` pairs. Any integrity failure (bad magic,
    wire-version skew, unknown type, oversized declaration, CRC
    mismatch) raises a typed error; the stream is byte-oriented, so
    after one bad frame nothing later can be trusted and the caller
    must drop the connection.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD) -> None:
        if max_payload < 1:
            raise ServeStateError(
                f"max_payload must be positive, got {max_payload!r}"
            )
        self.max_payload = max_payload
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "List[Tuple[int, bytes]]":
        """Absorb ``data``; return every frame completed by it."""
        # Decoders are connection-confined: exactly one thread (the hub
        # loop, or a worker's per-connection reader) ever feeds one.
        self._buffer += data  # repro-lint: disable=REP102 - single-reader by design
        frames: "List[Tuple[int, bytes]]" = []
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                return frames
            magic, version, frame_type, length, crc = _FRAME_HEADER.unpack_from(
                self._buffer
            )
            if magic != FRAME_MAGIC:
                raise FrameError(
                    f"bad frame magic {bytes(magic)!r} (expected {FRAME_MAGIC!r}); "
                    "stream is corrupt or not a repro transport peer"
                )
            if version != WIRE_VERSION:
                raise FrameError(
                    f"peer speaks wire version {version}, this build speaks "
                    f"{WIRE_VERSION}; refusing to interoperate across versions"
                )
            if frame_type not in _FRAME_TYPES:
                raise FrameError(f"unknown frame type {frame_type}")
            if length > self.max_payload:
                raise FrameTooLargeError(
                    f"frame declares a {length}-byte payload, beyond the "
                    f"{self.max_payload}-byte cap"
                )
            end = FRAME_HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[FRAME_HEADER_SIZE:end])
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise FrameError(
                    f"frame payload failed its CRC-32 check ({length} bytes); "
                    "stream is corrupt"
                )
            del self._buffer[:end]
            frames.append((frame_type, payload))


def encode_request(request_id: int, op: str, body: "Dict[str, object]") -> bytes:
    """A complete REQUEST frame for one pipelined call."""
    return encode_frame(
        FRAME_REQUEST,
        dumpb({"schema": SCHEMA_VERSION, "id": request_id, "op": op, "body": body}),
    )


def encode_response(
    request_id: int, status: int, body: "Dict[str, object]"
) -> bytes:
    """A complete RESPONSE frame answering ``request_id``."""
    return encode_frame(
        FRAME_RESPONSE,
        dumpb(
            {"schema": SCHEMA_VERSION, "id": request_id, "status": status, "body": body}
        ),
    )


def decode_payload(payload: bytes) -> "Dict[str, object]":
    """Decode a frame payload that must be a message object."""
    message = loadb(payload)
    if not isinstance(message, dict):
        raise CodecError(
            f"frame payload decodes to {type(message).__name__}, expected an object"
        )
    return message


# ---------------------------------------------------------------------------
# Router side: one selector loop, many persistent worker connections
# ---------------------------------------------------------------------------


class _PendingCall:
    """One in-flight request: the caller parks on ``event``."""

    __slots__ = ("event", "status", "body", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status: "Optional[int]" = None
        self.body: "Optional[Dict[str, object]]" = None
        self.error: "Optional[TransportClosedError]" = None


class WorkerChannel:
    """One persistent, pipelined connection to a shard worker.

    ``call`` may be invoked from many threads at once: each call takes
    a fresh request id, sends its frame under the send lock, and parks
    until the hub's selector loop completes it with the matching
    response — so reads and ingests interleave on one connection
    without blocking each other.
    """

    def __init__(
        self, hub: "TransportHub", sock: socket.socket, peer: str
    ) -> None:
        self._hub = hub
        self._sock = sock
        self.peer = peer
        self._decoder = FrameDecoder()
        self._send_lock = threading.Lock()
        # Guards _pending/_next_id/_closed (caller threads + hub thread).
        self._lock = threading.Lock()
        self._pending: "Dict[int, _PendingCall]" = {}
        self._next_id = 1
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def call(
        self, op: str, body: "Dict[str, object]", timeout: float
    ) -> "Tuple[int, Dict[str, object]]":
        """One pipelined round-trip; returns ``(status, body)``.

        Raises :class:`~repro.serve.errors.TransportClosedError` when
        the link dies or the reply misses its deadline — both retryable
        through the router's seq discipline.
        """
        pending = _PendingCall()
        with self._lock:
            if self._closed:
                raise TransportClosedError(
                    f"connection to {self.peer} is closed"
                )
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = pending
        frame = encode_request(request_id, op, body)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as error:
            failure = TransportClosedError(
                f"send to {self.peer} failed: {error}"
            )
            self._hub.drop(self, failure)
            raise failure from error
        if not pending.event.wait(timeout):
            with self._lock:
                self._pending.pop(request_id, None)
            raise TransportClosedError(
                f"no reply from {self.peer} for op {op!r} within {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        status = pending.status
        reply = pending.body
        if not isinstance(status, int) or not isinstance(reply, dict):
            raise TransportClosedError(
                f"{self.peer} answered a malformed response message"
            )
        return status, reply

    def close(self) -> None:
        """Tear the connection down and fail its pending calls."""
        self._hub.drop(
            self, TransportClosedError(f"connection to {self.peer} was closed")
        )

    # -- hub-thread side -------------------------------------------------

    def _complete(self, message: "Dict[str, object]") -> None:
        """Route one decoded response message to its waiting caller.

        A message for an unknown id (an abandoned timeout, or a
        duplicated frame injected by a flaky network) is ignored — the
        seq discipline at the worker already made the duplicate
        harmless.
        """
        request_id = message.get("id")
        if not isinstance(request_id, int):
            return
        with self._lock:
            pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        status = message.get("status")
        body = message.get("body")
        pending.status = status if isinstance(status, int) else None
        pending.body = body if isinstance(body, dict) else None
        pending.event.set()

    def _abort_locked(self, error: TransportClosedError) -> "List[_PendingCall]":
        """Mark closed and detach all pending calls; caller holds no
        channel lock (the method takes it)."""
        with self._lock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        return pending


class TransportHub:
    """One selector-loop thread multiplexing every worker connection.

    The router owns exactly one hub: connections register with it, the
    loop thread reads whatever is ready, feeds each connection's frame
    decoder, and completes pending calls. All socket *reads* happen on
    the loop thread; *writes* happen on caller threads under each
    channel's send lock (sockets are full-duplex). Teardown requests
    from any thread are queued and performed by the loop thread, so the
    selector is only ever touched from one place.
    """

    def __init__(self, select_interval: float = 0.5) -> None:
        self._selector = selectors.DefaultSelector()
        self._select_interval = select_interval
        # Guards _running/_thread/_joining/_additions/_removals.
        self._lock = threading.Lock()
        self._running = False
        self._thread: "Optional[threading.Thread]" = None
        self._additions: "List[WorkerChannel]" = []
        self._removals: "List[Tuple[WorkerChannel, TransportClosedError]]" = []
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)

    def start(self) -> None:
        """Start the loop thread (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
            self._selector.register(self._wake_recv, selectors.EVENT_READ, None)
            self._thread = threading.Thread(
                target=self._run,
                daemon=True,
                name="repro-transport-hub",
            )
            self._thread.start()

    def connect(
        self, address: "Tuple[str, int]", timeout: float = 10.0
    ) -> WorkerChannel:
        """Dial a worker and register the connection with the loop."""
        try:
            sock = socket.create_connection(address, timeout=timeout)
        except OSError as error:
            raise TransportClosedError(
                f"cannot connect to worker at {address[0]}:{address[1]}: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        channel = WorkerChannel(self, sock, f"{address[0]}:{address[1]}")
        with self._lock:
            if not self._running:
                sock.close()
                raise ServeStateError(
                    "TransportHub.start() must be called before connect()"
                )
            self._additions.append(channel)
        self._wake()
        return channel

    def drop(self, channel: WorkerChannel, error: TransportClosedError) -> None:
        """Queue a connection teardown; safe from any thread."""
        for pending in channel._abort_locked(error):
            pending.error = error
            pending.event.set()
        with self._lock:
            self._removals.append((channel, error))
        self._wake()

    def close(self) -> None:
        """Stop the loop and close every connection."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            thread = self._thread
        self._wake()
        if thread is not None:
            thread.join(timeout=5)

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:  # repro-lint: disable=REP007 - hub already shut down
            pass

    # -- loop thread -----------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                with self._lock:
                    running = self._running
                    additions = self._additions
                    removals = self._removals
                    self._additions = []
                    self._removals = []
                for channel, _error in removals:
                    self._unregister_locked(channel)
                if not running:
                    break
                for channel in additions:
                    if not channel.closed:
                        self._selector.register(
                            channel._sock, selectors.EVENT_READ, channel
                        )
                for key, _events in self._selector.select(self._select_interval):
                    if key.data is None:
                        self._drain_wakeups()
                    else:
                        self._service(key.data)
        finally:
            self._shutdown_locked()

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):  # repro-lint: disable=REP007 - drained dry
            pass

    def _service(self, channel: WorkerChannel) -> None:
        """Read whatever one connection has and complete its calls."""
        try:
            data = channel._sock.recv(1 << 18)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as error:
            self.drop(
                channel,
                TransportClosedError(f"read from {channel.peer} failed: {error}"),
            )
            return
        if not data:
            self.drop(
                channel,
                TransportClosedError(f"{channel.peer} closed the connection"),
            )
            return
        try:
            frames = channel._decoder.feed(data)
        except FrameError as error:
            self.drop(
                channel,
                TransportClosedError(
                    f"corrupt stream from {channel.peer}: {error}"
                ),
            )
            return
        for frame_type, payload in frames:
            if frame_type != FRAME_RESPONSE:
                self.drop(
                    channel,
                    TransportClosedError(
                        f"{channel.peer} sent frame type {frame_type} where a "
                        "response was expected"
                    ),
                )
                return
            try:
                message = decode_payload(payload)
            except CodecError as error:
                self.drop(
                    channel,
                    TransportClosedError(
                        f"undecodable response from {channel.peer}: {error}"
                    ),
                )
                return
            channel._complete(message)

    def _unregister_locked(self, channel: WorkerChannel) -> None:
        """Selector/socket teardown; only the loop thread calls this."""
        try:
            self._selector.unregister(channel._sock)
        except (KeyError, ValueError):  # repro-lint: disable=REP007 - never registered
            pass
        try:
            channel._sock.close()
        except OSError:  # repro-lint: disable=REP007 - already closed
            pass

    def _shutdown_locked(self) -> None:
        """Final teardown on loop exit; only the loop thread calls this."""
        closing = TransportClosedError("transport hub is shutting down")
        for key in list(self._selector.get_map().values()):
            channel = key.data
            if channel is None:
                continue
            for pending in channel._abort_locked(closing):
                pending.error = closing
                pending.event.set()
            self._unregister_locked(channel)
        self._selector.unregister(self._wake_recv)
        self._selector.close()
        self._wake_recv.close()
        self._wake_send.close()


# ---------------------------------------------------------------------------
# Worker side: accept loop + per-connection reader threads
# ---------------------------------------------------------------------------

#: ``handler(op, body) -> (status, envelope_body)``
Handler = Callable[[str, "Dict[str, object]"], "Tuple[int, Dict[str, object]]"]


class BinaryServer:
    """The worker's frame server: in-order request handling per link.

    One daemon thread per accepted connection reads request frames,
    dispatches each to ``handler`` *in arrival order*, and writes the
    response frame back. Ordered handling is load-bearing: the router's
    exactly-once ingest relies on a worker never reordering two seqs it
    received on one connection. A framing or codec failure severs the
    connection (the stream is untrusted); the router reconnects and
    retries.
    """

    def __init__(
        self,
        host: str,
        port: int,
        handler: Handler,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self._handler = handler
        self._max_payload = max_payload
        self._listener = socket.create_server((host, port))
        self._closed = False
        self._lock = threading.Lock()

    @property
    def address(self) -> "Tuple[str, int]":
        """The bound ``(host, port)``."""
        return self._listener.getsockname()[:2]

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close`; runs on the caller."""
        while True:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                daemon=True,
                name="repro-binary-conn",
            )
            thread.start()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._listener.close()

    def _serve_connection(self, connection: socket.socket) -> None:
        decoder = FrameDecoder(self._max_payload)
        try:
            while True:
                try:
                    data = connection.recv(1 << 18)
                except OSError:
                    return
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    return  # untrusted stream: sever, router retries
                for frame_type, payload in frames:
                    if frame_type != FRAME_REQUEST:
                        return
                    if not self._answer(connection, payload):
                        return
        finally:
            try:
                connection.close()
            except OSError:  # repro-lint: disable=REP007 - already closed
                pass

    def _answer(self, connection: socket.socket, payload: bytes) -> bool:
        """Handle one request payload; False severs the connection."""
        try:
            message = decode_payload(payload)
        except CodecError:
            return False
        request_id = message.get("id")
        if not isinstance(request_id, int):
            return False
        if message.get("schema") != SCHEMA_VERSION:
            response = encode_response(
                request_id,
                400,
                {
                    "schema": SCHEMA_VERSION,
                    "error": {
                        "kind": "SchemaSkewError",
                        "message": (
                            f"request carries schema {message.get('schema')!r}; "
                            f"this worker speaks {SCHEMA_VERSION}"
                        ),
                    },
                },
            )
            return self._send(connection, response)
        op = message.get("op")
        body = message.get("body")
        status, reply = self._handler(
            op if isinstance(op, str) else "",
            body if isinstance(body, dict) else {},
        )
        return self._send(connection, encode_response(request_id, status, reply))

    @staticmethod
    def _send(connection: socket.socket, frame: bytes) -> bool:
        try:
            connection.sendall(frame)
        except OSError:
            return False
        return True
